//! Vendored offline stand-in for the `fxhash`/`rustc-hash` fast hasher.
//!
//! The simulator's hot paths hash small integer keys (physical page ids,
//! virtual page numbers, cache keys) millions of times per run. The
//! standard library's `HashMap` defaults to SipHash-1-3 behind a
//! randomly seeded `RandomState`: strong against adversarial keys, but
//! an order of magnitude more work than these keys need, and seeded
//! per-process. [`FxHasher`] is the Firefox/rustc multiply-rotate hash:
//! a handful of cycles per word, **zero seeding** — the same keys hash
//! to the same buckets in every run of every build, which keeps any
//! accidental iteration-order dependence reproducible rather than
//! flaky. (Simulator outputs must never depend on map iteration order
//! at all; determinism of the hasher is defence in depth, not a
//! license.)
//!
//! Same API surface as the real `fxhash` crate: [`FxHasher`],
//! [`FxBuildHasher`], [`FxHashMap`], [`FxHashSet`] and the [`hash64`]
//! convenience.
//!
//! # Examples
//!
//! ```
//! use fxhash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, u32> = FxHashMap::default();
//! m.insert(42, 7);
//! assert_eq!(m.get(&42), Some(&7));
//! ```

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// 64-bit Fx round constant: `2^64 / phi`, the odd Weyl increment that
/// spreads consecutive integers across the whole word.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Left-rotation applied after every multiply (the rustc value).
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher: not cryptographic, not DoS-resistant,
/// but extremely fast on short keys and fully deterministic (no
/// per-process seed).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the slice, then the sub-word tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut buf = [0u8; 8];
            buf[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// A [`std::hash::BuildHasher`] producing [`FxHasher`]s; the default
/// state for [`FxHashMap`]/[`FxHashSet`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the deterministic Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the deterministic Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes one value with the Fx hasher (convenience for key mixing).
pub fn hash64<T: Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        // No per-process seeding: two fresh hashers agree, and the
        // value is pinned so a behaviour change is loud.
        assert_eq!(hash64(&0xdead_beefu64), hash64(&0xdead_beefu64));
        let a = hash64(&1u64);
        let b = hash64(&2u64);
        assert_ne!(a, b);
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1_000u64 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 1_000);
        for i in 0..1_000u64 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        let s: FxHashSet<u64> = (0..100).collect();
        assert!(s.contains(&99) && !s.contains(&100));
    }

    #[test]
    fn with_capacity_never_rehashes_under_fill() {
        let mut m: FxHashMap<u64, u64> =
            FxHashMap::with_capacity_and_hasher(256, FxBuildHasher::default());
        let cap = m.capacity();
        for i in 0..256u64 {
            m.insert(i, i);
        }
        assert_eq!(m.capacity(), cap, "pre-sized map must not rehash");
    }

    #[test]
    fn tuple_and_byte_keys_hash() {
        let mut m: FxHashMap<(u16, u16), u32> = FxHashMap::default();
        m.insert((3, 4), 12);
        assert_eq!(m.get(&(3, 4)), Some(&12));
        assert_ne!(hash64("abc"), hash64("abd"));
        assert_ne!(hash64(&[1u8, 2, 3][..]), hash64(&[1u8, 2, 3, 0][..]));
    }
}
