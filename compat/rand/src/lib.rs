//! Offline stand-in for the subset of the `rand` 0.8 API the ZnG
//! simulator uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal, dependency-free implementation under
//! the same crate name. It provides:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the same algorithm rand 0.8's
//!   `SmallRng` uses on 64-bit targets), seeded with SplitMix64 exactly
//!   like `SeedableRng::seed_from_u64`.
//! * [`Rng`] with the methods the simulator calls: `gen`, `gen_range`,
//!   `gen_bool`.
//!
//! Determinism is the only contract that matters to the simulator: a
//! given seed must always produce the same stream on every platform and
//! every run. That property is upheld here with pure integer arithmetic.

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution in real `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// 53 random mantissa bits in `[0, 1)`, matching rand's `Standard`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The raw entropy source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that can be sampled (the `SampleRange` idea from real `rand`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing RNG interface.
pub trait Rng: RngCore {
    /// Uniform sample of `T` (`rng.gen::<u64>()`, `rng.gen::<f64>()`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable RNGs (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into the full RNG state.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// generator rand 0.8 selects for `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(4..16);
            assert!((4..16).contains(&x));
            let y: u64 = r.gen_range(0..2u64);
            assert!(y < 2);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
        let mut r = SmallRng::seed_from_u64(3);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn reference_rng_also_works() {
        fn draw<R: Rng>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut r = SmallRng::seed_from_u64(5);
        let a = draw(&mut r);
        let b = draw(&mut r);
        assert_ne!(a, b);
    }
}
