//! Offline stand-in for the subset of the `proptest` API the ZnG test
//! suite uses.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors this dependency-free implementation under the same crate
//! name. It keeps the property-based *style* of the tests — strategies,
//! `proptest! { #[test] fn f(x in strategy) { ... } }`, `prop_assert!`
//! and friends — while replacing the engine with a fixed-count,
//! deterministic case runner:
//!
//! * Each property runs [`CASES`] generated cases ([`QUICK_CASES`]
//!   under `ZNG_QUICK=1`, CI's fast lane — see [`cases`]).
//! * The case stream is seeded from the property's fully qualified name,
//!   so runs are reproducible and independent of test execution order.
//! * There is no shrinking; a failure reports the case number and the
//!   generated arguments instead.
//!
//! Supported strategy surface: integer `Range`s, `any::<bool>()` and
//! integer `any`, tuples of 2–4 strategies, `Just`, and
//! `prop::collection::vec(strategy, size_range)`.

use std::fmt;
use std::ops::Range;

/// Cases generated per property in a full run (see [`cases`]).
pub const CASES: u32 = 64;

/// Cases generated per property when the `ZNG_QUICK` fast lane is on.
pub const QUICK_CASES: u32 = 8;

/// Cases to run per property: [`CASES`] normally, [`QUICK_CASES`] when
/// the `ZNG_QUICK` environment variable is set to a non-empty value
/// other than `0` (CI's quick job). The case stream is unchanged — a
/// quick run executes a prefix of the full run's cases.
pub fn cases() -> u32 {
    cases_for(std::env::var("ZNG_QUICK").ok().as_deref())
}

fn cases_for(quick: Option<&str>) -> u32 {
    match quick {
        Some(v) if !v.is_empty() && v != "0" => QUICK_CASES,
        _ => CASES,
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — not a failure.
    Reject(String),
    /// A `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from a preformatted message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection from a preformatted message.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// The deterministic entropy source handed to strategies.
#[derive(Debug, Clone)]
pub struct Gen {
    state: [u64; 2],
}

impl Gen {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion into
    /// xoroshiro128++ state).
    pub fn new(seed: u64) -> Gen {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Gen {
            state: [next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits (xoroshiro128++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, mut s1] = self.state;
        let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
        s1 ^= s0;
        self.state = [s0.rotate_left(49) ^ s1 ^ (s1 << 21), s1.rotate_left(28)];
        result
    }

    /// A uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Stable FNV-1a hash of a test's name, used to seed its case stream.
pub fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Mixes a per-test seed with a case index into a fresh stream seed.
pub fn mix(seed: u64, case: u64) -> u64 {
    let mut z = seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, gen: &mut Gen) -> Self::Value {
        (**self).generate(gen)
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + gen.below(span) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(gen.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, gen: &mut Gen) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (gen.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, gen: &mut Gen) -> Self::Value {
                ($(self.$idx.generate(gen),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// `any::<T>()` — the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Creates the full-domain strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, gen: &mut Gen) -> bool {
        gen.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, gen: &mut Gen) -> $t {
                gen.next_u64() as $t
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);

/// A constant strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _gen: &mut Gen) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Gen, Strategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + gen.below(span) as usize;
            (0..len).map(|_| self.element.generate(gen)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!`-based test file needs.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        Strategy, TestCaseError,
    };
}

/// Declares deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a
/// `#[test]` that runs [`cases`] generated cases. `prop_assume!` skips a
/// case; `prop_assert!`/`prop_assert_eq!` fail it with the generated
/// arguments echoed in the panic message.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let __seed = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
            let __cases = $crate::cases();
            for __case in 0..__cases {
                let mut __gen = $crate::Gen::new($crate::mix(__seed, __case as u64));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __gen);)+
                let __args = format!(concat!($(stringify!($arg), " = {:?}; ",)+), $(&$arg),+);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { { $body } Ok(()) })();
                match __outcome {
                    Ok(()) | Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  with {}",
                            stringify!($name),
                            __case,
                            __cases,
                            msg,
                            __args
                        );
                    }
                }
            }
        }
    )+};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {:?} != {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}: {:?} != {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`: both {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate as prop;

    #[test]
    fn quick_mode_trims_the_case_count() {
        assert_eq!(cases_for(None), CASES);
        assert_eq!(cases_for(Some("")), CASES);
        assert_eq!(cases_for(Some("0")), CASES);
        assert_eq!(cases_for(Some("1")), QUICK_CASES);
        assert_eq!(cases_for(Some("yes")), QUICK_CASES);
    }

    #[test]
    fn gen_is_deterministic() {
        let mut a = Gen::new(9);
        let mut b = Gen::new(9);
        assert!((0..64).all(|_| a.next_u64() == b.next_u64()));
    }

    #[test]
    fn strategies_respect_bounds() {
        let mut gen = Gen::new(1);
        for _ in 0..1_000 {
            let x = (3u64..17).generate(&mut gen);
            assert!((3..17).contains(&x));
            let v = collection::vec(0u8..3, 1..5).generate(&mut gen);
            assert!(!v.is_empty() && v.len() < 5);
            assert!(v.iter().all(|&b| b < 3));
            let (a, b) = ((0u64..10), any::<bool>()).generate(&mut gen);
            assert!(a < 10);
            let _ = b;
        }
    }

    proptest! {
        /// The macro machinery itself: assume, assert, and formatting.
        #[test]
        fn macro_roundtrip(x in 0u32..100, flips in prop::collection::vec(any::<bool>(), 0..8)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100, "x out of range: {x}");
            prop_assert_eq!(flips.len(), flips.len());
            prop_assert_ne!(x, 13);
        }
    }
}
