#!/usr/bin/env bash
# Regenerates every figure/table bench in quick mode and consolidates the
# per-bench JSON records (target/zng-results/*.json) into repo-root
# BENCH.json — one headline metric per bench.
#
# Usage: scripts/bench.sh [OUTPUT]   (default BENCH.json)
set -euo pipefail
cd "$(dirname "$0")/.."

ZNG_QUICK=1 cargo bench --workspace
cargo run -q --release -p zng-bench --bin consolidate -- "${1:-BENCH.json}"
