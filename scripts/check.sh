#!/usr/bin/env bash
# Repo quality gate: formatting, lints (warnings are errors), docs
# (warnings are errors), full tests.
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast with a clear message when the toolchain components the gate
# needs are missing, instead of dying mid-run on a cryptic cargo error.
if ! cargo fmt --version >/dev/null 2>&1; then
  echo "error: 'cargo fmt' is unavailable — install it with: rustup component add rustfmt" >&2
  exit 1
fi
if ! cargo clippy --version >/dev/null 2>&1; then
  echo "error: 'cargo clippy' is unavailable — install it with: rustup component add clippy" >&2
  exit 1
fi

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
cargo test -q --workspace

# Golden-determinism gate: the default-config JSON output is pinned
# byte-for-byte against tests/golden/ (determinism + opt-in features
# stay inert when off). Run by name so drift fails loudly even when the
# main test run is filtered.
cargo test -q --test golden

# Self-healing end-to-end smoke: a die failure plus a severed mesh link
# mid-run must still complete and rebuild (exercises the RAIN paths the
# unit tests cover piecewise).
cargo run -q --example redundancy_rebuild >/dev/null

# Data-integrity end-to-end smoke: a silent bit flip must fail loudly
# (poisoned L2 line, IntegrityViolation) without redundancy and heal in
# place with RAIN on (exercises the verified-read paths end to end).
cargo run -q --example integrity_poison >/dev/null

# Endurance end-to-end smoke: the refresh scheduler must ride along on
# healthy media, and an end-of-life run must complete with a graceful
# capacity step instead of the DeviceWornOut cliff.
cargo run -q --example lifetime_refresh >/dev/null

# Crash-recovery end-to-end smoke: a checkpointed power cut must restore
# through the fast path and beat the full OOB scan (exercises the
# checkpoint writer, delta journal and verified restore end to end).
cargo run -q --release --example fast_recovery >/dev/null

# Predictive-health end-to-end smoke: the monitor must flag a degrading
# die, evacuate its live data and fence it at death with zero dead-die
# reads, while the unmonitored twin pays the reconstruction fan-out.
cargo run -q --release --example health_evacuation >/dev/null
