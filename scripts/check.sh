#!/usr/bin/env bash
# Repo quality gate: formatting, lints (warnings are errors), full tests.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q --workspace
