//! A small, dependency-free JSON library for the ZnG simulator.
//!
//! The simulator writes three kinds of JSON — [`RunResult`] dumps from
//! `zng-cli --json`, trace bundles from `zng-workloads`, and bench
//! records under `target/zng-results/` — and reads trace bundles back.
//! That narrow surface does not justify an external dependency, so this
//! crate provides:
//!
//! * [`Value`] — a JSON document tree preserving object key order.
//! * [`Value::parse`] — a recursive-descent parser with escape and
//!   number handling.
//! * [`Value::to_string_compact`] / [`Value::to_string_pretty`] —
//!   printers; the compact form writes `"key":value` with no spaces so
//!   textual fixtures are stable.
//! * Index by `&str` and `usize` plus `as_*` accessors, mirroring the
//!   ergonomics tests expect from a JSON value type.
//!
//! [`RunResult`]: ../zng_platforms/struct.RunResult.html

use std::fmt;
use std::ops::Index;

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// The value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if !v.is_finite() {
                    // JSON has no NaN/Inf; null is the conventional fallback.
                    write!(f, "null")
                } else if v == v.trunc() && v.abs() < 1e15 {
                    // Keep float-ness visible ("1.0", not "1").
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A parse or conversion error with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// A JSON document tree. Object key order is preserved (struct fields
/// print in declaration order, like derived serializers would).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: Vec<(K, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] describing the first syntax problem,
    /// including trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }

    /// Prints the document with no whitespace (`{"k":1,"v":[2]}`).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Prints the document with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => out.push_str(&n.to_string()),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// `value["key"]` — yields `Null` for missing keys, like serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// `value[i]` — yields `Null` out of bounds or on non-arrays.
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(Number::F64(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Num(Number::U64(v as u64))
            }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64, usize);

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        if v >= 0 {
            Value::Num(Number::U64(v as u64))
        } else {
            Value::Num(Number::I64(v))
        }
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(JsonError("document nests too deeply".into()));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(JsonError(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(JsonError("unexpected end of input".into())),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(JsonError(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(JsonError(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(JsonError("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(JsonError("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(JsonError(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode from the byte position to keep UTF-8 intact.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hex4 = |p: &mut Parser<'a>| -> Result<u32, JsonError> {
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return Err(JsonError("truncated \\u escape".into()));
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..end])
                .map_err(|_| JsonError("invalid \\u escape".into()))?;
            let v =
                u32::from_str_radix(s, 16).map_err(|_| JsonError("invalid \\u escape".into()))?;
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect a following \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = hex4(self)?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c)
                        .ok_or_else(|| JsonError("invalid surrogate pair".into()));
                }
            }
            return Err(JsonError("unpaired surrogate".into()));
        }
        char::from_u32(hi).ok_or_else(|| JsonError("invalid \\u escape".into()))
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U64(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Num(Number::F64(v)))
            .map_err(|_| JsonError(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::object(vec![
            ("version", Value::from(1u32)),
            ("name", Value::from("betw")),
            ("ipc", Value::from(0.5f64)),
            ("flags", Value::from(vec![true, false])),
            ("nested", Value::object(vec![("k", Value::Null)])),
        ]);
        let compact = v.to_string_compact();
        assert_eq!(
            compact,
            r#"{"version":1,"name":"betw","ipc":0.5,"flags":[true,false],"nested":{"k":null}}"#
        );
        assert_eq!(Value::parse(&compact).unwrap(), v);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"version\": 1"));
        assert_eq!(Value::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn indexing_mirrors_serde_json() {
        let v = Value::parse(r#"{"platform":"Zng","ipc":1.5,"xs":[1,2,3]}"#).unwrap();
        assert_eq!(v["platform"], "Zng");
        assert!(v["ipc"].as_f64().unwrap() > 1.0);
        assert_eq!(v["xs"][1].as_u64(), Some(2));
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["xs"][9], Value::Null);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::from("a\"b\\c\nd\te\u{1F600}\u{7}");
        let s = v.to_string_compact();
        assert_eq!(Value::parse(&s).unwrap(), v);
        let parsed = Value::parse(r#""A😀""#).unwrap();
        assert_eq!(parsed, "A\u{1F600}");
    }

    #[test]
    fn numbers_parse_exactly() {
        let v = Value::parse("[0,42,-7,3.25,1e3,18446744073709551615]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[1].as_u64(), Some(42));
        assert_eq!(a[2], Value::Num(Number::I64(-7)));
        assert_eq!(a[3].as_f64(), Some(3.25));
        assert_eq!(a[4].as_f64(), Some(1000.0));
        assert_eq!(a[5].as_u64(), Some(u64::MAX));
    }

    #[test]
    fn float_printing_keeps_floatness() {
        assert_eq!(Value::from(1.0f64).to_string_compact(), "1.0");
        assert_eq!(Value::from(0.125f64).to_string_compact(), "0.125");
        assert_eq!(Value::from(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "{not json",
            "",
            "[1,2",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "[1] trailing",
            "01x",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let doc = "[".repeat(4_000) + &"]".repeat(4_000);
        assert!(Value::parse(&doc).is_err());
    }
}
