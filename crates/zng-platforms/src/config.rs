//! Platform selection and simulation-wide configuration.

use zng_flash::{FaultConfig, FlashGeometry, RegisterTopology};
use zng_gpu::{GpuConfig, PrefetchPolicy};
use zng_types::{Error, Result};

use crate::qos::QosConfig;

/// Which GPU-SSD platform to simulate (paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    /// Discrete GPU + SSD over PCIe, host-serviced page faults.
    Hetero,
    /// FlashGPU/HybridGPU: SSD module embedded in the GPU.
    HybridGpu,
    /// GPU DRAM replaced by Optane DC PMM behind six controllers.
    Optane,
    /// ZnG without read/write optimisations.
    ZngBase,
    /// ZnG-base + STT-MRAM L2 and dynamic read prefetch.
    ZngRdopt,
    /// ZnG-base + grouped flash registers (HW-NiF write buffering).
    ZngWropt,
    /// Full ZnG: rdopt + wropt + thrashing redirection into pinned L2.
    Zng,
    /// Unbounded GDDR5 holding the entire dataset (Fig. 15a reference).
    Ideal,
}

impl PlatformKind {
    /// The seven paper platforms in Fig. 10 order.
    pub const PAPER_PLATFORMS: [PlatformKind; 7] = [
        PlatformKind::Hetero,
        PlatformKind::HybridGpu,
        PlatformKind::Optane,
        PlatformKind::ZngBase,
        PlatformKind::ZngRdopt,
        PlatformKind::ZngWropt,
        PlatformKind::Zng,
    ];

    /// Whether this platform has a Z-NAND backbone (Fig. 11 applies).
    pub fn has_flash(self) -> bool {
        !matches!(self, PlatformKind::Optane | PlatformKind::Ideal)
    }

    /// Whether the ZnG read optimisation (STT-MRAM + prefetch) is on.
    pub fn has_rdopt(self) -> bool {
        matches!(self, PlatformKind::ZngRdopt | PlatformKind::Zng)
    }

    /// Whether the ZnG write optimisation (register grouping) is on.
    pub fn has_wropt(self) -> bool {
        matches!(self, PlatformKind::ZngWropt | PlatformKind::Zng)
    }

    /// Whether thrashing redirection into pinned L2 is on.
    pub fn has_redirection(self) -> bool {
        matches!(self, PlatformKind::Zng)
    }
}

impl std::fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PlatformKind::Hetero => "Hetero",
            PlatformKind::HybridGpu => "HybridGPU",
            PlatformKind::Optane => "Optane",
            PlatformKind::ZngBase => "ZnG-base",
            PlatformKind::ZngRdopt => "ZnG-rdopt",
            PlatformKind::ZngWropt => "ZnG-wropt",
            PlatformKind::Zng => "ZnG",
            PlatformKind::Ideal => "Ideal",
        };
        f.write_str(s)
    }
}

/// Simulation-wide configuration.
///
/// The default flash geometry is a *scaled* device (same 16 channels and
/// timing as Table I, fewer dies/blocks/pages) so whole-figure sweeps run
/// in seconds; `FlashGeometry::table1()` remains available for full-size
/// experiments. DESIGN.md §7 records this deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// GPU structure (L2 technology is overridden per platform).
    pub gpu: GpuConfig,
    /// Flash geometry.
    pub flash: FlashGeometry,
    /// Register interconnect for wropt platforms (Fig. 14 sweeps this).
    pub register_topology: RegisterTopology,
    /// Prefetch policy for rdopt platforms (Fig. 16b sweeps this).
    pub prefetch_policy: PrefetchPolicy,
    /// Access-monitor thresholds (high, low); Fig. 16a sweeps these.
    pub monitor_thresholds: (f64, f64),
    /// Data blocks sharing one log block (ZnG FTL).
    pub group_size: u64,
    /// HybridGPU internal DRAM buffer capacity in pages.
    pub buffer_pages: usize,
    /// Hetero's on-board GPU memory capacity in pages (page faults beyond
    /// this working set go to the SSD through the host).
    pub hetero_gpu_mem_pages: usize,
    /// When true, garbage collection completes instantly and without
    /// blocking (the "no-GC" counterfactual of Fig. 17a).
    pub free_gc: bool,
    /// Fault injection applied to the flash media (RBER model,
    /// read-retry, block retirement). Defaults to no faults.
    pub fault: FaultConfig,
    /// When `Some(n)`, cut power after the `n`-th completed request:
    /// all volatile state (mapping tables, flash registers, write
    /// buffers, pinned L2 lines) is dropped, the FTL recovers from the
    /// out-of-band scan, and the run resumes. `None` (default) never
    /// crashes and leaves results byte-identical to a crash-free build.
    pub crash_at: Option<u64>,
    /// Overload-control and QoS policy (bounded queues, backpressure
    /// retries, GC pacing, fair-share isolation). The default
    /// ([`QosConfig::unbounded`]) disables every mechanism and keeps
    /// output byte-identical to the unbounded simulator.
    pub qos: QosConfig,
    /// Redundancy & self-healing policy (RAIN parity, patrol scrub,
    /// die/link failure injection). The default
    /// ([`RedundancyConfig::off`]) disables everything and keeps output
    /// byte-identical to a redundancy-free build.
    pub redundancy: RedundancyConfig,
    /// End-to-end data integrity: silent-corruption injection below the
    /// ECC model, payload verification on every host/GPU-facing read, and
    /// poison containment in the caches. The default
    /// ([`IntegrityConfig::off`]) draws no randomness and keeps output
    /// byte-identical to an integrity-free build.
    pub integrity: IntegrityConfig,
    /// Device-lifetime endurance management: read-disturb and
    /// retention-age tracking in the media, a paced background refresh
    /// scheduler, static wear levelling, and graceful end-of-life
    /// capacity degradation. The default ([`EnduranceConfig::off`])
    /// tracks nothing, draws no randomness and keeps output
    /// byte-identical to an endurance-free build.
    pub endurance: EnduranceConfig,
    /// Bounded-time crash recovery: a background checkpoint writer that
    /// snapshots the FTL mapping into reserved checkpoint blocks, a
    /// write-ahead delta journal between checkpoints, and a verified
    /// fast-path restore that rescans only the blocks touched since the
    /// last checkpoint. The default ([`CheckpointConfig::off`]) writes
    /// nothing and keeps output byte-identical to a checkpoint-free
    /// build.
    pub checkpoint: CheckpointConfig,
    /// Predictive die-health monitoring: per-die telemetry scoring on a
    /// background tick, suspect-die quarantine (allocation fencing plus
    /// elevated read-retry budgets), optional pre-emptive evacuation of
    /// live data off suspects, and rehabilitation of false positives.
    /// The default ([`HealthConfig::off`]) monitors nothing and keeps
    /// output byte-identical to a health-free build.
    pub health: HealthConfig,
    /// Runner watchdog: when `Some(budget)`, a simulation that makes no
    /// forward progress (no request completes) within `budget` cycles
    /// fails with [`zng_types::Error::Stalled`] instead of spinning.
    /// `None` (the default) never trips.
    pub watchdog: Option<u64>,
    /// Simulator-throughput telemetry: when true, the runner records
    /// wall-clock time, event counts and peak queue depth and attaches a
    /// [`crate::PerfSummary`] to the result. Off (the default) attaches
    /// nothing, so emitted JSON stays byte-identical — the wall-clock
    /// numbers are inherently nondeterministic and must never reach a
    /// golden file.
    pub perf: bool,
}

/// Predictive health policy: a monitor tick that scores every die's
/// rolled-up telemetry (read-retry EWMA, program/erase verification
/// failures, uncorrectable senses), quarantines dies whose score crosses
/// the suspect threshold, optionally evacuates their live data onto
/// healthy spares before the die dies, and rehabilitates suspects whose
/// telemetry comes back clean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Master switch. Off (the default) installs no monitor, scores
    /// nothing and keeps runs byte-identical to a health-free build.
    pub enabled: bool,
    /// Monitor cadence: one health tick every `n` completed requests.
    /// `0` with `enabled` is rejected — a monitor that never ticks would
    /// silently never flag anything.
    pub every_ops: u64,
    /// Minimum lifetime observations (reads + programs) of a die before
    /// it can be accused; below this the sample is noise.
    pub window: u64,
    /// Health score in `(0, 1]` above which a die is quarantined.
    pub suspect_threshold: f64,
    /// Pre-emptively migrate live data off quarantined dies onto
    /// healthy spares (one victim block per tick, GC-paced).
    pub evacuate: bool,
}

impl HealthConfig {
    /// Everything off — the byte-identical default.
    pub fn off() -> HealthConfig {
        HealthConfig {
            enabled: false,
            every_ops: 0,
            window: 0,
            suspect_threshold: 0.0,
            evacuate: false,
        }
    }

    /// Monitoring on with the FTL's default window and threshold and no
    /// evacuation; pass the tick cadence in completed requests.
    pub fn on(every_ops: u64) -> HealthConfig {
        let d = zng_ftl::HealthPolicy::default();
        HealthConfig {
            enabled: true,
            every_ops,
            window: d.window,
            suspect_threshold: d.suspect_threshold,
            evacuate: false,
        }
    }

    /// The FTL-side policy, inheriting the QoS GC stall budget so
    /// evacuation shares the one pacing contract.
    pub fn ftl(&self, qos: &QosConfig) -> zng_ftl::HealthPolicy {
        zng_ftl::HealthPolicy {
            window: self.window,
            suspect_threshold: self.suspect_threshold,
            evacuate: self.evacuate,
            pacing: qos.gc_stall_budget.map(|budget| zng_ftl::GcPacing {
                stall_budget: budget,
                credit_writes: qos.gc_credit_writes,
            }),
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Rejects monitor knobs without `enabled` (they would silently do
    /// nothing), an enabled monitor without a cadence or observation
    /// window, and suspect thresholds outside `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        let invalid = |why: &str| Error::InvalidConfig {
            what: "health".into(),
            why: why.into(),
        };
        if !self.enabled {
            if self.every_ops != 0
                || self.window != 0
                || self.suspect_threshold != 0.0
                || self.evacuate
            {
                return Err(invalid(
                    "window, threshold and evacuation knobs require health monitoring to be enabled",
                ));
            }
            return Ok(());
        }
        if self.every_ops == 0 {
            return Err(invalid(
                "an enabled health monitor needs a non-zero cadence",
            ));
        }
        if self.window == 0 {
            return Err(invalid(
                "a zero observation window would accuse dies on no evidence",
            ));
        }
        if !(self.suspect_threshold > 0.0 && self.suspect_threshold <= 1.0) {
            return Err(invalid("suspect threshold must be within (0, 1]"));
        }
        Ok(())
    }
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig::off()
    }
}

/// Bounded-time crash-recovery policy: mapping checkpoints into a
/// reserved flash namespace, a write-ahead delta journal appended on
/// every mapping mutation between checkpoints, and a fast-path restore
/// that loads the newest verified checkpoint, replays the journal tail
/// and rescans only the blocks programmed since — falling back to the
/// full out-of-band scan on any torn, corrupt or missing checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Master switch. Off (the default) programs no checkpoint pages,
    /// appends no journal and keeps runs byte-identical to a
    /// checkpoint-free build.
    pub enabled: bool,
    /// Checkpoint cadence: one background checkpoint write every `n`
    /// completed requests. `0` with `enabled` is rejected — a checkpoint
    /// subsystem that never checkpoints would silently journal forever.
    pub every_ops: u64,
    /// Journal records retained between checkpoints before the epoch is
    /// declared overflowed (its fast path falls back to the full scan
    /// until the next checkpoint). `0` means unbounded.
    pub journal_cap: u64,
}

impl CheckpointConfig {
    /// Everything off — the byte-identical default.
    pub fn off() -> CheckpointConfig {
        CheckpointConfig {
            enabled: false,
            every_ops: 0,
            journal_cap: 0,
        }
    }

    /// Checkpointing on with an unbounded journal; pass the cadence in
    /// completed requests per checkpoint.
    pub fn on(every_ops: u64) -> CheckpointConfig {
        CheckpointConfig {
            enabled: true,
            every_ops,
            journal_cap: 0,
        }
    }

    /// The FTL-side policy, inheriting the QoS GC stall budget so the
    /// background checkpoint writer shares the one pacing contract.
    pub fn ftl(&self, qos: &QosConfig) -> zng_ftl::CheckpointConfig {
        zng_ftl::CheckpointConfig {
            every_ops: self.every_ops,
            journal_cap: self.journal_cap,
            pacing: qos.gc_stall_budget.map(|budget| zng_ftl::GcPacing {
                stall_budget: budget,
                credit_writes: qos.gc_credit_writes,
            }),
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Rejects cadence/journal knobs without `enabled` (they would
    /// silently do nothing) and an enabled subsystem without a cadence
    /// (it would journal forever and never bound recovery).
    pub fn validate(&self) -> Result<()> {
        let invalid = |why: &str| Error::InvalidConfig {
            what: "checkpoint".into(),
            why: why.into(),
        };
        if !self.enabled {
            if self.every_ops != 0 || self.journal_cap != 0 {
                return Err(invalid(
                    "cadence and journal knobs require checkpointing to be enabled",
                ));
            }
            return Ok(());
        }
        if self.every_ops == 0 {
            return Err(invalid(
                "an enabled checkpoint subsystem needs a non-zero cadence",
            ));
        }
        Ok(())
    }
}

impl Default for CheckpointConfig {
    fn default() -> CheckpointConfig {
        CheckpointConfig::off()
    }
}

/// Device-lifetime endurance policy: per-block read-disturb counters and
/// retention ages in the flash media, a background refresh scheduler
/// paced by the GC stall-budget contract, static wear levelling that
/// migrates cold data off low-wear blocks, and stepwise capacity
/// degradation at end of life instead of the hard
/// [`zng_types::Error::DeviceWornOut`] cliff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceConfig {
    /// Master switch. Off (the default) installs no tracking, runs no
    /// refresh and keeps runs byte-identical to an endurance-free build.
    pub enabled: bool,
    /// Refresh cadence: one scheduler step every `n` completed requests.
    /// `0` disables the background scheduler (wear tracking and graceful
    /// capacity degradation still apply).
    pub refresh_every_ops: u64,
    /// Read-disturb budget: a block whose accumulated array senses reach
    /// this count is rewritten to fresh cells. `0` disables the trigger.
    pub disturb_threshold: u64,
    /// Retention budget in device cycles: a block whose oldest data has
    /// sat unprogrammed this long is rewritten. `0` disables the trigger.
    pub retention_threshold: u64,
    /// Static-levelling trigger: when the device's wear spread (max/mean
    /// erase fraction) exceeds this ratio, cold data migrates off
    /// low-wear blocks. `0.0` disables levelling.
    pub wear_spread: f64,
}

impl EnduranceConfig {
    /// Everything off — the byte-identical default.
    pub fn off() -> EnduranceConfig {
        EnduranceConfig {
            enabled: false,
            refresh_every_ops: 0,
            disturb_threshold: 0,
            retention_threshold: 0,
            wear_spread: 0.0,
        }
    }

    /// Endurance on with the scheduler's default thresholds; pass the
    /// refresh cadence (`0` = tracking and graceful EOL only).
    pub fn on(refresh_every_ops: u64) -> EnduranceConfig {
        let d = zng_ftl::RefreshPolicy::default();
        EnduranceConfig {
            enabled: true,
            refresh_every_ops,
            disturb_threshold: d.disturb_threshold,
            retention_threshold: d.retention_threshold,
            wear_spread: d.wear_spread,
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Rejects refresh/levelling knobs without `enabled` (they would
    /// silently do nothing) and wear-spread ratios below 1 (max/mean
    /// erase fraction can never be smaller than one).
    pub fn validate(&self) -> Result<()> {
        let invalid = |why: &str| Error::InvalidConfig {
            what: "endurance".into(),
            why: why.into(),
        };
        if !self.enabled {
            if self.refresh_every_ops != 0
                || self.disturb_threshold != 0
                || self.retention_threshold != 0
                || self.wear_spread != 0.0
            {
                return Err(invalid(
                    "refresh and levelling knobs require endurance to be enabled",
                ));
            }
            return Ok(());
        }
        if self.wear_spread.is_nan() || (self.wear_spread != 0.0 && self.wear_spread < 1.0) {
            return Err(invalid(
                "wear-spread trigger is a max/mean ratio: use 0 to disable or a value >= 1",
            ));
        }
        Ok(())
    }
}

impl Default for EnduranceConfig {
    fn default() -> EnduranceConfig {
        EnduranceConfig::off()
    }
}

/// End-to-end data-integrity policy: silent-corruption injection in the
/// flash arrays (miscorrections below the ECC model), per-page payload
/// checksums verified on every host/GPU-facing read, and poisoning of
/// cache lines fed by data that failed verification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegrityConfig {
    /// Master switch for *verification*. Off (the default) computes no
    /// checksums and keeps runs byte-identical to an integrity-free
    /// build.
    pub enabled: bool,
    /// Base probability that a successful array sense returns silently
    /// miscorrected data, scaled up by wear and retention age. `0.0`
    /// (the default) disables the stochastic stream — zero RNG draws.
    pub sdc_rate: f64,
    /// When `Some(n)`, the page stamped with device program sequence `n`
    /// is deterministically written corrupted — a zero-RNG single-shot
    /// for reproducible experiments.
    pub sdc_at: Option<u64>,
    /// Seed for the per-plane SDC streams (salted so they never overlap
    /// the RBER fault streams).
    pub seed: u64,
}

impl IntegrityConfig {
    /// Everything off — the byte-identical default.
    pub fn off() -> IntegrityConfig {
        IntegrityConfig {
            enabled: false,
            sdc_rate: 0.0,
            sdc_at: None,
            seed: 42,
        }
    }

    /// Verification on with a stochastic silent-corruption rate.
    pub fn with_rate(sdc_rate: f64) -> IntegrityConfig {
        IntegrityConfig {
            enabled: true,
            sdc_rate,
            ..IntegrityConfig::off()
        }
    }

    /// Verification on with one deterministic corrupted program.
    pub fn with_shot(sdc_at: u64) -> IntegrityConfig {
        IntegrityConfig {
            enabled: true,
            sdc_at: Some(sdc_at),
            ..IntegrityConfig::off()
        }
    }

    /// The device-side injection knobs in `zng-flash` vocabulary.
    pub fn sdc(&self) -> zng_flash::SdcConfig {
        zng_flash::SdcConfig {
            rate: self.sdc_rate,
            sdc_at: self.sdc_at,
            seed: self.seed,
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Rejects injection without `enabled` (silent corruption that
    /// nothing verifies would be an undetectable foot-gun) and rates
    /// outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        let invalid = |why: &str| Error::InvalidConfig {
            what: "integrity".into(),
            why: why.into(),
        };
        if !self.enabled && (self.sdc_rate != 0.0 || self.sdc_at.is_some()) {
            return Err(invalid(
                "silent-corruption injection requires integrity verification to be enabled",
            ));
        }
        if !(0.0..=1.0).contains(&self.sdc_rate) || self.sdc_rate.is_nan() {
            return Err(invalid("sdc rate must be within [0, 1]"));
        }
        Ok(())
    }
}

impl Default for IntegrityConfig {
    fn default() -> IntegrityConfig {
        IntegrityConfig::off()
    }
}

/// Redundancy & self-healing policy: RAIN stripe parity across channels,
/// reconstruction-on-read, background patrol scrub, and die/link failure
/// injection with degraded-mode operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedundancyConfig {
    /// Master switch. Off (the default) adds no parity bookkeeping, no
    /// scrub and no failure hooks — runs are byte-identical to a build
    /// without the subsystem.
    pub enabled: bool,
    /// Patrol-scrub cadence: one scrub step every `n` completed
    /// requests. `0` disables the patrol (reconstruction-on-read still
    /// works).
    pub scrub_every_ops: u64,
    /// Read-retry depth at or above which the scrubber proactively
    /// rewrites a page.
    pub scrub_threshold: u32,
    /// When `Some(n)`, kill one die after the `n`-th completed request:
    /// its blocks are fenced, reads reconstruct from the surviving
    /// stripe members, and the run ends with a rebuild onto spares.
    pub die_fail_at: Option<u64>,
    /// Which die dies: `(channel, die-within-channel)`.
    pub die_fail: (u16, u16),
    /// When `Some(ch)`, sever channel `ch`'s mesh link at the start of
    /// the run; its transfers detour through a neighbour.
    pub link_fail: Option<u16>,
}

impl RedundancyConfig {
    /// Everything off — the byte-identical default.
    pub fn off() -> RedundancyConfig {
        RedundancyConfig {
            enabled: false,
            scrub_every_ops: 0,
            scrub_threshold: 2,
            die_fail_at: None,
            die_fail: (0, 0),
            link_fail: None,
        }
    }

    /// RAIN on with the default scrub threshold and no injected
    /// failures; pass the patrol cadence (`0` = no patrol).
    pub fn rain(scrub_every_ops: u64) -> RedundancyConfig {
        RedundancyConfig {
            enabled: true,
            scrub_every_ops,
            ..RedundancyConfig::off()
        }
    }

    /// Validates against the flash geometry.
    ///
    /// # Errors
    ///
    /// Rejects failure injection or scrubbing without `enabled`, parity
    /// on a single-channel device, and out-of-range die/link targets.
    pub fn validate(&self, flash: &FlashGeometry) -> Result<()> {
        let invalid = |what: &str, why: &str| Error::InvalidConfig {
            what: what.into(),
            why: why.into(),
        };
        if !self.enabled {
            if self.die_fail_at.is_some() || self.link_fail.is_some() || self.scrub_every_ops != 0 {
                return Err(invalid(
                    "redundancy",
                    "die/link failure and patrol scrub require redundancy to be enabled",
                ));
            }
            return Ok(());
        }
        if flash.channels < 2 {
            return Err(invalid(
                "redundancy",
                "RAIN parity needs at least two channels to stripe across",
            ));
        }
        let dies = flash.packages_per_channel * flash.dies_per_package;
        if self.die_fail_at.is_some()
            && (self.die_fail.0 as usize >= flash.channels || self.die_fail.1 as usize >= dies)
        {
            return Err(invalid("die_fail", "die-fail target outside the geometry"));
        }
        if let Some(ch) = self.link_fail {
            if ch as usize >= flash.channels {
                return Err(invalid(
                    "link_fail",
                    "link-fail channel outside the geometry",
                ));
            }
        }
        Ok(())
    }
}

impl Default for RedundancyConfig {
    fn default() -> RedundancyConfig {
        RedundancyConfig::off()
    }
}

impl SimConfig {
    /// The default scaled configuration used by the benches.
    pub fn scaled() -> SimConfig {
        // Scaled device: same channels/timing as Table I, fewer
        // dies/blocks/pages so figure sweeps run in seconds. The register
        // count per plane is doubled to keep the *per-package* register
        // capacity proportional to the (scaled) hot write set, matching
        // the full-size device's ratio.
        let flash = FlashGeometry {
            channels: 16,
            packages_per_channel: 1,
            dies_per_package: 4,
            planes_per_die: 4,
            blocks_per_plane: 128,
            pages_per_block: 64,
            page_bytes: 4096,
            registers_per_plane: 16,
            io_ports_per_package: 2,
        };
        SimConfig {
            gpu: GpuConfig::table1(),
            flash,
            register_topology: RegisterTopology::NiF,
            prefetch_policy: PrefetchPolicy::Dynamic,
            monitor_thresholds: (0.3, 0.05),
            // One log block per data block: the scaled device has OP
            // headroom, and coarser sharing makes log blocks fill (and GC
            // fire) after a few thousand writes — far earlier than the
            // paper's full-size device would. GC studies explicitly set
            // group_size = 2 and fewer registers to exercise the path.
            group_size: 1,
            buffer_pages: 4096,
            hetero_gpu_mem_pages: 1024,
            free_gc: false,
            fault: FaultConfig::none(),
            crash_at: None,
            qos: QosConfig::unbounded(),
            redundancy: RedundancyConfig::off(),
            integrity: IntegrityConfig::off(),
            endurance: EnduranceConfig::off(),
            checkpoint: CheckpointConfig::off(),
            health: HealthConfig::off(),
            watchdog: None,
            perf: false,
        }
    }

    /// A minimal configuration for unit tests.
    pub fn tiny() -> SimConfig {
        let mut cfg = SimConfig::scaled();
        cfg.gpu = GpuConfig::tiny();
        cfg.flash = FlashGeometry::tiny();
        cfg.buffer_pages = 64;
        cfg.hetero_gpu_mem_pages = 32;
        cfg
    }

    /// Validates the combined configuration.
    ///
    /// # Errors
    ///
    /// Propagates GPU/flash validation errors.
    pub fn validate(&self) -> Result<()> {
        self.gpu.validate()?;
        self.flash.validate()?;
        self.qos.validate()?;
        self.redundancy.validate(&self.flash)?;
        self.integrity.validate()?;
        self.endurance.validate()?;
        self.checkpoint.validate()?;
        self.health.validate()?;
        if let Some(d) = self.fault.degrading {
            d.validate()?;
            let dies = self.flash.packages_per_channel * self.flash.dies_per_package;
            if d.channel as usize >= self.flash.channels || d.die as usize >= dies {
                return Err(Error::InvalidConfig {
                    what: "degrading die".into(),
                    why: "degrading-die target outside the geometry".into(),
                });
            }
        }
        if self.watchdog == Some(0) {
            return Err(Error::InvalidConfig {
                what: "watchdog".into(),
                why: "a zero-cycle progress budget would trip immediately".into(),
            });
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_flags() {
        assert!(PlatformKind::Zng.has_rdopt());
        assert!(PlatformKind::Zng.has_wropt());
        assert!(PlatformKind::Zng.has_redirection());
        assert!(PlatformKind::ZngRdopt.has_rdopt());
        assert!(!PlatformKind::ZngRdopt.has_wropt());
        assert!(PlatformKind::ZngWropt.has_wropt());
        assert!(!PlatformKind::ZngWropt.has_redirection());
        assert!(!PlatformKind::Optane.has_flash());
        assert!(PlatformKind::HybridGpu.has_flash());
        assert!(!PlatformKind::Ideal.has_flash());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(PlatformKind::ZngBase.to_string(), "ZnG-base");
        assert_eq!(PlatformKind::HybridGpu.to_string(), "HybridGPU");
    }

    #[test]
    fn seven_paper_platforms() {
        assert_eq!(PlatformKind::PAPER_PLATFORMS.len(), 7);
    }

    #[test]
    fn configs_validate() {
        SimConfig::scaled().validate().unwrap();
        SimConfig::tiny().validate().unwrap();
        let mut bad = SimConfig::tiny();
        bad.flash.channels = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn redundancy_validation_rules() {
        let mut cfg = SimConfig::tiny();
        cfg.redundancy = RedundancyConfig::rain(100);
        cfg.validate().unwrap();

        // Failure injection without the master switch is rejected.
        let mut orphan = SimConfig::tiny();
        orphan.redundancy.die_fail_at = Some(5);
        assert!(orphan.validate().is_err());

        // Parity needs at least two channels.
        let mut narrow = SimConfig::tiny();
        narrow.redundancy = RedundancyConfig::rain(0);
        narrow.flash.channels = 1;
        assert!(narrow.validate().is_err());

        // Die/link targets must exist.
        let mut off_die = SimConfig::tiny();
        off_die.redundancy = RedundancyConfig::rain(0);
        off_die.redundancy.die_fail_at = Some(1);
        off_die.redundancy.die_fail = (99, 0);
        assert!(off_die.validate().is_err());
        let mut off_link = SimConfig::tiny();
        off_link.redundancy = RedundancyConfig::rain(0);
        off_link.redundancy.link_fail = Some(99);
        assert!(off_link.validate().is_err());
    }

    #[test]
    fn integrity_validation_rules() {
        let mut cfg = SimConfig::tiny();
        cfg.integrity = IntegrityConfig::with_rate(1e-4);
        cfg.validate().unwrap();
        cfg.integrity = IntegrityConfig::with_shot(7);
        cfg.validate().unwrap();

        // Injection without verification is rejected.
        let mut orphan = SimConfig::tiny();
        orphan.integrity.sdc_rate = 1e-4;
        assert!(orphan.validate().is_err());
        let mut shot = SimConfig::tiny();
        shot.integrity.sdc_at = Some(3);
        assert!(shot.validate().is_err());

        // The rate is a probability.
        let mut hot = SimConfig::tiny();
        hot.integrity = IntegrityConfig::with_rate(1.5);
        assert!(hot.validate().is_err());
    }

    #[test]
    fn endurance_validation_rules() {
        let mut cfg = SimConfig::tiny();
        cfg.endurance = EnduranceConfig::on(64);
        cfg.validate().unwrap();
        cfg.endurance.refresh_every_ops = 0;
        cfg.validate().unwrap();

        // Orphan knobs without the master switch are rejected.
        let mut orphan = SimConfig::tiny();
        orphan.endurance.refresh_every_ops = 64;
        assert!(orphan.validate().is_err());
        let mut orphan = SimConfig::tiny();
        orphan.endurance.disturb_threshold = 100;
        assert!(orphan.validate().is_err());
        let mut orphan = SimConfig::tiny();
        orphan.endurance.wear_spread = 2.0;
        assert!(orphan.validate().is_err());

        // The levelling trigger is a max/mean ratio.
        let mut low = SimConfig::tiny();
        low.endurance = EnduranceConfig::on(0);
        low.endurance.wear_spread = 0.5;
        assert!(low.validate().is_err());
        low.endurance.wear_spread = 0.0;
        low.validate().unwrap();
    }

    #[test]
    fn checkpoint_validation_rules() {
        let mut cfg = SimConfig::tiny();
        cfg.checkpoint = CheckpointConfig::on(64);
        cfg.validate().unwrap();
        cfg.checkpoint.journal_cap = 256;
        cfg.validate().unwrap();

        // Orphan knobs without the master switch are rejected.
        let mut orphan = SimConfig::tiny();
        orphan.checkpoint.every_ops = 64;
        assert!(orphan.validate().is_err());
        let mut orphan = SimConfig::tiny();
        orphan.checkpoint.journal_cap = 256;
        assert!(orphan.validate().is_err());

        // Enabled checkpointing needs a cadence.
        let mut idle = SimConfig::tiny();
        idle.checkpoint.enabled = true;
        assert!(idle.validate().is_err());
    }

    #[test]
    fn health_validation_rules() {
        let mut cfg = SimConfig::tiny();
        cfg.health = HealthConfig::on(64);
        cfg.validate().unwrap();
        cfg.health.evacuate = true;
        cfg.validate().unwrap();

        // Orphan knobs without the master switch are rejected.
        let mut orphan = SimConfig::tiny();
        orphan.health.window = 64;
        assert!(orphan.validate().is_err());
        let mut orphan = SimConfig::tiny();
        orphan.health.evacuate = true;
        assert!(orphan.validate().is_err());
        let mut orphan = SimConfig::tiny();
        orphan.health.suspect_threshold = 0.2;
        assert!(orphan.validate().is_err());

        // An enabled monitor needs a cadence, a window and a sane
        // threshold.
        let mut idle = SimConfig::tiny();
        idle.health = HealthConfig::on(0);
        assert!(idle.validate().is_err());
        let mut blind = SimConfig::tiny();
        blind.health = HealthConfig::on(64);
        blind.health.window = 0;
        assert!(blind.validate().is_err());
        let mut hot = SimConfig::tiny();
        hot.health = HealthConfig::on(64);
        hot.health.suspect_threshold = 1.5;
        assert!(hot.validate().is_err());
    }

    #[test]
    fn degrading_die_target_is_geometry_checked() {
        let mut cfg = SimConfig::tiny();
        cfg.fault = FaultConfig::none().with_degrading(zng_flash::DegradingDie {
            channel: 0,
            die: 0,
            onset: 100,
            death: 200,
        });
        cfg.validate().unwrap();
        cfg.fault.degrading = Some(zng_flash::DegradingDie {
            channel: 99,
            die: 0,
            onset: 100,
            death: 200,
        });
        assert!(cfg.validate().is_err());
        cfg.fault.degrading = Some(zng_flash::DegradingDie {
            channel: 0,
            die: 0,
            onset: 200,
            death: 200,
        });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn watchdog_rejects_zero_budget() {
        let mut cfg = SimConfig::tiny();
        cfg.watchdog = Some(0);
        assert!(cfg.validate().is_err());
        cfg.watchdog = Some(1_000_000);
        cfg.validate().unwrap();
    }
}
