//! Platform-specific memory backends (the path below the shared L2).

use zng_flash::{EnduranceReport, FlashDevice, RegisterTopology, DISTURB_READS_PER_CYCLE};
use zng_ftl::{
    CheckpointCounters, EnduranceCounters, GcPacing, GcReport, HealthCounters, IntegrityCounters,
    RainConfig, RainCounters, RecoveryReport, RefreshPolicy, WriteMode, ZngFtl,
};
use zng_mem::{MemSubsystem, MemTiming, PcieLink};
use zng_ssd::{NvmeSsd, PageBuffer, SsdModule};
use zng_types::ids::{ChannelId, DieId};
use zng_types::{AccessKind, Cycle, Error, Freq, Result};

use crate::config::{PlatformKind, SimConfig};

/// A completed backend write.
#[derive(Debug, Clone, Default)]
pub struct BackendWrite {
    /// When the write retires.
    pub done: Cycle,
    /// A garbage collection the write triggered (ZnG platforms).
    pub gc: Option<GcReport>,
    /// Flash-register thrashing verdict (ZnG wropt platforms).
    pub thrashing: bool,
}

/// The memory system below the GPU's shared L2.
#[derive(Debug)]
pub enum Backend {
    /// Unbounded GDDR5 (the paper's Ideal reference).
    Ideal {
        /// The GDDR5 subsystem.
        mem: MemSubsystem,
    },
    /// Discrete GPU + NVMe SSD over PCIe with host-serviced page faults.
    Hetero {
        /// On-board GDDR5.
        gddr5: MemSubsystem,
        /// Which 4 KB pages currently reside in GPU memory.
        resident: PageBuffer,
        /// The discrete SSD.
        ssd: NvmeSsd,
        /// The host link.
        pcie: PcieLink,
        /// Host DRAM used as the staging buffer (redundant copy).
        host_dram: MemSubsystem,
    },
    /// The embedded SSD module of HybridGPU.
    HybridGpu {
        /// The SSD module (dispatcher + engine + buffer + flash).
        ssd: SsdModule,
    },
    /// Optane DC PMM behind six memory controllers.
    Optane {
        /// The Optane subsystem.
        mem: MemSubsystem,
    },
    /// ZnG: flash controllers on the GPU interconnect + zero-overhead FTL.
    Zng {
        /// The Z-NAND device (mesh network, grouped registers).
        device: FlashDevice,
        /// The zero-overhead FTL.
        ftl: ZngFtl,
        /// Instant, non-blocking GC (the Fig. 17a counterfactual).
        free_gc: bool,
    },
}

impl Backend {
    /// Builds the backend for `kind` under `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn new(kind: PlatformKind, cfg: &SimConfig, freq: Freq) -> Result<Backend> {
        cfg.validate()?;
        let mut backend = match kind {
            PlatformKind::Ideal => Backend::Ideal {
                mem: MemSubsystem::new(MemTiming::gddr5(), freq),
            },
            PlatformKind::Hetero => Backend::Hetero {
                gddr5: MemSubsystem::new(MemTiming::gddr5(), freq),
                resident: PageBuffer::new(cfg.hetero_gpu_mem_pages),
                ssd: NvmeSsd::new(cfg.flash, freq)?,
                pcie: PcieLink::gen3_x16(freq),
                host_dram: MemSubsystem::new(MemTiming::ddr4(), freq),
            },
            PlatformKind::HybridGpu => Backend::HybridGpu {
                ssd: SsdModule::hybrid(cfg.flash, cfg.buffer_pages, freq)?,
            },
            PlatformKind::Optane => Backend::Optane {
                mem: MemSubsystem::new(MemTiming::optane(), freq),
            },
            PlatformKind::ZngBase
            | PlatformKind::ZngRdopt
            | PlatformKind::ZngWropt
            | PlatformKind::Zng => {
                let registers = if kind.has_wropt() {
                    cfg.register_topology
                } else {
                    RegisterTopology::Private
                };
                let device = FlashDevice::zng_config(cfg.flash, freq, registers)?;
                let mode = if kind.has_wropt() {
                    WriteMode::Buffered
                } else {
                    WriteMode::Direct
                };
                let ftl = ZngFtl::new(&device, cfg.group_size, mode);
                Backend::Zng {
                    device,
                    ftl,
                    free_gc: cfg.free_gc,
                }
            }
        };
        match &mut backend {
            Backend::Zng { device, .. } => device.set_fault_config(&cfg.fault),
            Backend::HybridGpu { ssd } => ssd.apply_faults(&cfg.fault),
            Backend::Hetero { ssd, .. } => ssd.apply_faults(&cfg.fault),
            Backend::Ideal { .. } | Backend::Optane { .. } => {}
        }
        // Overload control: bound the flash-side queues and pace GC.
        // Hetero's page-fault path mutates residency before touching the
        // SSD, so a rejected retry would not be idempotent there; the
        // bounded story covers the two FTL-driven flash platforms.
        if cfg.qos.queue_depth.is_some() {
            match &mut backend {
                Backend::Zng { device, .. } => device.set_queue_depth(cfg.qos.queue_depth),
                Backend::HybridGpu { ssd } => ssd.set_queue_depth(cfg.qos.queue_depth),
                _ => {}
            }
        }
        if let Some(budget) = cfg.qos.gc_stall_budget {
            if let Backend::Zng { ftl, .. } = &mut backend {
                ftl.set_gc_pacing(Some(GcPacing {
                    stall_budget: budget,
                    credit_writes: cfg.qos.gc_credit_writes,
                }));
            }
        }
        // Redundancy: RAIN parity + patrol scrub on every flash FTL. The
        // scrubber inherits the QoS GC stall budget so background repair
        // and foreground traffic share one pacing contract.
        if cfg.redundancy.enabled {
            let rain = RainConfig {
                scrub_threshold: cfg.redundancy.scrub_threshold,
                pacing: cfg.qos.gc_stall_budget.map(|budget| GcPacing {
                    stall_budget: budget,
                    credit_writes: cfg.qos.gc_credit_writes,
                }),
            };
            backend.set_redundancy(Some(rain));
        }
        // End-to-end integrity: arm silent-corruption injection on the
        // media and payload verification in the FTL. Off by default —
        // no checksum work, no RNG draws, byte-identical output.
        if cfg.integrity.enabled {
            let sdc = cfg.integrity.sdc();
            match &mut backend {
                Backend::Zng { device, ftl, .. } => {
                    device.set_integrity_config(&sdc);
                    ftl.set_integrity(true);
                }
                Backend::HybridGpu { ssd } => ssd.apply_integrity(&sdc, true),
                Backend::Hetero { ssd, .. } => ssd.apply_integrity(&sdc, true),
                Backend::Ideal { .. } | Backend::Optane { .. } => {}
            }
        }
        // Device-lifetime endurance: arm read-disturb/retention tracking
        // on the media and the refresh + static-levelling scheduler in
        // the FTL. The scheduler inherits the QoS GC stall budget so
        // background refresh and foreground traffic share one pacing
        // contract. Off by default — no counters, byte-identical output.
        if cfg.endurance.enabled {
            let policy = RefreshPolicy {
                disturb_threshold: cfg.endurance.disturb_threshold,
                retention_threshold: cfg.endurance.retention_threshold,
                wear_spread: cfg.endurance.wear_spread,
                pacing: cfg.qos.gc_stall_budget.map(|budget| GcPacing {
                    stall_budget: budget,
                    credit_writes: cfg.qos.gc_credit_writes,
                }),
            };
            match &mut backend {
                Backend::Zng { device, ftl, .. } => {
                    device.set_endurance_tracking(Some(DISTURB_READS_PER_CYCLE));
                    ftl.set_endurance(Some(policy));
                }
                Backend::HybridGpu { ssd } => ssd.apply_endurance(policy),
                Backend::Hetero { ssd, .. } => ssd.apply_endurance(policy),
                Backend::Ideal { .. } | Backend::Optane { .. } => {}
            }
        }
        // Bounded-time crash recovery: mapping checkpoints + delta
        // journal in a reserved flash namespace, paced by the same QoS
        // stall-budget contract as GC. Off by default — no checkpoint
        // pages, no journal, byte-identical output.
        if cfg.checkpoint.enabled {
            let policy = cfg.checkpoint.ftl(&cfg.qos);
            match &mut backend {
                Backend::Zng { ftl, .. } => ftl.set_checkpointing(Some(policy)),
                Backend::HybridGpu { ssd } => ssd.set_checkpointing(Some(policy)),
                Backend::Hetero { ssd, .. } => ssd.set_checkpointing(Some(policy)),
                Backend::Ideal { .. } | Backend::Optane { .. } => {}
            }
        }
        // Predictive health: per-die telemetry scoring, suspect
        // quarantine and pre-emptive evacuation on the flash FTLs, with
        // evacuation paced by the same QoS stall-budget contract as GC.
        // Off by default — no scoring, byte-identical output.
        if cfg.health.enabled {
            let policy = cfg.health.ftl(&cfg.qos);
            match &mut backend {
                Backend::Zng { ftl, .. } => ftl.set_health(Some(policy)),
                Backend::HybridGpu { ssd } => ssd.set_health(Some(policy)),
                Backend::Hetero { ssd, .. } => ssd.set_health(Some(policy)),
                Backend::Ideal { .. } | Backend::Optane { .. } => {}
            }
        }
        Ok(backend)
    }

    /// Installs (or removes, with `None`) RAIN redundancy on the flash
    /// FTL. A no-op on flashless platforms.
    pub fn set_redundancy(&mut self, config: Option<RainConfig>) {
        match self {
            Backend::Zng { device, ftl, .. } => ftl.set_redundancy(device, config),
            Backend::HybridGpu { ssd } => ssd.set_redundancy(config),
            Backend::Hetero { ssd, .. } => ssd.set_redundancy(config),
            Backend::Ideal { .. } | Backend::Optane { .. } => {}
        }
    }

    /// Read-retry attempts the host/controller issues on top of the
    /// plane's own retry ladder before an uncorrectable read is surfaced
    /// to the workload.
    const HOST_READ_ATTEMPTS: u32 = 8;

    /// Reads `bytes` of the page `vpn` starting at `sector`; returns the
    /// data-arrival time at the L2.
    ///
    /// # Errors
    ///
    /// Propagates FTL/flash errors.
    pub fn read(&mut self, now: Cycle, sector: u64, vpn: u64, bytes: usize) -> Result<Cycle> {
        match self {
            Backend::Ideal { mem } => Ok(mem.access(now, sector, AccessKind::Read, bytes)),
            Backend::Optane { mem } => Ok(mem.access(now, sector, AccessKind::Read, bytes)),
            Backend::HybridGpu { ssd } => ssd.access_sector(now, vpn, AccessKind::Read),
            Backend::Hetero {
                gddr5,
                resident,
                ssd,
                pcie,
                host_dram,
            } => {
                let t = Self::hetero_ensure_resident(now, vpn, resident, ssd, pcie, host_dram)?;
                Ok(gddr5.access(t, sector, AccessKind::Read, bytes))
            }
            Backend::Zng { device, ftl, .. } => {
                // Host-level retry: an uncorrectable sense is transient,
                // so the controller re-issues the read a few times before
                // giving up on the request.
                let mut attempt = 0;
                loop {
                    match ftl.read(now, device, vpn, bytes) {
                        Ok(t) => return Ok(t),
                        Err(Error::UncorrectableRead { .. })
                            if attempt + 1 < Self::HOST_READ_ATTEMPTS =>
                        {
                            attempt += 1;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }

    /// Hetero page-fault path: host interrupt → SSD page read → host DRAM
    /// staging copy → PCIe DMA into GPU memory.
    fn hetero_ensure_resident(
        now: Cycle,
        vpn: u64,
        resident: &mut PageBuffer,
        ssd: &mut NvmeSsd,
        pcie: &mut PcieLink,
        host_dram: &mut MemSubsystem,
    ) -> Result<Cycle> {
        let lookup = resident.access(vpn, false);
        if lookup.hit {
            return Ok(now);
        }
        let fault = now + pcie.fault_software_overhead();
        let from_ssd = ssd.read_page(fault, vpn)?;
        // Redundant host-side copy (user/privilege switch): write then
        // read the staging buffer. These happen at future timestamps, so
        // they pay fixed latency rather than reserving a controller.
        let staged = host_dram.access_unqueued(from_ssd, AccessKind::Write, 4096);
        let staged = host_dram.access_unqueued(staged, AccessKind::Read, 4096);
        let landed = pcie.dma(staged, 4096);
        if let Some(dirty) = lookup.evicted_dirty {
            // Victim page written back asynchronously (does not gate this
            // fault): DMA up, then SSD program.
            let up = pcie.dma(landed, 4096);
            ssd.write_page(up, dirty)?;
        }
        Ok(landed)
    }

    /// Writes one 128 B sector of `vpn`.
    ///
    /// # Errors
    ///
    /// Propagates FTL/flash errors.
    pub fn write(&mut self, now: Cycle, sector: u64, vpn: u64) -> Result<BackendWrite> {
        match self {
            Backend::Ideal { mem } => Ok(BackendWrite {
                done: mem.access(now, sector, AccessKind::Write, 128),
                ..BackendWrite::default()
            }),
            Backend::Optane { mem } => Ok(BackendWrite {
                done: mem.access(now, sector, AccessKind::Write, 128),
                ..BackendWrite::default()
            }),
            Backend::HybridGpu { ssd } => Ok(BackendWrite {
                done: ssd.access_sector(now, vpn, AccessKind::Write)?,
                ..BackendWrite::default()
            }),
            Backend::Hetero {
                gddr5,
                resident,
                ssd,
                pcie,
                host_dram,
            } => {
                let t = Self::hetero_ensure_resident(now, vpn, resident, ssd, pcie, host_dram)?;
                // Dirty the resident page.
                resident.access(vpn, true);
                Ok(BackendWrite {
                    done: gddr5.access(t, sector, AccessKind::Write, 128),
                    ..BackendWrite::default()
                })
            }
            Backend::Zng {
                device,
                ftl,
                free_gc,
            } => {
                let r = ftl.write(now, device, vpn)?;
                if *free_gc {
                    // Counterfactual: the GC was free and non-blocking.
                    return Ok(BackendWrite {
                        done: if r.gc.is_some() {
                            now + Cycle(1)
                        } else {
                            r.done
                        },
                        gc: None,
                        thrashing: r.thrashing,
                    });
                }
                Ok(BackendWrite {
                    done: r.done,
                    gc: r.gc,
                    thrashing: r.thrashing,
                })
            }
        }
    }

    /// Power cut at `now` followed by FTL recovery.
    ///
    /// All volatile storage-side state is lost — mapping tables, flash
    /// register contents, write buffers, Hetero's residency tracking —
    /// and the FTL rebuilds its mapping from the device's out-of-band
    /// metadata. Returns `None` for platforms with no flash (their memory
    /// is modelled as simple DRAM/PMM with nothing to recover).
    ///
    /// # Errors
    ///
    /// Propagates flash errors from the recovery scan's dead-block
    /// erases.
    pub fn crash_recover(&mut self, now: Cycle) -> Result<Option<RecoveryReport>> {
        match self {
            Backend::Zng { device, ftl, .. } => {
                device.power_loss(now);
                Ok(Some(ftl.recover(now, device)?))
            }
            Backend::HybridGpu { ssd } => Ok(Some(ssd.crash_recover(now)?)),
            Backend::Hetero { resident, ssd, .. } => {
                // GPU-resident dirty pages die with GDDR5; the residency
                // tracker restarts cold so every page re-faults.
                resident.power_loss();
                Ok(Some(ssd.crash_recover(now)?))
            }
            Backend::Ideal { .. } | Backend::Optane { .. } => Ok(None),
        }
    }

    /// The Z-NAND device, if this platform has one.
    pub fn flash_device(&self) -> Option<&FlashDevice> {
        match self {
            Backend::HybridGpu { ssd } => Some(ssd.device()),
            Backend::Zng { device, .. } => Some(device),
            Backend::Hetero { ssd, .. } => Some(ssd.device()),
            _ => None,
        }
    }

    /// The ZnG FTL, if this is a ZnG platform.
    pub fn zng_ftl(&self) -> Option<&ZngFtl> {
        match self {
            Backend::Zng { ftl, .. } => Some(ftl),
            _ => None,
        }
    }

    /// Garbage collections performed by the backend's FTL.
    pub fn gcs(&self) -> u64 {
        match self {
            Backend::Zng { ftl, .. } => ftl.gcs(),
            Backend::HybridGpu { ssd } => ssd.ftl().gcs(),
            Backend::Hetero { ssd, .. } => ssd.ftl().gcs(),
            _ => 0,
        }
    }

    /// Blocks the backend's FTL permanently retired after failed
    /// programs/erases.
    pub fn blocks_retired(&self) -> u64 {
        match self {
            Backend::Zng { ftl, .. } => ftl.blocks_retired(),
            Backend::HybridGpu { ssd } => ssd.ftl().blocks_retired(),
            Backend::Hetero { ssd, .. } => ssd.ftl().blocks_retired(),
            _ => 0,
        }
    }

    /// Writes the backend's FTL re-drove after program failures.
    pub fn write_redrives(&self) -> u64 {
        match self {
            Backend::Zng { ftl, .. } => ftl.write_redrives(),
            Backend::HybridGpu { ssd } => ssd.ftl().write_redrives(),
            Backend::Hetero { ssd, .. } => ssd.ftl().write_redrives(),
            _ => 0,
        }
    }

    /// Admissions refused by bounded queues (channels, network links,
    /// the SSD-module dispatcher). Zero without a bounded [`QosConfig`].
    ///
    /// [`QosConfig`]: crate::qos::QosConfig
    pub fn qos_rejections(&self) -> u64 {
        match self {
            Backend::Zng { device, .. } => device.qos_rejections(),
            Backend::HybridGpu { ssd } => ssd.qos_rejections(),
            _ => 0,
        }
    }

    /// Largest in-flight population admitted to any bounded queue.
    pub fn qos_max_occupancy(&self) -> u64 {
        match self {
            Backend::Zng { device, .. } => device.qos_max_occupancy(),
            Backend::HybridGpu { ssd } => ssd.qos_max_occupancy(),
            _ => 0,
        }
    }

    /// Log-block merges that overran their pacing deadline.
    pub fn gc_deadline_misses(&self) -> u64 {
        match self {
            Backend::Zng { ftl, .. } => ftl.gc_deadline_misses(),
            _ => 0,
        }
    }

    /// Log-block merges that ran under a pacing budget.
    pub fn paced_gcs(&self) -> u64 {
        match self {
            Backend::Zng { ftl, .. } => ftl.paced_gcs(),
            _ => 0,
        }
    }

    /// Kills one die and fences its blocks out of the allocator; returns
    /// when the emergency relocations complete. A no-op (returns `now`)
    /// on flashless platforms.
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors from the fencing relocations.
    pub fn fail_die(&mut self, now: Cycle, channel: u16, die: u16) -> Result<Cycle> {
        let (ch, die) = (ChannelId(channel), DieId(die));
        match self {
            Backend::Zng { device, ftl, .. } => {
                device.fail_die(ch, die);
                ftl.fence_dead_die(now, device)
            }
            Backend::HybridGpu { ssd } => ssd.fail_die(now, ch, die),
            Backend::Hetero { ssd, .. } => ssd.fail_die(now, ch, die),
            Backend::Ideal { .. } | Backend::Optane { .. } => Ok(now),
        }
    }

    /// Severs one flash network link; transfers detour around it.
    pub fn fail_link(&mut self, channel: u16) {
        let ch = ChannelId(channel);
        match self {
            Backend::Zng { device, .. } => device.fail_link(ch),
            Backend::HybridGpu { ssd } => ssd.fail_link(ch),
            Backend::Hetero { ssd, .. } => ssd.fail_link(ch),
            Backend::Ideal { .. } | Backend::Optane { .. } => {}
        }
    }

    /// One patrol-scrub step on the flash FTL; returns the foreground
    /// stall horizon (capped by the pacing budget when one is set).
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors.
    pub fn scrub_step(&mut self, now: Cycle) -> Result<Cycle> {
        match self {
            Backend::Zng { device, ftl, .. } => ftl.scrub_step(now, device),
            Backend::HybridGpu { ssd } => ssd.scrub_step(now),
            Backend::Hetero { ssd, .. } => ssd.scrub_step(now),
            Backend::Ideal { .. } | Backend::Optane { .. } => Ok(now),
        }
    }

    /// Re-creates every page stranded on dead dies onto healthy spare
    /// blocks; returns `(completion, pages rebuilt)`.
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors from reconstruction and reprogramming.
    pub fn rebuild_dead_die(&mut self, now: Cycle) -> Result<(Cycle, u64)> {
        match self {
            Backend::Zng { device, ftl, .. } => ftl.rebuild_dead_die(now, device),
            Backend::HybridGpu { ssd } => ssd.rebuild_dead_die(now),
            Backend::Hetero { ssd, .. } => ssd.rebuild_dead_die(now),
            Backend::Ideal { .. } | Backend::Optane { .. } => Ok((now, 0)),
        }
    }

    /// One refresh-scheduler step on the flash FTL (threshold scan →
    /// block refresh, or a static-levelling migration); returns the
    /// foreground stall horizon (capped by the pacing budget when one is
    /// set). A no-op without endurance or on flashless platforms.
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors.
    pub fn refresh_step(&mut self, now: Cycle) -> Result<Cycle> {
        match self {
            Backend::Zng { device, ftl, .. } => ftl.refresh_step(now, device),
            Backend::HybridGpu { ssd } => ssd.refresh_step(now),
            Backend::Hetero { ssd, .. } => ssd.refresh_step(now),
            Backend::Ideal { .. } | Backend::Optane { .. } => Ok(now),
        }
    }

    /// One background checkpoint write on the flash FTL: snapshot the
    /// mapping into checkpoint blocks and open a fresh journal epoch;
    /// returns the foreground stall horizon (capped by the pacing
    /// budget when one is set). A no-op without checkpointing or on
    /// flashless platforms.
    pub fn checkpoint_step(&mut self, now: Cycle) -> Cycle {
        match self {
            Backend::Zng { device, ftl, .. } => ftl.checkpoint_step(now, device),
            Backend::HybridGpu { ssd } => ssd.checkpoint_step(now),
            Backend::Hetero { ssd, .. } => ssd.checkpoint_step(now),
            Backend::Ideal { .. } | Backend::Optane { .. } => now,
        }
    }

    /// One predictive-health tick on the flash FTL: score the per-die
    /// telemetry, fence dies that died since the last tick, evacuate one
    /// victim block off a suspect die (when evacuation is on) and
    /// rehabilitate false positives; returns the foreground stall
    /// horizon (capped by the pacing budget when one is set). A no-op
    /// without a health policy or on flashless platforms.
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors.
    pub fn health_step(&mut self, now: Cycle) -> Result<Cycle> {
        match self {
            Backend::Zng { device, ftl, .. } => ftl.health_step(now, device),
            Backend::HybridGpu { ssd } => ssd.health_step(now),
            Backend::Hetero { ssd, .. } => ssd.health_step(now),
            Backend::Ideal { .. } | Backend::Optane { .. } => Ok(now),
        }
    }

    /// The health monitor's counters, when the subsystem is on.
    pub fn health_counters(&self) -> Option<HealthCounters> {
        match self {
            Backend::Zng { ftl, .. } => ftl.health_counters(),
            Backend::HybridGpu { ssd } => ssd.ftl().health_counters(),
            Backend::Hetero { ssd, .. } => ssd.ftl().health_counters(),
            Backend::Ideal { .. } | Backend::Optane { .. } => None,
        }
    }

    /// The dies currently quarantined by the health monitor, sorted.
    pub fn quarantined_dies(&self) -> Vec<(u16, u16)> {
        match self {
            Backend::Zng { ftl, .. } => ftl.quarantined_dies(),
            Backend::HybridGpu { ssd } => ssd.ftl().quarantined_dies(),
            Backend::Hetero { ssd, .. } => ssd.ftl().quarantined_dies(),
            Backend::Ideal { .. } | Backend::Optane { .. } => Vec::new(),
        }
    }

    /// The checkpoint writer's counters, when the subsystem is on.
    pub fn checkpoint_counters(&self) -> Option<CheckpointCounters> {
        match self {
            Backend::Zng { ftl, .. } => ftl.checkpoint_counters(),
            Backend::HybridGpu { ssd } => ssd.ftl().checkpoint_counters(),
            Backend::Hetero { ssd, .. } => ssd.ftl().checkpoint_counters(),
            Backend::Ideal { .. } | Backend::Optane { .. } => None,
        }
    }

    /// The endurance scheduler's counters, when the subsystem is on.
    pub fn endurance_counters(&self) -> Option<EnduranceCounters> {
        match self {
            Backend::Zng { ftl, .. } => ftl.endurance_counters(),
            Backend::HybridGpu { ssd } => ssd.ftl().endurance_counters(),
            Backend::Hetero { ssd, .. } => ssd.ftl().endurance_counters(),
            Backend::Ideal { .. } | Backend::Optane { .. } => None,
        }
    }

    /// The device's wear histogram, if this platform has flash.
    pub fn endurance_report(&self) -> Option<EnduranceReport> {
        self.flash_device().map(FlashDevice::endurance)
    }

    /// The integrity layer's counters, when verification is enabled.
    pub fn integrity_counters(&self) -> Option<IntegrityCounters> {
        match self {
            Backend::Zng { ftl, .. } if ftl.integrity_enabled() => Some(ftl.integrity_counters()),
            Backend::HybridGpu { ssd } if ssd.ftl().integrity_enabled() => {
                Some(ssd.ftl().integrity_counters())
            }
            Backend::Hetero { ssd, .. } if ssd.ftl().integrity_enabled() => {
                Some(ssd.ftl().integrity_counters())
            }
            _ => None,
        }
    }

    /// Silently miscorrected pages injected into the flash arrays.
    pub fn silent_corruptions(&self) -> u64 {
        self.flash_device()
            .map_or(0, |d| d.stats().silent_corruptions())
    }

    /// The redundancy subsystem's counters, when RAIN is installed.
    pub fn rain_counters(&self) -> Option<RainCounters> {
        match self {
            Backend::Zng { ftl, .. } => ftl.redundancy().map(|r| r.counters()),
            Backend::HybridGpu { ssd } => ssd.ftl().redundancy().map(|r| r.counters()),
            Backend::Hetero { ssd, .. } => ssd.ftl().redundancy().map(|r| r.counters()),
            Backend::Ideal { .. } | Backend::Optane { .. } => None,
        }
    }

    /// Reads that targeted a dead die (each one forced a reconstruction
    /// or an uncorrectable error).
    pub fn dead_die_reads(&self) -> u64 {
        self.flash_device().map_or(0, FlashDevice::dead_die_reads)
    }

    /// Transfers that detoured around a severed flash network link.
    pub fn rerouted_transfers(&self) -> u64 {
        self.flash_device().map_or(0, |d| d.network().rerouted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend(kind: PlatformKind) -> Backend {
        Backend::new(kind, &SimConfig::tiny(), Freq::default()).unwrap()
    }

    #[test]
    fn all_platforms_construct() {
        for kind in PlatformKind::PAPER_PLATFORMS {
            let _ = backend(kind);
        }
        let _ = backend(PlatformKind::Ideal);
    }

    #[test]
    fn ideal_reads_are_fast() {
        let mut b = backend(PlatformKind::Ideal);
        let t = b.read(Cycle(0), 0, 0, 128).unwrap();
        assert!(t < Cycle(500), "{t}");
    }

    #[test]
    fn zng_base_read_pays_flash_sense() {
        let mut b = backend(PlatformKind::ZngBase);
        let t = b.read(Cycle(0), 0, 0, 128).unwrap();
        assert!(t > Cycle(3_600), "{t}");
        assert!(b.flash_device().unwrap().stats().total_reads() > 0);
    }

    #[test]
    fn hetero_first_touch_faults_then_hits() {
        let mut b = backend(PlatformKind::Hetero);
        let cold = b.read(Cycle(0), 0, 0, 128).unwrap();
        let warm = b.read(cold, 0, 0, 128).unwrap() - cold;
        assert!(cold > Cycle(10_000), "fault path is expensive: {cold}");
        assert!(warm < Cycle(1_000), "resident page is GDDR5-fast: {warm}");
    }

    #[test]
    fn wropt_writes_buffer_in_registers() {
        let mut b = backend(PlatformKind::Zng);
        let w = b.write(Cycle(0), 0, 0).unwrap();
        assert!(
            w.done < Cycle(10_000),
            "buffered write is fast: {:?}",
            w.done
        );
        // No program yet.
        assert_eq!(b.flash_device().unwrap().stats().total_programs(), 0);
    }

    #[test]
    fn base_writes_pay_read_modify_and_background_program() {
        let mut b = backend(PlatformKind::ZngBase);
        let w = b.write(Cycle(0), 0, 0).unwrap();
        // The warp sees the RMW fetch (page sense + staging), not the
        // 100 us program, which runs in the background on the plane.
        assert!(w.done > Cycle(3_600), "RMW fetch: {:?}", w.done);
        assert!(w.done < Cycle(120_000), "program is async: {:?}", w.done);
        assert!(b.flash_device().unwrap().stats().total_programs() > 0);
    }

    #[test]
    fn free_gc_suppresses_blocking() {
        let mut cfg = SimConfig::tiny();
        cfg.free_gc = true;
        let mut b = Backend::new(PlatformKind::ZngBase, &cfg, Freq::default()).unwrap();
        // tiny geometry: 16-page log blocks; hammer one page until GC.
        let mut t = Cycle(0);
        for _ in 0..40 {
            let w = b.write(t, 0, 0).unwrap();
            assert!(w.gc.is_none(), "free GC never surfaces");
            t = w.done;
        }
        assert!(b.gcs() > 0, "GC still ran internally");
    }

    #[test]
    fn crash_recover_covers_every_platform_kind() {
        for kind in PlatformKind::PAPER_PLATFORMS {
            let mut b = backend(kind);
            let mut t = Cycle(0);
            for vpn in 0..4 {
                t = b.write(t, vpn * 4096, vpn).unwrap().done;
            }
            let report = b.crash_recover(t + Cycle(10_000_000)).unwrap();
            assert_eq!(
                report.is_some(),
                kind.has_flash(),
                "{kind}: recovery report only for flash platforms"
            );
            // The backend stays serviceable after the cut.
            b.read(t + Cycle(20_000_000), 0, 0, 128).unwrap();
        }
    }

    #[test]
    fn bounded_zng_backend_rejects_bursts_with_backpressure() {
        let mut cfg = SimConfig::tiny();
        cfg.qos = crate::qos::QosConfig::bounded(1);
        let mut b = Backend::new(PlatformKind::ZngBase, &cfg, Freq::default()).unwrap();
        let first = b.read(Cycle(0), 0, 0, 128).unwrap();
        // A same-cycle burst on the same channel exceeds the depth-1 bound.
        match b.read(Cycle(0), 0, 0, 128) {
            Err(Error::Backpressure { retry_at }) => {
                assert!(retry_at > Cycle(0));
                assert!(retry_at <= first);
            }
            other => panic!("expected backpressure, got {other:?}"),
        }
        assert_eq!(b.qos_rejections(), 1);
        assert!(b.qos_max_occupancy() >= 1);
        // The hinted retry time admits (sequential model guarantee).
        let hinted = match b.read(Cycle(0), 0, 0, 128) {
            Err(Error::Backpressure { retry_at }) => retry_at,
            other => panic!("still saturated, got {other:?}"),
        };
        b.read(hinted, 0, 0, 128).unwrap();
    }

    #[test]
    fn default_qos_never_rejects_or_tracks() {
        let mut b = backend(PlatformKind::ZngBase);
        for i in 0..32 {
            b.read(Cycle(0), i * 128, 0, 128).unwrap();
        }
        assert_eq!(b.qos_rejections(), 0);
        assert_eq!(b.qos_max_occupancy(), 0, "unbounded mode tracks nothing");
    }

    #[test]
    fn optane_write_slower_than_read() {
        let mut b = backend(PlatformKind::Optane);
        let r = b.read(Cycle(0), 0, 0, 128).unwrap();
        let w = b.write(Cycle(0), 4096, 1).unwrap().done;
        assert!(w > r);
    }
}
