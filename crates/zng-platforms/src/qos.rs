//! Overload control and per-app QoS isolation.
//!
//! Every shared resource in the simulator is an infinite queue by
//! default: under a GC storm requests accumulate unbounded wait time and
//! one write-heavy app can starve its co-runner. [`QosConfig`] turns on
//! the overload story end to end — finite channel/module queues
//! ([`zng_flash::FlashDevice::set_queue_depth`]), bounded-backoff retries
//! at the warp scheduler, GC pacing credits ([`zng_ftl::GcPacing`]) and a
//! deterministic weighted fair-share gate ([`FairShare`]).
//!
//! The default configuration ([`QosConfig::unbounded`]) disables every
//! mechanism and is bit-identical to the pre-QoS simulator.

use std::collections::BTreeMap;

use zng_types::{ids::AppId, Cycle, Error, Result};

/// Number of per-app fair-share weight slots (app ids 0..8). Multi-app
/// mixes in the paper run at most four co-runners.
pub const MAX_QOS_APPS: usize = 8;

/// Overload-control policy, plumbed `SimConfig` → `Backend` → runner.
///
/// `QosConfig::default()` is [`QosConfig::unbounded`]: every bound off,
/// behaviour (and output) byte-identical to the unbounded simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosConfig {
    /// In-flight bound for each flash channel controller, the SSD-module
    /// dispatcher and the flash network's injection links. `None` =
    /// infinite queues (no admission control anywhere).
    pub queue_depth: Option<usize>,
    /// How many backoff retries a rejected request may perform before the
    /// runner falls back to waiting for the rejecting queue's hinted
    /// `retry_at` (which is guaranteed to admit in the sequential model).
    pub retry_budget: u32,
    /// First backoff delay; doubles every retry (exponential backoff).
    pub backoff_base: Cycle,
    /// Ceiling on a single backoff delay.
    pub backoff_cap: Cycle,
    /// GC pacing: longest foreground stall one log-block merge may
    /// impose. `None` = block the victim for the whole merge.
    pub gc_stall_budget: Option<Cycle>,
    /// GC pacing credit: foreground events one merge may stall before
    /// the victim app is released early. Ignored without a stall budget.
    pub gc_credit_writes: u64,
    /// Per-app fair-share weights (index = app id; higher = more service
    /// per fairness window). Apps beyond [`MAX_QOS_APPS`] weigh 1.
    pub fair_weights: [u32; MAX_QOS_APPS],
    /// Fairness window: how far (in weighted serviced requests) one app
    /// may run ahead of the furthest-behind active app before the warp
    /// scheduler throttles it. 0 disables the fairness gate.
    pub fair_window: u64,
}

impl QosConfig {
    /// The default policy: everything unbounded, nothing tracked —
    /// byte-identical to the simulator without overload control.
    pub fn unbounded() -> QosConfig {
        QosConfig {
            queue_depth: None,
            retry_budget: 8,
            backoff_base: Cycle(64),
            backoff_cap: Cycle(4096),
            gc_stall_budget: None,
            gc_credit_writes: 0,
            fair_weights: [1; MAX_QOS_APPS],
            fair_window: 0,
        }
    }

    /// A sensible bounded policy: finite queues of `depth`, an 8-retry
    /// exponential backoff, a 64 K-cycle GC stall budget with 32 credit
    /// writes, and a 256-request fairness window with equal weights.
    pub fn bounded(depth: usize) -> QosConfig {
        QosConfig {
            queue_depth: Some(depth),
            gc_stall_budget: Some(Cycle(65_536)),
            gc_credit_writes: 32,
            fair_window: 256,
            ..QosConfig::unbounded()
        }
    }

    /// Whether every overload-control mechanism is off (the byte-identical
    /// default).
    pub fn is_unbounded(&self) -> bool {
        self.queue_depth.is_none() && self.gc_stall_budget.is_none() && self.fair_window == 0
    }

    /// The backoff delay before retry number `attempt` (0-based):
    /// `backoff_base * 2^attempt`, saturating at `backoff_cap`.
    pub fn backoff_delay(&self, attempt: u32) -> Cycle {
        let raw = self
            .backoff_base
            .raw()
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        Cycle(raw.min(self.backoff_cap.raw()))
    }

    /// The fair-share weight of `app` (1 beyond the weight table).
    pub fn weight_for(&self, app: AppId) -> u32 {
        self.fair_weights
            .get(app.index())
            .copied()
            .unwrap_or(1)
            .max(1)
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Rejects a zero backoff base (retries would never advance time) and
    /// a cap below the base.
    pub fn validate(&self) -> Result<()> {
        if self.backoff_base == Cycle::ZERO {
            return Err(Error::invalid_config(
                "qos.backoff_base",
                "must be positive or retries cannot advance time",
            ));
        }
        if self.backoff_cap < self.backoff_base {
            return Err(Error::invalid_config(
                "qos.backoff_cap",
                "must be at least the backoff base",
            ));
        }
        Ok(())
    }
}

impl Default for QosConfig {
    fn default() -> QosConfig {
        QosConfig::unbounded()
    }
}

/// Deterministic weighted max-lag fairness tracker.
///
/// Each serviced request credits its app with `1 / weight` of weighted
/// progress (kept in integer arithmetic as `count * LCM-free` — we store
/// raw counts and compare `count_a * w_b` against `count_b * w_a` scaled,
/// avoiding floats for bit-determinism). An app is throttled when its
/// weighted progress exceeds the furthest-behind *active* app's by more
/// than the window, which bounds the service lag any app can accumulate
/// (starvation freedom).
#[derive(Debug, Clone, Default)]
pub struct FairShare {
    /// Requests serviced per app.
    served: BTreeMap<u16, u64>,
    /// Apps that still have unfinished warps.
    active: BTreeMap<u16, u64>,
    /// Throttle decisions taken.
    throttles: u64,
    /// Largest weighted lead observed between any two active apps.
    max_lag: u64,
}

impl FairShare {
    /// Creates a tracker with `warps_per_app` unfinished warps per app.
    pub fn new(warps_per_app: &BTreeMap<u16, u64>) -> FairShare {
        FairShare {
            served: warps_per_app.keys().map(|&a| (a, 0)).collect(),
            active: warps_per_app.clone(),
            throttles: 0,
            max_lag: 0,
        }
    }

    /// Credits one serviced request to `app`.
    pub fn record(&mut self, app: u16) {
        *self.served.entry(app).or_insert(0) += 1;
    }

    /// Marks one of `app`'s warps as finished; an app with no unfinished
    /// warps no longer participates in fairness comparisons.
    pub fn warp_done(&mut self, app: u16) {
        if let Some(n) = self.active.get_mut(&app) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.active.remove(&app);
            }
        }
    }

    /// Whether `app` should be throttled at this point: its weighted
    /// progress leads the furthest-behind active app by more than
    /// `window`. Weighted progress of app `a` is `served[a] / weight[a]`,
    /// compared in integer arithmetic. Counts a throttle when true.
    pub fn should_throttle(&mut self, app: u16, cfg: &QosConfig, window: u64) -> bool {
        if self.active.len() < 2 || !self.active.contains_key(&app) {
            return false;
        }
        let my_served = self.served.get(&app).copied().unwrap_or(0);
        let my_w = cfg.weight_for(AppId(app)) as u64;
        // The furthest-behind active competitor's weighted progress.
        let mut behind: Option<(u64, u64)> = None; // (served, weight)
        for (&other, _) in self.active.iter() {
            if other == app {
                continue;
            }
            let s = self.served.get(&other).copied().unwrap_or(0);
            let w = cfg.weight_for(AppId(other)) as u64;
            let is_behind = match behind {
                None => true,
                // s/w < bs/bw  <=>  s*bw < bs*w
                Some((bs, bw)) => s * bw < bs * w,
            };
            if is_behind {
                behind = Some((s, w));
            }
        }
        let Some((bs, bw)) = behind else { return false };
        // lead = my_served/my_w - bs/bw, in whole requests of my weight:
        // throttle when my_served * bw > (bs + window * bw) * my_w
        // i.e. my weighted progress exceeds theirs by more than `window`
        // weighted requests.
        let lead_lhs = my_served.saturating_mul(bw);
        let lead_rhs = bs.saturating_mul(my_w) + window.saturating_mul(my_w).saturating_mul(bw);
        let lag = lead_lhs.saturating_sub(bs.saturating_mul(my_w)) / (my_w * bw).max(1);
        self.max_lag = self.max_lag.max(lag);
        if lead_lhs > lead_rhs {
            self.throttles += 1;
            true
        } else {
            false
        }
    }

    /// Throttle decisions taken so far.
    pub fn throttles(&self) -> u64 {
        self.throttles
    }

    /// Largest weighted service lead observed between the throttle
    /// candidate and the furthest-behind active app.
    pub fn max_lag(&self) -> u64 {
        self.max_lag
    }

    /// Requests serviced per app.
    pub fn served(&self) -> &BTreeMap<u16, u64> {
        &self.served
    }
}

/// Aggregated overload-control observations for one run. Present in
/// `RunResult` only when a non-default (bounded) [`QosConfig`] ran, so
/// default output stays byte-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QosSummary {
    /// Admissions refused across flash channels, network links and the
    /// SSD-module dispatcher.
    pub rejected: u64,
    /// Backoff retries the runner performed after rejections.
    pub retried: u64,
    /// Requests whose retry budget ran out (they then waited for the
    /// queue's hinted `retry_at` instead of backing off again).
    pub retry_budget_exhausted: u64,
    /// MSHR-full structural hazards resolved by bounded backoff.
    pub mshr_stalls: u64,
    /// Pinned-L2 overflow events degraded gracefully to register writes.
    pub pinned_overflow_stalls: u64,
    /// Log-block merges that overran their blocking deadline.
    pub gc_deadline_misses: u64,
    /// Log-block merges that ran under pacing.
    pub paced_gcs: u64,
    /// Merges whose stall credit ran out, releasing the victim app early.
    pub gc_credit_exhausted: u64,
    /// Warp-issue throttles taken by the fairness gate.
    pub fairness_throttles: u64,
    /// Largest weighted service lead observed between apps.
    pub max_service_lag: u64,
    /// Largest in-flight population admitted to any bounded queue.
    pub max_queue_occupancy: u64,
    /// Exact read-latency percentiles (cycles) across all sectors.
    pub read_p50: u64,
    /// 95th percentile read latency (cycles).
    pub read_p95: u64,
    /// 99th percentile read latency (cycles).
    pub read_p99: u64,
    /// Exact write-latency percentiles (cycles) across all sectors.
    pub write_p50: u64,
    /// 95th percentile write latency (cycles).
    pub write_p95: u64,
    /// 99th percentile write latency (cycles).
    pub write_p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbounded_and_valid() {
        let q = QosConfig::default();
        assert!(q.is_unbounded());
        q.validate().unwrap();
    }

    #[test]
    fn bounded_preset_turns_everything_on() {
        let q = QosConfig::bounded(16);
        assert!(!q.is_unbounded());
        assert_eq!(q.queue_depth, Some(16));
        assert!(q.gc_stall_budget.is_some());
        assert!(q.fair_window > 0);
        q.validate().unwrap();
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let q = QosConfig::unbounded();
        assert_eq!(q.backoff_delay(0), Cycle(64));
        assert_eq!(q.backoff_delay(1), Cycle(128));
        assert_eq!(q.backoff_delay(3), Cycle(512));
        assert_eq!(q.backoff_delay(10), Cycle(4096), "capped");
        assert_eq!(q.backoff_delay(200), Cycle(4096), "shift overflow capped");
    }

    #[test]
    fn validation_rejects_degenerate_backoff() {
        let mut q = QosConfig::unbounded();
        q.backoff_base = Cycle::ZERO;
        assert!(q.validate().is_err());
        let mut q = QosConfig::unbounded();
        q.backoff_cap = Cycle(1);
        assert!(q.validate().is_err());
    }

    #[test]
    fn fair_share_throttles_the_leader_only() {
        let cfg = QosConfig::bounded(8);
        let warps: BTreeMap<u16, u64> = [(0, 4), (1, 4)].into_iter().collect();
        let mut f = FairShare::new(&warps);
        for _ in 0..300 {
            f.record(0);
        }
        f.record(1);
        assert!(f.should_throttle(0, &cfg, 256), "app 0 leads by > window");
        assert!(
            !f.should_throttle(1, &cfg, 256),
            "the laggard never throttles"
        );
        assert_eq!(f.throttles(), 1);
        assert!(f.max_lag() >= 256);
    }

    #[test]
    fn fair_share_ignores_finished_apps() {
        let cfg = QosConfig::bounded(8);
        let warps: BTreeMap<u16, u64> = [(0, 1), (1, 1)].into_iter().collect();
        let mut f = FairShare::new(&warps);
        for _ in 0..1000 {
            f.record(0);
        }
        // App 1 finished: no active competitor, no throttling.
        f.warp_done(1);
        assert!(!f.should_throttle(0, &cfg, 256));
    }

    #[test]
    fn fair_share_respects_weights() {
        let mut cfg = QosConfig::bounded(8);
        cfg.fair_weights[0] = 4; // app 0 is entitled to 4x service
        let warps: BTreeMap<u16, u64> = [(0, 4), (1, 4)].into_iter().collect();
        let mut f = FairShare::new(&warps);
        for _ in 0..900 {
            f.record(0);
        }
        for _ in 0..100 {
            f.record(1);
        }
        // Weighted progress: 900/4 = 225 vs 100/1 = 100; lead 125 < 256.
        assert!(!f.should_throttle(0, &cfg, 256));
        for _ in 0..700 {
            f.record(0);
        }
        // 1600/4 = 400 vs 100: lead 300 > 256.
        assert!(f.should_throttle(0, &cfg, 256));
    }
}
