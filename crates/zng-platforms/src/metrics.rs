//! Per-run metrics: everything the paper's figures plot.

use std::collections::BTreeMap;

use zng_flash::RETRY_DEPTH_BUCKETS;
use zng_json::Value;
use zng_types::Cycle;

use crate::config::PlatformKind;
use crate::qos::QosSummary;

/// What a mid-run power cut and recovery looked like (`--crash-at`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashRecoverySummary {
    /// Completed requests when the power cut fired.
    pub at_requests: u64,
    /// Simulation time of the cut.
    pub at_cycle: Cycle,
    /// Programmed pages whose OOB metadata was scanned.
    pub pages_scanned: u64,
    /// Torn (mid-program) pages discarded.
    pub torn_discarded: u64,
    /// Superseded page versions dropped during winner resolution.
    pub stale_dropped: u64,
    /// Dead blocks erased back into the free pool.
    pub blocks_erased: u64,
    /// Modelled cost of the recovery scan.
    pub scan_cycles: Cycle,
    /// Corrupt page copies quarantined by the scan (integrity mode).
    pub corrupt_quarantined: u64,
    /// The recovery took the checkpoint fast path (loaded the newest
    /// verified checkpoint, replayed the journal tail and rescanned only
    /// the blocks touched since).
    pub fast_path: bool,
    /// Checkpointing was on but the fast path was unusable (torn or
    /// aborted checkpoint, journal overflow or gap) and the recovery
    /// fell back to the full out-of-band scan.
    pub fallback: bool,
    /// Journal records replayed on the fast path.
    pub journal_replayed: u64,
    /// Blocks the fast path rescanned from the media (the rest came
    /// from the checkpoint image).
    pub blocks_rescanned: u64,
    /// Scan cycles the fast path saved versus the estimated full scan.
    pub cycles_saved: Cycle,
}

/// What the checkpoint writer did over the run (`--checkpoint`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointSummary {
    /// Checkpoint steps the runner scheduled.
    pub checkpoint_ticks: u64,
    /// Checkpoints committed (payload chain + commit page verified).
    pub checkpoints: u64,
    /// Checkpoint payload/commit pages programmed.
    pub checkpoint_pages: u64,
    /// Delta-journal records appended between checkpoints.
    pub journal_records: u64,
    /// Journal pages programmed into the checkpoint namespace.
    pub journal_pages: u64,
    /// Checkpoint writes that outlived their pacing deadline.
    pub overruns: u64,
    /// Epochs whose journal outgrew the cap (fast path disabled until
    /// the next checkpoint).
    pub journal_overflows: u64,
    /// Checkpoint writes aborted by media failures or pool exhaustion
    /// (the previous epoch stayed in force).
    pub aborted: u64,
}

/// What the end-to-end integrity subsystem did (`--integrity`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntegritySummary {
    /// Pages the media silently corrupted below the ECC model.
    pub silent_corruptions: u64,
    /// Checksum mismatches caught on the read path.
    pub detected: u64,
    /// Charged re-reads issued after a mismatch.
    pub rereads: u64,
    /// Corrupt pages rebuilt from RAIN parity.
    pub reconstructed: u64,
    /// Corrupt copies quarantined (scrub + recovery, never resurrected).
    pub quarantined: u64,
    /// L2 lines poisoned after an unrecoverable integrity violation.
    pub poisoned_lines: u64,
}

/// What the redundancy & self-healing subsystem did (`--redundancy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RedundancySummary {
    /// Pages rebuilt from surviving stripe members on the read path.
    pub reconstructions: u64,
    /// Member senses issued by those reconstructions.
    pub reconstruction_reads: u64,
    /// Parity pages flushed from helper-thread SRAM to flash.
    pub parity_pages: u64,
    /// Pages the patrol scrubber sensed.
    pub scrub_scanned: u64,
    /// Scrubbed pages proactively rewritten to fresh cells.
    pub scrub_rewrites: u64,
    /// Scrub steps whose media time overran the pacing budget.
    pub scrub_overruns: u64,
    /// Patrol-scrub steps the runner scheduled.
    pub scrub_ticks: u64,
    /// Pages re-created onto spares by the post-failure rebuild.
    pub rebuild_pages: u64,
    /// Reconstructions forced by a dead home die (degraded mode).
    pub degraded_reads: u64,
    /// Blocks fenced out of service on dead dies.
    pub fenced_blocks: u64,
    /// Reads that targeted a dead die.
    pub dead_die_reads: u64,
    /// Transfers that detoured around a severed network link.
    pub rerouted_transfers: u64,
    /// Reads by retry-ladder depth (`[0]` = clean first sense; the last
    /// bucket also absorbs deeper retries).
    pub retry_depth_histogram: [u64; RETRY_DEPTH_BUCKETS],
}

/// What the device-lifetime endurance subsystem did (`--endurance`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnduranceSummary {
    /// Refresh-scheduler steps the runner scheduled.
    pub refresh_ticks: u64,
    /// Blocks rewritten to fresh cells by the refresh scheduler.
    pub refreshes: u64,
    /// Refreshes triggered by the read-disturb budget.
    pub disturb_refreshes: u64,
    /// Refreshes triggered by the retention-age budget.
    pub retention_refreshes: u64,
    /// Pages moved by those refreshes.
    pub refreshed_pages: u64,
    /// Static wear-levelling migrations (cold block → worn spare).
    pub level_migrations: u64,
    /// Pages moved by the static leveler.
    pub leveled_pages: u64,
    /// Refresh/levelling steps whose media time overran the pacing
    /// budget.
    pub refresh_overruns: u64,
    /// End-of-life capacity shrink steps taken instead of the hard
    /// worn-out cliff.
    pub capacity_steps: u64,
    /// Writes refused after capacity degraded (the device is read-only
    /// for new data; the workload keeps running).
    pub writes_refused: u64,
    /// Array senses charged against block disturb counters.
    pub disturb_reads: u64,
    /// Read errors attributable to accumulated disturb exposure.
    pub disturb_triggered_errors: u64,
    /// The worst-worn block's erase fraction (of the P/E limit).
    pub wear_max: f64,
    /// Mean erase fraction across every block.
    pub wear_mean: f64,
    /// The least-worn block's erase fraction.
    pub wear_min: f64,
    /// Wear spread (max/mean; 1.0 = perfectly even).
    pub wear_spread: f64,
}

/// One die's lifetime telemetry rollup (the health monitor's raw feed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DieBreakdown {
    /// Channel index of the die.
    pub channel: u16,
    /// Die index within the channel.
    pub die: u16,
    /// Array senses served by this die.
    pub reads: u64,
    /// Read-retry ladder steps burned by this die's senses.
    pub retry_steps: u64,
    /// Senses that stayed uncorrectable through the whole ladder.
    pub uncorrectable_reads: u64,
    /// Page programs attempted on this die.
    pub programs: u64,
    /// Programs that failed verification.
    pub program_failures: u64,
    /// Block erases completed on this die (the wear rollup).
    pub erases: u64,
    /// Erases that failed verification.
    pub erase_failures: u64,
}

/// What the predictive health monitor did (`--health`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthSummary {
    /// Monitor steps the runner scheduled.
    pub health_ticks: u64,
    /// Dies flagged as suspects (quarantined) over the run.
    pub suspects_flagged: u64,
    /// Live pages pre-emptively migrated off suspect dies.
    pub pages_evacuated: u64,
    /// Suspect dies fully drained of live data before dying.
    pub evacuations_completed: u64,
    /// Suspects whose telemetry recovered and were released.
    pub rehabilitations: u64,
    /// Evacuation steps whose media time overran the pacing budget.
    pub evacuation_overruns: u64,
    /// Dies that died under monitoring and were fenced by the monitor.
    pub dead_dies_fenced: u64,
    /// Dies still quarantined at the end of the run, sorted.
    pub quarantined: Vec<(u16, u16)>,
    /// Per-die telemetry rollups, sorted by (channel, die).
    pub per_die: Vec<DieBreakdown>,
}

/// Simulator-throughput telemetry (`--perf`): how fast the *simulator
/// itself* ran, not the simulated machine.
///
/// The wall-clock numbers are host-dependent and nondeterministic, so
/// they are only emitted when the flag is set — default output stays
/// byte-identical to builds without this machinery. The event counters
/// are deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PerfSummary {
    /// Host wall-clock spent inside the event loop, in seconds.
    pub wall_seconds: f64,
    /// Events popped from the queue (every scheduled wake-up).
    pub events: u64,
    /// Events per host second (`events / wall_seconds`) — the headline
    /// sim-throughput number.
    pub events_per_sec: f64,
    /// Largest pending-event population the queue ever held.
    pub peak_queue_depth: u64,
    /// Events that issued a compute segment.
    pub compute_events: u64,
    /// Events that issued a memory op (coalesced request batch).
    pub mem_events: u64,
    /// Events deferred because their app was blocked (GC / maintenance)
    /// or throttled by the fairness gate.
    pub blocked_events: u64,
    /// Maintenance steps taken at event boundaries (crash recovery, die
    /// fencing, scrub, refresh, checkpoint, health ticks).
    pub maintenance_events: u64,
    /// Events for warps that had already retired (no-op wake-ups).
    pub skipped_events: u64,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which platform ran.
    pub platform: PlatformKind,
    /// The workload or mix name.
    pub workload: String,
    /// Total simulated cycles until the last warp retired.
    pub cycles: Cycle,
    /// Warp instructions retired across all SMs.
    pub instructions: u64,
    /// Coalesced 128 B memory requests issued.
    pub requests: u64,
    /// Instructions per cycle (Fig. 10's metric).
    pub ipc: f64,
    /// Flash-array bandwidth in GB/s (Fig. 11); 0 for flash-less
    /// platforms.
    pub flash_array_gbps: f64,
    /// Mean flash-array reads per distinct page (Fig. 12).
    pub flash_reads_per_page: f64,
    /// Mean flash-array programs per distinct page (Fig. 13).
    pub flash_programs_per_page: f64,
    /// L1D hit rate (mean over SMs).
    pub l1_hit_rate: f64,
    /// Shared L2 hit rate.
    pub l2_hit_rate: f64,
    /// TLB hit rate.
    pub tlb_hit_rate: f64,
    /// Prefetch-predictor accuracy (Fig. 15b); 0 when prefetch is off.
    pub predictor_accuracy: f64,
    /// Garbage collections performed.
    pub gcs: u64,
    /// Cross-plane register migrations (Fig. 14 accounting).
    pub register_migrations: u64,
    /// Writes redirected into pinned L2 space.
    pub redirected_writes: u64,
    /// Mean read-request completion latency in cycles (issue → data).
    pub avg_read_latency: f64,
    /// Mean write-request completion latency in cycles.
    pub avg_write_latency: f64,
    /// Per-app mean read latency in cycles (QoS isolation accounting).
    pub per_app_read_latency: BTreeMap<u16, f64>,
    /// Per-app mean write latency in cycles.
    pub per_app_write_latency: BTreeMap<u16, f64>,
    /// Per-app instructions (Fig. 17a per-app performance).
    pub per_app_instructions: BTreeMap<u16, u64>,
    /// Per-app completion time (when the app's last warp retired).
    pub per_app_cycles: BTreeMap<u16, Cycle>,
    /// Per-app memory requests.
    pub per_app_requests: BTreeMap<u16, u64>,
    /// Per-app request time series (Fig. 17b), bucketed by
    /// `series_interval`.
    pub per_app_series: BTreeMap<u16, Vec<u64>>,
    /// Time-series bucket width.
    pub series_interval: Cycle,
    /// (start, end) of each garbage collection.
    pub gc_events: Vec<(Cycle, Cycle)>,
    /// Read-retry steps taken by the flash planes (fault injection).
    pub read_retries: u64,
    /// Reads that exhausted the retry ladder (ECC-uncorrectable).
    pub uncorrectable_reads: u64,
    /// Page programs that failed verification.
    pub program_failures: u64,
    /// Block erases that failed verification.
    pub erase_failures: u64,
    /// Blocks the FTL permanently retired.
    pub blocks_retired: u64,
    /// Writes the FTL re-drove after program failures.
    pub write_redrives: u64,
    /// Present only when `--crash-at` fired: the power cut and the
    /// recovery scan that followed. `None` runs emit byte-identical
    /// output to builds without the crash machinery.
    pub crash_recovery: Option<CrashRecoverySummary>,
    /// Present only when a non-default (bounded) QoS policy ran:
    /// rejection/retry/pacing/fairness counters and exact latency
    /// percentiles. `None` runs emit byte-identical output to builds
    /// without the overload-control machinery.
    pub qos: Option<QosSummary>,
    /// Present only when `--redundancy` ran: RAIN, scrub, rebuild and
    /// degraded-mode counters. `None` runs emit byte-identical output to
    /// builds without the redundancy machinery.
    pub redundancy: Option<RedundancySummary>,
    /// Present only when `--integrity` ran: silent-corruption,
    /// verification and poison-containment counters. `None` runs emit
    /// byte-identical output to builds without the integrity machinery.
    pub integrity: Option<IntegritySummary>,
    /// Present only when `--endurance` ran: refresh, static-levelling,
    /// capacity-step and wear-histogram counters. `None` runs emit
    /// byte-identical output to builds without the endurance machinery.
    pub endurance: Option<EnduranceSummary>,
    /// Present only when `--checkpoint` ran: checkpoint-writer and
    /// delta-journal counters. `None` runs emit byte-identical output to
    /// builds without the checkpoint machinery.
    pub checkpoint: Option<CheckpointSummary>,
    /// Present only when `--health` ran: suspect-die quarantine,
    /// evacuation and rehabilitation counters plus per-die telemetry
    /// rollups. `None` runs emit byte-identical output to builds without
    /// the health machinery.
    pub health: Option<HealthSummary>,
    /// Present only when `--perf` ran: simulator-throughput telemetry
    /// (wall time, events/sec, queue depth). `None` runs emit
    /// byte-identical output — the wall-clock numbers are
    /// nondeterministic by nature and must never leak into golden
    /// output.
    pub perf: Option<PerfSummary>,
}

impl RunResult {
    /// Per-app IPC over the app's own lifetime (launch → its last warp's
    /// retirement), so one app's long tail does not dilute another's
    /// throughput.
    pub fn app_ipc(&self, app: u16) -> f64 {
        let cycles = self
            .per_app_cycles
            .get(&app)
            .copied()
            .unwrap_or(self.cycles)
            .max(Cycle(1));
        self.per_app_instructions
            .get(&app)
            .map(|&i| i as f64 / cycles.raw() as f64)
            .unwrap_or(0.0)
    }

    /// Simulated wall-clock in microseconds at 1.2 GHz.
    pub fn simulated_us(&self) -> f64 {
        self.cycles.raw() as f64 / 1_200.0
    }

    /// The result as a JSON document (what `zng-cli --json` prints).
    ///
    /// Newtype wrappers flatten to their raw numbers, the platform to its
    /// variant name, and per-app maps to objects keyed by the decimal
    /// app id.
    pub fn to_json_value(&self) -> Value {
        fn app_map<T: Clone + Into<Value>>(m: &BTreeMap<u16, T>) -> Value {
            Value::object(
                m.iter()
                    .map(|(k, v)| (k.to_string(), v.clone().into()))
                    .collect(),
            )
        }
        let mut fields = vec![
            ("platform", Value::from(format!("{:?}", self.platform))),
            ("workload", Value::from(self.workload.as_str())),
            ("cycles", Value::from(self.cycles.raw())),
            ("instructions", Value::from(self.instructions)),
            ("requests", Value::from(self.requests)),
            ("ipc", Value::from(self.ipc)),
            ("flash_array_gbps", Value::from(self.flash_array_gbps)),
            (
                "flash_reads_per_page",
                Value::from(self.flash_reads_per_page),
            ),
            (
                "flash_programs_per_page",
                Value::from(self.flash_programs_per_page),
            ),
            ("l1_hit_rate", Value::from(self.l1_hit_rate)),
            ("l2_hit_rate", Value::from(self.l2_hit_rate)),
            ("tlb_hit_rate", Value::from(self.tlb_hit_rate)),
            ("predictor_accuracy", Value::from(self.predictor_accuracy)),
            ("gcs", Value::from(self.gcs)),
            ("register_migrations", Value::from(self.register_migrations)),
            ("redirected_writes", Value::from(self.redirected_writes)),
            ("avg_read_latency", Value::from(self.avg_read_latency)),
            ("avg_write_latency", Value::from(self.avg_write_latency)),
            ("per_app_instructions", app_map(&self.per_app_instructions)),
            (
                "per_app_cycles",
                Value::object(
                    self.per_app_cycles
                        .iter()
                        .map(|(k, v)| (k.to_string(), Value::from(v.raw())))
                        .collect(),
                ),
            ),
            ("per_app_requests", app_map(&self.per_app_requests)),
            (
                "per_app_series",
                Value::object(
                    self.per_app_series
                        .iter()
                        .map(|(k, v)| (k.to_string(), Value::from(v.clone())))
                        .collect(),
                ),
            ),
            ("series_interval", Value::from(self.series_interval.raw())),
            ("read_retries", Value::from(self.read_retries)),
            ("uncorrectable_reads", Value::from(self.uncorrectable_reads)),
            ("program_failures", Value::from(self.program_failures)),
            ("erase_failures", Value::from(self.erase_failures)),
            ("blocks_retired", Value::from(self.blocks_retired)),
            ("write_redrives", Value::from(self.write_redrives)),
            (
                "gc_events",
                Value::Array(
                    self.gc_events
                        .iter()
                        .map(|&(s, e)| {
                            Value::Array(vec![Value::from(s.raw()), Value::from(e.raw())])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(q) = &self.qos {
            fields.push(("qos_rejected", Value::from(q.rejected)));
            fields.push(("qos_retried", Value::from(q.retried)));
            fields.push((
                "qos_retry_budget_exhausted",
                Value::from(q.retry_budget_exhausted),
            ));
            fields.push(("qos_mshr_stalls", Value::from(q.mshr_stalls)));
            fields.push((
                "qos_pinned_overflow_stalls",
                Value::from(q.pinned_overflow_stalls),
            ));
            fields.push(("qos_gc_deadline_misses", Value::from(q.gc_deadline_misses)));
            fields.push(("qos_paced_gcs", Value::from(q.paced_gcs)));
            fields.push((
                "qos_gc_credit_exhausted",
                Value::from(q.gc_credit_exhausted),
            ));
            fields.push(("qos_fairness_throttles", Value::from(q.fairness_throttles)));
            fields.push(("qos_max_service_lag", Value::from(q.max_service_lag)));
            fields.push((
                "qos_max_queue_occupancy",
                Value::from(q.max_queue_occupancy),
            ));
            fields.push(("qos_read_p50", Value::from(q.read_p50)));
            fields.push(("qos_read_p95", Value::from(q.read_p95)));
            fields.push(("qos_read_p99", Value::from(q.read_p99)));
            fields.push(("qos_write_p50", Value::from(q.write_p50)));
            fields.push(("qos_write_p95", Value::from(q.write_p95)));
            fields.push(("qos_write_p99", Value::from(q.write_p99)));
            // Per-app latency breakdowns ride with the QoS summary so the
            // default output stays byte-stable across versions.
            fields.push(("per_app_read_latency", app_map(&self.per_app_read_latency)));
            fields.push((
                "per_app_write_latency",
                app_map(&self.per_app_write_latency),
            ));
        }
        if let Some(cr) = &self.crash_recovery {
            fields.push(("crash_at_requests", Value::from(cr.at_requests)));
            fields.push(("crash_at_cycle", Value::from(cr.at_cycle.raw())));
            fields.push(("crash_pages_scanned", Value::from(cr.pages_scanned)));
            fields.push(("crash_torn_discarded", Value::from(cr.torn_discarded)));
            fields.push(("crash_stale_dropped", Value::from(cr.stale_dropped)));
            fields.push(("crash_blocks_erased", Value::from(cr.blocks_erased)));
            fields.push(("crash_scan_cycles", Value::from(cr.scan_cycles.raw())));
            // Gated on the integrity summary so integrity-off crash runs
            // stay byte-identical to builds without this machinery.
            if self.integrity.is_some() {
                fields.push((
                    "crash_corrupt_quarantined",
                    Value::from(cr.corrupt_quarantined),
                ));
            }
            // Fast-path accounting rides with the checkpoint summary so
            // checkpoint-off crash runs stay byte-identical too.
            if self.checkpoint.is_some() {
                fields.push(("crash_fast_path", Value::from(cr.fast_path)));
                fields.push(("crash_fallback", Value::from(cr.fallback)));
                fields.push(("crash_journal_replayed", Value::from(cr.journal_replayed)));
                fields.push(("crash_blocks_rescanned", Value::from(cr.blocks_rescanned)));
                fields.push(("crash_cycles_saved", Value::from(cr.cycles_saved.raw())));
            }
        }
        if let Some(rd) = &self.redundancy {
            fields.push(("rain_reconstructions", Value::from(rd.reconstructions)));
            fields.push((
                "rain_reconstruction_reads",
                Value::from(rd.reconstruction_reads),
            ));
            fields.push(("rain_parity_pages", Value::from(rd.parity_pages)));
            fields.push(("scrub_ticks", Value::from(rd.scrub_ticks)));
            fields.push(("scrub_scanned", Value::from(rd.scrub_scanned)));
            fields.push(("scrub_rewrites", Value::from(rd.scrub_rewrites)));
            fields.push(("scrub_overruns", Value::from(rd.scrub_overruns)));
            fields.push(("rebuild_pages", Value::from(rd.rebuild_pages)));
            fields.push(("degraded_reads", Value::from(rd.degraded_reads)));
            fields.push(("fenced_blocks", Value::from(rd.fenced_blocks)));
            fields.push(("dead_die_reads", Value::from(rd.dead_die_reads)));
            fields.push(("rerouted_transfers", Value::from(rd.rerouted_transfers)));
            fields.push((
                "retry_depth_histogram",
                Value::from(rd.retry_depth_histogram.to_vec()),
            ));
        }
        if let Some(i) = &self.integrity {
            fields.push((
                "integrity_silent_corruptions",
                Value::from(i.silent_corruptions),
            ));
            fields.push(("integrity_detected", Value::from(i.detected)));
            fields.push(("integrity_rereads", Value::from(i.rereads)));
            fields.push(("integrity_reconstructed", Value::from(i.reconstructed)));
            fields.push(("integrity_quarantined", Value::from(i.quarantined)));
            fields.push(("integrity_poisoned_lines", Value::from(i.poisoned_lines)));
        }
        if let Some(e) = &self.endurance {
            fields.push(("endurance_refresh_ticks", Value::from(e.refresh_ticks)));
            fields.push(("endurance_refreshes", Value::from(e.refreshes)));
            fields.push((
                "endurance_disturb_refreshes",
                Value::from(e.disturb_refreshes),
            ));
            fields.push((
                "endurance_retention_refreshes",
                Value::from(e.retention_refreshes),
            ));
            fields.push(("endurance_refreshed_pages", Value::from(e.refreshed_pages)));
            fields.push((
                "endurance_level_migrations",
                Value::from(e.level_migrations),
            ));
            fields.push(("endurance_leveled_pages", Value::from(e.leveled_pages)));
            fields.push((
                "endurance_refresh_overruns",
                Value::from(e.refresh_overruns),
            ));
            fields.push(("endurance_capacity_steps", Value::from(e.capacity_steps)));
            fields.push(("endurance_writes_refused", Value::from(e.writes_refused)));
            fields.push(("endurance_disturb_reads", Value::from(e.disturb_reads)));
            fields.push((
                "endurance_disturb_errors",
                Value::from(e.disturb_triggered_errors),
            ));
            fields.push(("wear_max_fraction", Value::from(e.wear_max)));
            fields.push(("wear_mean_fraction", Value::from(e.wear_mean)));
            fields.push(("wear_min_fraction", Value::from(e.wear_min)));
            fields.push(("wear_spread", Value::from(e.wear_spread)));
        }
        if let Some(c) = &self.checkpoint {
            fields.push(("checkpoint_ticks", Value::from(c.checkpoint_ticks)));
            fields.push(("checkpoints", Value::from(c.checkpoints)));
            fields.push(("checkpoint_pages", Value::from(c.checkpoint_pages)));
            fields.push(("journal_records", Value::from(c.journal_records)));
            fields.push(("journal_pages", Value::from(c.journal_pages)));
            fields.push(("checkpoint_overruns", Value::from(c.overruns)));
            fields.push(("journal_overflows", Value::from(c.journal_overflows)));
            fields.push(("checkpoints_aborted", Value::from(c.aborted)));
        }
        if let Some(h) = &self.health {
            fields.push(("health_ticks", Value::from(h.health_ticks)));
            fields.push(("health_suspects_flagged", Value::from(h.suspects_flagged)));
            fields.push(("health_pages_evacuated", Value::from(h.pages_evacuated)));
            fields.push((
                "health_evacuations_completed",
                Value::from(h.evacuations_completed),
            ));
            fields.push(("health_rehabilitations", Value::from(h.rehabilitations)));
            fields.push((
                "health_evacuation_overruns",
                Value::from(h.evacuation_overruns),
            ));
            fields.push(("health_dead_dies_fenced", Value::from(h.dead_dies_fenced)));
            fields.push((
                "health_quarantined",
                Value::Array(
                    h.quarantined
                        .iter()
                        .map(|&(c, d)| Value::from(format!("{c}:{d}")))
                        .collect(),
                ),
            ));
            fields.push((
                "per_die_health",
                Value::object(
                    h.per_die
                        .iter()
                        .map(|d| {
                            (
                                format!("{}:{}", d.channel, d.die),
                                Value::object(vec![
                                    ("reads".to_string(), Value::from(d.reads)),
                                    ("retry_steps".to_string(), Value::from(d.retry_steps)),
                                    (
                                        "uncorrectable_reads".to_string(),
                                        Value::from(d.uncorrectable_reads),
                                    ),
                                    ("programs".to_string(), Value::from(d.programs)),
                                    (
                                        "program_failures".to_string(),
                                        Value::from(d.program_failures),
                                    ),
                                    ("erases".to_string(), Value::from(d.erases)),
                                    ("erase_failures".to_string(), Value::from(d.erase_failures)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(p) = &self.perf {
            fields.push(("perf_wall_seconds", Value::from(p.wall_seconds)));
            fields.push(("perf_events", Value::from(p.events)));
            fields.push(("perf_events_per_sec", Value::from(p.events_per_sec)));
            fields.push(("perf_peak_queue_depth", Value::from(p.peak_queue_depth)));
            fields.push(("perf_compute_events", Value::from(p.compute_events)));
            fields.push(("perf_mem_events", Value::from(p.mem_events)));
            fields.push(("perf_blocked_events", Value::from(p.blocked_events)));
            fields.push(("perf_maintenance_events", Value::from(p.maintenance_events)));
            fields.push(("perf_skipped_events", Value::from(p.skipped_events)));
        }
        Value::object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        RunResult {
            platform: PlatformKind::Zng,
            workload: "betw-back".into(),
            cycles: Cycle(1_200_000),
            instructions: 600_000,
            requests: 10_000,
            ipc: 0.5,
            flash_array_gbps: 10.0,
            flash_reads_per_page: 3.0,
            flash_programs_per_page: 1.5,
            l1_hit_rate: 0.4,
            l2_hit_rate: 0.8,
            tlb_hit_rate: 0.99,
            predictor_accuracy: 0.93,
            gcs: 1,
            register_migrations: 5,
            redirected_writes: 7,
            avg_read_latency: 500.0,
            avg_write_latency: 900.0,
            per_app_read_latency: [(0, 450.0), (1, 580.0)].into(),
            per_app_write_latency: [(0, 850.0), (1, 990.0)].into(),
            per_app_instructions: [(0, 400_000), (1, 200_000)].into(),
            per_app_cycles: [(0, Cycle(1_200_000)), (1, Cycle(1_200_000))].into(),
            per_app_requests: [(0, 6_000), (1, 4_000)].into(),
            per_app_series: BTreeMap::new(),
            series_interval: Cycle(12_000),
            gc_events: vec![(Cycle(100), Cycle(200))],
            read_retries: 3,
            uncorrectable_reads: 0,
            program_failures: 1,
            erase_failures: 0,
            blocks_retired: 1,
            write_redrives: 2,
            crash_recovery: None,
            qos: None,
            redundancy: None,
            integrity: None,
            endurance: None,
            checkpoint: None,
            health: None,
            perf: None,
        }
    }

    #[test]
    fn app_ipc_partitions_total() {
        let r = result();
        let sum = r.app_ipc(0) + r.app_ipc(1);
        assert!((sum - r.ipc).abs() < 1e-12);
        assert_eq!(r.app_ipc(9), 0.0);
    }

    #[test]
    fn simulated_time_conversion() {
        let r = result();
        assert!((r.simulated_us() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn crash_keys_only_when_a_crash_happened() {
        let mut r = result();
        let clean = r.to_json_value().to_string();
        assert!(!clean.contains("crash_"), "no crash keys in a clean run");
        r.crash_recovery = Some(CrashRecoverySummary {
            at_requests: 100,
            at_cycle: Cycle(500_000),
            pages_scanned: 64,
            torn_discarded: 2,
            stale_dropped: 5,
            blocks_erased: 3,
            scan_cycles: Cycle(28_800),
            corrupt_quarantined: 1,
            fast_path: true,
            fallback: false,
            journal_replayed: 12,
            blocks_rescanned: 4,
            cycles_saved: Cycle(90_000),
        });
        let crashed = r.to_json_value().to_string();
        assert!(crashed.contains("\"crash_at_requests\":100"));
        assert!(crashed.contains("\"crash_torn_discarded\":2"));
        assert!(crashed.contains("\"crash_scan_cycles\":28800"));
        assert!(
            !crashed.contains("crash_corrupt_quarantined"),
            "quarantine key rides with the integrity summary, not the crash"
        );
        assert!(
            !crashed.contains("crash_fast_path"),
            "fast-path keys ride with the checkpoint summary, not the crash"
        );
        r.integrity = Some(IntegritySummary::default());
        let with_integrity = r.to_json_value().to_string();
        assert!(with_integrity.contains("\"crash_corrupt_quarantined\":1"));
        r.checkpoint = Some(CheckpointSummary::default());
        let with_ckpt = r.to_json_value().to_string();
        assert!(with_ckpt.contains("\"crash_fast_path\":true"));
        assert!(with_ckpt.contains("\"crash_fallback\":false"));
        assert!(with_ckpt.contains("\"crash_journal_replayed\":12"));
        assert!(with_ckpt.contains("\"crash_cycles_saved\":90000"));
    }

    #[test]
    fn checkpoint_keys_only_when_the_subsystem_ran() {
        let mut r = result();
        let clean = r.to_json_value().to_string();
        assert!(
            !clean.contains("checkpoint") && !clean.contains("journal"),
            "no checkpoint keys in a default run"
        );
        r.checkpoint = Some(CheckpointSummary {
            checkpoint_ticks: 8,
            checkpoints: 7,
            checkpoint_pages: 21,
            journal_records: 300,
            journal_pages: 4,
            overruns: 1,
            journal_overflows: 0,
            aborted: 0,
        });
        let on = r.to_json_value().to_string();
        assert!(on.contains("\"checkpoint_ticks\":8"));
        assert!(on.contains("\"checkpoints\":7"));
        assert!(on.contains("\"checkpoint_pages\":21"));
        assert!(on.contains("\"journal_records\":300"));
        assert!(on.contains("\"checkpoint_overruns\":1"));
        assert!(on.contains("\"checkpoints_aborted\":0"));
    }

    #[test]
    fn integrity_keys_only_when_verification_ran() {
        let mut r = result();
        let clean = r.to_json_value().to_string();
        assert!(
            !clean.contains("integrity_"),
            "no integrity keys in a default run"
        );
        r.integrity = Some(IntegritySummary {
            silent_corruptions: 3,
            detected: 3,
            rereads: 3,
            reconstructed: 2,
            quarantined: 2,
            poisoned_lines: 1,
        });
        let verified = r.to_json_value().to_string();
        assert!(verified.contains("\"integrity_silent_corruptions\":3"));
        assert!(verified.contains("\"integrity_detected\":3"));
        assert!(verified.contains("\"integrity_reconstructed\":2"));
        assert!(verified.contains("\"integrity_poisoned_lines\":1"));
    }

    #[test]
    fn qos_keys_only_when_a_bounded_policy_ran() {
        let mut r = result();
        let clean = r.to_json_value().to_string();
        assert!(!clean.contains("qos_"), "no QoS keys in a default run");
        assert!(!clean.contains("per_app_read_latency"));
        r.qos = Some(QosSummary {
            rejected: 12,
            retried: 9,
            read_p99: 7_777,
            ..QosSummary::default()
        });
        let bounded = r.to_json_value().to_string();
        assert!(bounded.contains("\"qos_rejected\":12"));
        assert!(bounded.contains("\"qos_retried\":9"));
        assert!(bounded.contains("\"qos_read_p99\":7777"));
        assert!(bounded.contains("\"per_app_read_latency\""));
        assert!(bounded.contains("\"per_app_write_latency\""));
    }

    #[test]
    fn endurance_keys_only_when_the_subsystem_ran() {
        let mut r = result();
        let clean = r.to_json_value().to_string();
        assert!(
            !clean.contains("endurance_") && !clean.contains("wear_"),
            "no endurance keys in a default run"
        );
        r.endurance = Some(EnduranceSummary {
            refresh_ticks: 10,
            refreshes: 4,
            disturb_refreshes: 3,
            retention_refreshes: 1,
            refreshed_pages: 64,
            level_migrations: 2,
            leveled_pages: 32,
            capacity_steps: 1,
            writes_refused: 7,
            wear_spread: 1.5,
            ..EnduranceSummary::default()
        });
        let on = r.to_json_value().to_string();
        assert!(on.contains("\"endurance_refresh_ticks\":10"));
        assert!(on.contains("\"endurance_refreshes\":4"));
        assert!(on.contains("\"endurance_disturb_refreshes\":3"));
        assert!(on.contains("\"endurance_level_migrations\":2"));
        assert!(on.contains("\"endurance_capacity_steps\":1"));
        assert!(on.contains("\"endurance_writes_refused\":7"));
        assert!(on.contains("\"wear_spread\":1.5"));
    }

    #[test]
    fn health_keys_only_when_the_monitor_ran() {
        let mut r = result();
        let clean = r.to_json_value().to_string();
        assert!(
            !clean.contains("health") && !clean.contains("per_die"),
            "no health keys in a default run"
        );
        r.health = Some(HealthSummary {
            health_ticks: 12,
            suspects_flagged: 1,
            pages_evacuated: 40,
            evacuations_completed: 1,
            rehabilitations: 0,
            evacuation_overruns: 2,
            dead_dies_fenced: 1,
            quarantined: vec![(0, 1)],
            per_die: vec![DieBreakdown {
                channel: 0,
                die: 1,
                reads: 900,
                retry_steps: 33,
                programs: 120,
                erases: 4,
                ..DieBreakdown::default()
            }],
        });
        let on = r.to_json_value().to_string();
        assert!(on.contains("\"health_ticks\":12"));
        assert!(on.contains("\"health_suspects_flagged\":1"));
        assert!(on.contains("\"health_pages_evacuated\":40"));
        assert!(on.contains("\"health_evacuations_completed\":1"));
        assert!(on.contains("\"health_quarantined\":[\"0:1\"]"));
        assert!(on.contains("\"per_die_health\""));
        assert!(on.contains("\"retry_steps\":33"));
        assert!(on.contains("\"erases\":4"));
    }

    #[test]
    fn perf_keys_only_when_telemetry_requested() {
        let mut r = result();
        let clean = r.to_json_value().to_string();
        assert!(!clean.contains("perf_"), "no perf keys in a default run");
        r.perf = Some(PerfSummary {
            wall_seconds: 0.5,
            events: 1_000,
            events_per_sec: 2_000.0,
            peak_queue_depth: 64,
            compute_events: 600,
            mem_events: 300,
            blocked_events: 50,
            maintenance_events: 10,
            skipped_events: 40,
        });
        let on = r.to_json_value().to_string();
        assert!(on.contains("\"perf_events\":1000"));
        assert!(on.contains("\"perf_events_per_sec\":2000"));
        assert!(on.contains("\"perf_peak_queue_depth\":64"));
        assert!(on.contains("\"perf_compute_events\":600"));
        assert!(on.contains("\"perf_skipped_events\":40"));
    }

    #[test]
    fn redundancy_keys_only_when_rain_ran() {
        let mut r = result();
        let clean = r.to_json_value().to_string();
        assert!(!clean.contains("rain_"), "no RAIN keys in a default run");
        assert!(!clean.contains("scrub_"));
        assert!(!clean.contains("retry_depth_histogram"));
        let mut hist = [0u64; RETRY_DEPTH_BUCKETS];
        hist[0] = 40;
        hist[2] = 3;
        r.redundancy = Some(RedundancySummary {
            reconstructions: 4,
            scrub_rewrites: 2,
            degraded_reads: 4,
            retry_depth_histogram: hist,
            ..RedundancySummary::default()
        });
        let rain = r.to_json_value().to_string();
        assert!(rain.contains("\"rain_reconstructions\":4"));
        assert!(rain.contains("\"scrub_rewrites\":2"));
        assert!(rain.contains("\"degraded_reads\":4"));
        assert!(rain.contains("\"retry_depth_histogram\":[40,0,3,0,0]"));
    }
}
