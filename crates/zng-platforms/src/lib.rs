//! The seven GPU-SSD platforms of the paper (§V-A) plus the `Ideal`
//! baseline, and the event-driven simulation runner.
//!
//! | Platform | Paper id | Memory backend |
//! |---|---|---|
//! | [`PlatformKind::Hetero`] | (1) | discrete GPU + NVMe SSD over PCIe, host-serviced page faults |
//! | [`PlatformKind::HybridGpu`] | (2) | embedded SSD module (dispatcher + engine + DRAM buffer + ONFI bus) |
//! | [`PlatformKind::Optane`] | (3) | six Optane DC PMM controllers |
//! | [`PlatformKind::ZngBase`] | (4) | direct flash controllers, no read/write optimisation |
//! | [`PlatformKind::ZngRdopt`] | (5) | + STT-MRAM L2 with dynamic prefetch |
//! | [`PlatformKind::ZngWropt`] | (6) | + grouped flash registers (HW-NiF) |
//! | [`PlatformKind::Zng`] | (7) | both optimisations + thrashing redirection |
//! | [`PlatformKind::Ideal`] | — | unbounded GDDR5 holding the whole dataset |
//!
//! Drive a run with [`Simulation::new`] + [`Simulation::run`]; the
//! [`RunResult`] carries every metric the paper's figures plot.

pub mod backend;
pub mod config;
pub mod metrics;
pub mod qos;
pub mod runner;

pub use backend::Backend;
pub use config::{
    CheckpointConfig, EnduranceConfig, HealthConfig, IntegrityConfig, PlatformKind,
    RedundancyConfig, SimConfig,
};
pub use metrics::{
    CheckpointSummary, CrashRecoverySummary, DieBreakdown, EnduranceSummary, HealthSummary,
    IntegritySummary, PerfSummary, RedundancySummary, RunResult,
};
pub use qos::{FairShare, QosConfig, QosSummary, MAX_QOS_APPS};
pub use runner::Simulation;
