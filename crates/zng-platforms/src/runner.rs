//! The event-driven simulation runner.
//!
//! Warps are trace-driven: compute segments occupy their SM's issue port;
//! memory ops expand through the coalescer and block the warp until every
//! 128 B request completes. The memory path is
//! TLB/MMU → L1D (+MSHR) → interconnect → shared L2 → platform backend,
//! with the ZnG read path adding the PC predictor / access monitor and
//! the write path adding register buffering, thrashing redirection and
//! helper-thread GC blocking (paper Figs. 10–17).

use std::collections::BTreeMap;
use std::time::Instant;

use fxhash::FxHashMap;
use zng_ftl::GcReport;
use zng_gpu::{
    AccessMonitor, GpuConfig, Interconnect, L2Cache, L2Technology, Mmu, Mshr, Predictor,
    PrefetchPolicy, Sm, Warp, WarpOp,
};
use zng_sim::{CrashSwitch, EventQueue, PatrolTicker, Percentiles, TimeSeries};
use zng_types::{
    ids::{AppId, Pc, SmId, WarpId},
    AccessKind, Cycle, Error, Freq, Result,
};
use zng_workloads::MultiApp;

use crate::backend::{Backend, BackendWrite};
use crate::config::{EnduranceConfig, PlatformKind, RedundancyConfig, SimConfig};
use crate::metrics::{
    CheckpointSummary, CrashRecoverySummary, DieBreakdown, EnduranceSummary, HealthSummary,
    IntegritySummary, PerfSummary, RedundancySummary, RunResult,
};
use crate::qos::{FairShare, QosConfig, QosSummary};

/// Time-series bucket width for Fig. 17b (10 µs at 1.2 GHz).
const SERIES_INTERVAL: Cycle = Cycle(12_000);
/// In redirection mode, 1 in `REDIRECT_PROBE` writes bypasses the pinned
/// L2 and probes the registers so the thrashing verdict can clear.
const REDIRECT_PROBE: u64 = 8;
/// "A few L2 cache space" (paper §III-C): at most this many lines may be
/// pinned for redirected dirty data.
const REDIRECT_CAP: u64 = 4096;
/// Redirected lines drained back to the registers per drain opportunity.
const DRAIN_CHUNK: usize = 256;

/// One platform instance ready to run workloads.
#[derive(Debug)]
pub struct Simulation {
    kind: PlatformKind,
    freq: Freq,
    sms: Vec<Sm>,
    mmu: Mmu,
    l2: L2Cache,
    icnt: Interconnect,
    backend: Backend,
    predictor: Predictor,
    monitor: AccessMonitor,
    policy: PrefetchPolicy,
    page_mshr: Mshr,
    page_bytes: usize,
    app_blocked_until: FxHashMap<u16, Cycle>,
    redirected_writes: u64,
    write_probe: u64,
    thrash_mode: bool,
    pinned_dirty: u64,
    gc_reports: Vec<GcReport>,
    crash_switch: CrashSwitch,
    crash_summary: Option<CrashRecoverySummary>,
    /// Redundancy policy. [`RedundancyConfig::off`] (the default) makes
    /// every self-healing hook below a no-op.
    redundancy: RedundancyConfig,
    /// One-shot die-failure trigger (`die_fail_at`).
    die_switch: CrashSwitch,
    /// Patrol-scrub cadence, keyed to completed requests.
    patrol: PatrolTicker,
    /// Overload-control policy. [`QosConfig::unbounded`] (the default)
    /// makes every QoS hook below a no-op.
    qos: QosConfig,
    /// Backoff retries performed after [`Error::Backpressure`] rejections.
    qos_retried: u64,
    /// Requests whose backoff budget ran out (they then waited for the
    /// rejecting queue's hinted `retry_at`, which is guaranteed to admit
    /// in the sequential model).
    qos_budget_exhausted: u64,
    /// Redirected writes that found the pinned-L2 region full and
    /// degraded gracefully to the register path.
    pinned_overflow_stalls: u64,
    /// Paced GCs whose stall credit ran out, releasing the victim early.
    gc_credit_exhausted: u64,
    /// Remaining foreground-stall credit per victim app (GC pacing).
    gc_credits: FxHashMap<u16, u64>,
    /// Watchdog budget: abort with [`Error::Stalled`] when the event loop
    /// advances this many cycles past the last completed request.
    watchdog: Option<u64>,
    /// End-to-end integrity verification enabled (`--integrity`).
    integrity_on: bool,
    /// L2 lines poisoned after unrecoverable integrity violations.
    poisoned_lines: u64,
    /// Endurance policy. [`EnduranceConfig::off`] (the default) makes
    /// every lifetime-management hook below a no-op.
    endurance: EnduranceConfig,
    /// Refresh-scheduler cadence, keyed to completed requests.
    refresh_ticker: PatrolTicker,
    /// Writes refused after end-of-life capacity degradation (the
    /// workload keeps running; the device is read-only for new data).
    writes_refused: u64,
    /// Mapping-checkpoint subsystem enabled (`--checkpoint`).
    checkpoint_on: bool,
    /// Checkpoint-writer cadence, keyed to completed requests.
    checkpoint_ticker: PatrolTicker,
    /// Predictive health monitor enabled (`--health`).
    health_on: bool,
    /// Health-monitor cadence, keyed to completed requests.
    health_ticker: PatrolTicker,
    /// Sim-throughput telemetry requested (`--perf`): attach a
    /// [`PerfSummary`] to the result. The event counters below are
    /// maintained unconditionally (integer adds); only the wall-clock
    /// summary is gated so default output stays byte-identical.
    perf_on: bool,
}

impl Simulation {
    /// Builds a platform simulation.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn new(kind: PlatformKind, cfg: &SimConfig) -> Result<Simulation> {
        cfg.validate()?;
        let freq = cfg.gpu.freq;
        // rdopt platforms swap the L2 for the 4x STT-MRAM, read-only.
        let mut gpu_cfg: GpuConfig = cfg.gpu;
        if kind.has_rdopt() {
            gpu_cfg.l2_tech = L2Technology::SttMram;
            gpu_cfg.l2_sets_per_bank *= L2Technology::SttMram.capacity_factor();
        }
        let mut l2 = L2Cache::new(&gpu_cfg);
        if kind.has_rdopt() {
            l2.set_read_only(true);
        }
        let policy = if kind.has_rdopt() {
            cfg.prefetch_policy
        } else {
            PrefetchPolicy::None
        };
        let (hi, lo) = cfg.monitor_thresholds;
        let mut backend = Backend::new(kind, cfg, freq)?;
        if let Some(ch) = cfg.redundancy.link_fail {
            // A severed link is a boot-time condition: every transfer on
            // that channel detours for the whole run.
            backend.fail_link(ch);
        }
        Ok(Simulation {
            kind,
            freq,
            sms: (0..gpu_cfg.sms)
                .map(|i| Sm::new(SmId(i as u16), &gpu_cfg))
                .collect(),
            mmu: Mmu::new(gpu_cfg.tlb_entries, gpu_cfg.walker_threads, Cycle(200)),
            l2,
            icnt: Interconnect::new(gpu_cfg.l2_banks, 32.0, Cycle(20)),
            backend,
            predictor: Predictor::new(),
            monitor: AccessMonitor::new(hi, lo),
            policy,
            page_mshr: Mshr::new(256),
            page_bytes: cfg.flash.page_bytes,
            app_blocked_until: FxHashMap::default(),
            redirected_writes: 0,
            write_probe: 0,
            thrash_mode: false,
            pinned_dirty: 0,
            gc_reports: Vec::new(),
            crash_switch: cfg
                .crash_at
                .map(CrashSwitch::at_ops)
                .unwrap_or_else(CrashSwitch::disarmed),
            crash_summary: None,
            redundancy: cfg.redundancy,
            die_switch: cfg
                .redundancy
                .die_fail_at
                .map(CrashSwitch::at_ops)
                .unwrap_or_else(CrashSwitch::disarmed),
            patrol: PatrolTicker::every_ops(cfg.redundancy.scrub_every_ops),
            qos: cfg.qos,
            qos_retried: 0,
            qos_budget_exhausted: 0,
            pinned_overflow_stalls: 0,
            gc_credit_exhausted: 0,
            gc_credits: FxHashMap::default(),
            watchdog: cfg.watchdog,
            integrity_on: cfg.integrity.enabled,
            poisoned_lines: 0,
            endurance: cfg.endurance,
            refresh_ticker: PatrolTicker::every_ops(cfg.endurance.refresh_every_ops),
            writes_refused: 0,
            checkpoint_on: cfg.checkpoint.enabled,
            checkpoint_ticker: PatrolTicker::every_ops(if cfg.checkpoint.enabled {
                cfg.checkpoint.every_ops
            } else {
                0
            }),
            health_on: cfg.health.enabled,
            health_ticker: PatrolTicker::every_ops(if cfg.health.enabled {
                cfg.health.every_ops
            } else {
                0
            }),
            perf_on: cfg.perf,
        })
    }

    /// The platform being simulated.
    pub fn kind(&self) -> PlatformKind {
        self.kind
    }

    /// Runs `mix` to completion and returns the metrics.
    ///
    /// # Errors
    ///
    /// Propagates backend/FTL errors (e.g. flash out of space).
    pub fn run(&mut self, mix: &MultiApp) -> Result<RunResult> {
        let mut warps: Vec<Warp> = Vec::new();
        for (_, app, traces) in &mix.apps {
            for trace in traces {
                let id = WarpId(warps.len() as u32);
                warps.push(Warp::new(id, *app, trace.clone()));
            }
        }
        let sm_count = self.sms.len();

        // Every warp has at most one pending event, so the heap never
        // outgrows the warp count — pre-sizing it makes the loop
        // allocation-free.
        let mut queue: EventQueue<usize> = EventQueue::with_capacity(warps.len() + 1);
        for i in 0..warps.len() {
            queue.schedule(Cycle::ZERO, i);
        }

        // Fairness gate: only built when a fairness window is configured;
        // `None` keeps the scheduling loop bit-identical to the
        // pre-QoS runner.
        let mut fair = if self.qos.fair_window > 0 {
            let mut warps_per_app: BTreeMap<u16, u64> = BTreeMap::new();
            for w in &warps {
                *warps_per_app.entry(w.app().raw()).or_insert(0) += 1;
            }
            Some(FairShare::new(&warps_per_app))
        } else {
            None
        };
        // Exact latency percentiles store every sample; only pay for
        // them when a bounded QoS policy will report them.
        let mut read_pct = (!self.qos.is_unbounded()).then(Percentiles::new);
        let mut write_pct = (!self.qos.is_unbounded()).then(Percentiles::new);

        let mut last_cycle = Cycle::ZERO;
        let mut requests: u64 = 0;
        let (mut read_lat_sum, mut read_lat_n) = (0u64, 0u64);
        let (mut write_lat_sum, mut write_lat_n) = (0u64, 0u64);
        let mut per_app_read_lat: BTreeMap<u16, (u64, u64)> = BTreeMap::new();
        let mut per_app_write_lat: BTreeMap<u16, (u64, u64)> = BTreeMap::new();
        let mut per_app_requests: BTreeMap<u16, u64> = BTreeMap::new();
        let mut series: BTreeMap<u16, TimeSeries> = BTreeMap::new();
        for (_, app, _) in &mix.apps {
            series.insert(app.raw(), TimeSeries::new(SERIES_INTERVAL));
            per_app_requests.insert(app.raw(), 0);
        }

        // Watchdog: the newest completion time across serviced requests.
        // Completions are recorded ahead of event pop time, so a healthy
        // run never trips; a run that stops retiring memory requests
        // while the clock advances past the budget aborts loudly.
        let mut last_progress = Cycle::ZERO;

        // Sim-throughput counters: unconditional integer adds, with the
        // wall-clock summary attached only when telemetry was requested.
        let wall_start = Instant::now();
        let mut perf_events: u64 = 0;
        let mut perf_peak_depth: u64 = 0;
        let mut perf_compute: u64 = 0;
        let mut perf_mem: u64 = 0;
        let mut perf_blocked: u64 = 0;
        let mut perf_maint: u64 = 0;
        let mut perf_skipped: u64 = 0;

        // Same-cycle batch drain: pull every event sharing the front
        // timestamp with one `pop_at` into a reusable scratch buffer
        // instead of round-tripping the heap per event. Events scheduled
        // mid-batch at the same cycle carry higher sequence numbers than
        // everything already drained, so the next `pop_at` picks them up
        // in exactly the one-at-a-time total order.
        let mut batch: Vec<usize> = Vec::with_capacity(warps.len());
        // Reusable coalescer output: a warp op touches at most 32 sectors.
        let mut sector_scratch: Vec<u64> = Vec::with_capacity(32);
        while let Some(now) = queue.peek_time() {
            perf_peak_depth = perf_peak_depth.max(queue.len() as u64);
            batch.clear();
            queue.pop_at(now, &mut batch);
            for &idx in &batch {
                perf_events += 1;
                Self::watchdog_check(self.watchdog, now, last_progress)?;
                // Power cut: fires once, at a request-count boundary. The
                // storage side loses its volatile state and recovers from the
                // OOB scan; the GPU side reboots with cold caches. Every app
                // is held until the recovery scan finishes.
                if self.crash_switch.poll(requests) {
                    perf_maint += 1;
                    let report = self.backend.crash_recover(now)?;
                    self.power_cut_gpu();
                    let resume = now + report.map(|r| r.scan_cycles).unwrap_or(Cycle::ZERO);
                    self.block_all_apps(mix, resume);
                    let r = report.unwrap_or_default();
                    self.crash_summary = Some(CrashRecoverySummary {
                        at_requests: requests,
                        at_cycle: now,
                        pages_scanned: r.pages_scanned,
                        torn_discarded: r.torn_discarded,
                        stale_dropped: r.stale_dropped,
                        blocks_erased: r.blocks_erased,
                        scan_cycles: r.scan_cycles,
                        corrupt_quarantined: r.corrupt_quarantined,
                        fast_path: r.fast_path,
                        fallback: r.fallback,
                        journal_replayed: r.journal_replayed,
                        blocks_rescanned: r.blocks_rescanned,
                        cycles_saved: r.cycles_saved,
                    });
                }
                // Die failure: fires once. The FTL fences the dead die's
                // blocks (relocating live log pages around it) and every app
                // is held while the emergency relocations run; afterwards
                // reads reconstruct from surviving stripe members.
                if self.die_switch.poll(requests) {
                    perf_maint += 1;
                    let (ch, die) = self.redundancy.die_fail;
                    let fenced = self.backend.fail_die(now, ch, die)?;
                    self.block_all_apps(mix, fenced);
                }
                // Patrol scrub: one bounded step per cadence boundary. The
                // step's media work always completes but the foreground
                // stall is capped by the pacing budget when one is set.
                if self.patrol.poll(requests) {
                    perf_maint += 1;
                    let horizon = self.backend.scrub_step(now)?;
                    self.block_all_apps(mix, horizon);
                }
                // Background refresh: one endurance-scheduler step per
                // cadence boundary (disturb/retention threshold scan → block
                // refresh, or one static-levelling migration). The media
                // work always completes but the foreground stall is capped
                // by the pacing budget when one is set.
                if self.refresh_ticker.poll(requests) {
                    perf_maint += 1;
                    let horizon = self.backend.refresh_step(now)?;
                    self.block_all_apps(mix, horizon);
                }
                // Background checkpoint: one mapping snapshot per cadence
                // boundary into the reserved checkpoint namespace. The
                // media work always completes but the foreground stall is
                // capped by the pacing budget when one is set.
                if self.checkpoint_ticker.poll(requests) {
                    perf_maint += 1;
                    let horizon = self.backend.checkpoint_step(now);
                    self.block_all_apps(mix, horizon);
                }
                // Predictive health: one monitor tick per cadence boundary —
                // score the per-die telemetry, fence freshly dead dies,
                // evacuate one victim block off a suspect (when evacuation is
                // on) and rehabilitate false positives. The media work always
                // completes but the foreground stall is capped by the pacing
                // budget when one is set.
                if self.health_ticker.poll(requests) {
                    perf_maint += 1;
                    let horizon = self.backend.health_step(now)?;
                    self.block_all_apps(mix, horizon);
                }
                if warps[idx].is_done() {
                    perf_skipped += 1;
                    continue;
                }
                let app = warps[idx].app();
                // During a GC of this app's blocks the MMU holds its memory
                // requests (paper SV-D): the warp re-tries once the helper
                // thread finishes. Blocking at the event level (rather than
                // deferring the request to a future timestamp) keeps shared
                // resources causally reserved.
                if let Some(&until) = self.app_blocked_until.get(&app.raw()) {
                    if until > now && matches!(warps[idx].current_op(), Some(WarpOp::Mem { .. })) {
                        // GC pacing credit: every stalled foreground event
                        // burns one of the merge's credits; when they run out
                        // the victim is released early rather than waiting
                        // for the whole merge (crash-resume blocking carries
                        // no credit entry and always waits in full).
                        match self.gc_credits.get_mut(&app.raw()) {
                            Some(credit) if *credit == 0 => {
                                self.app_blocked_until.remove(&app.raw());
                                self.gc_credits.remove(&app.raw());
                                self.gc_credit_exhausted += 1;
                            }
                            Some(credit) => {
                                *credit -= 1;
                                perf_blocked += 1;
                                queue.schedule(until, idx);
                                continue;
                            }
                            None => {
                                perf_blocked += 1;
                                queue.schedule(until, idx);
                                continue;
                            }
                        }
                    }
                }
                // Fair-share gate: a memory op from an app that has run more
                // than a window ahead of the furthest-behind active app is
                // deferred one backoff quantum, bounding any app's service
                // lag (starvation freedom).
                if let Some(f) = fair.as_mut() {
                    if matches!(warps[idx].current_op(), Some(WarpOp::Mem { .. }))
                        && f.should_throttle(app.raw(), &self.qos, self.qos.fair_window)
                    {
                        perf_blocked += 1;
                        queue.schedule(now + self.qos.backoff_base, idx);
                        continue;
                    }
                }
                let sm_idx = idx % sm_count;
                let op = warps[idx].current_op().expect("warp not done");
                match op {
                    WarpOp::Compute(n) => {
                        perf_compute += 1;
                        let t = self.sms[sm_idx].issue(now, n);
                        warps[idx].retire_op();
                        if warps[idx].is_done() {
                            if let Some(f) = fair.as_mut() {
                                f.warp_done(app.raw());
                            }
                        }
                        warps[idx].ready_at = t;
                        last_cycle = last_cycle.max(t);
                        queue.schedule(t, idx);
                    }
                    WarpOp::Mem {
                        base,
                        kind,
                        pattern,
                        pc,
                    } => {
                        perf_mem += 1;
                        let t_issue = self.sms[sm_idx].issue(now, 1);
                        let warp_id = warps[idx].id();
                        let mut done = t_issue;
                        sector_scratch.clear();
                        pattern.sectors_into(base.raw(), &mut sector_scratch);
                        for &sector in &sector_scratch {
                            let t =
                                self.service(t_issue, sm_idx, sector, kind, app, pc, warp_id)?;
                            let lat = t.saturating_since(t_issue).raw();
                            match kind {
                                AccessKind::Read => {
                                    read_lat_sum += lat;
                                    read_lat_n += 1;
                                    let e = per_app_read_lat.entry(app.raw()).or_insert((0, 0));
                                    e.0 += lat;
                                    e.1 += 1;
                                    if let Some(p) = read_pct.as_mut() {
                                        p.record(lat);
                                    }
                                }
                                AccessKind::Write => {
                                    write_lat_sum += lat;
                                    write_lat_n += 1;
                                    let e = per_app_write_lat.entry(app.raw()).or_insert((0, 0));
                                    e.0 += lat;
                                    e.1 += 1;
                                    if let Some(p) = write_pct.as_mut() {
                                        p.record(lat);
                                    }
                                }
                            }
                            if let Some(f) = fair.as_mut() {
                                f.record(app.raw());
                            }
                            done = done.max(t);
                            requests += 1;
                            last_progress = last_progress.max(t);
                            *per_app_requests.entry(app.raw()).or_insert(0) += 1;
                            if let Some(s) = series.get_mut(&app.raw()) {
                                s.record(t_issue, 1);
                            }
                        }
                        warps[idx].retire_op();
                        if warps[idx].is_done() {
                            if let Some(f) = fair.as_mut() {
                                f.warp_done(app.raw());
                            }
                        }
                        warps[idx].ready_at = done;
                        last_cycle = last_cycle.max(done);
                        queue.schedule(done, idx);
                    }
                }
            }
        }

        // Post-failure rebuild: with the foreground traffic drained, the
        // helper threads re-create every page stranded on dead dies onto
        // healthy spare blocks (maintenance time, not charged to the
        // run's cycle count).
        if self.redundancy.enabled && self.die_switch.fired() {
            self.backend.rebuild_dead_die(last_cycle)?;
        }

        let instructions: u64 = warps.iter().map(|w| w.instructions_done()).sum();
        let mut per_app_instructions: BTreeMap<u16, u64> = BTreeMap::new();
        let mut per_app_cycles: BTreeMap<u16, Cycle> = BTreeMap::new();
        for w in &warps {
            *per_app_instructions.entry(w.app().raw()).or_insert(0) += w.instructions_done();
            let c = per_app_cycles.entry(w.app().raw()).or_insert(Cycle::ZERO);
            *c = (*c).max(w.ready_at);
        }
        let cycles = last_cycle.max(Cycle(1));

        let (flash_gbps, reads_pp, progs_pp) = match self.backend.flash_device() {
            Some(d) => (
                d.stats().array_gbps(cycles, self.freq),
                d.stats().mean_reads_per_page(),
                d.stats().mean_programs_per_page(),
            ),
            None => (0.0, 0.0, 0.0),
        };
        let (read_retries, uncorrectable_reads, program_failures, erase_failures) =
            match self.backend.flash_device() {
                Some(d) => (
                    d.stats().read_retries(),
                    d.stats().uncorrectable_reads(),
                    d.stats().program_failures(),
                    d.stats().erase_failures(),
                ),
                None => (0, 0, 0, 0),
            };
        let gc_events = self
            .backend
            .zng_ftl()
            .map(|f| f.gc_events().to_vec())
            .unwrap_or_default();

        let mean = |m: &BTreeMap<u16, (u64, u64)>| -> BTreeMap<u16, f64> {
            m.iter()
                .map(|(&a, &(sum, n))| (a, sum as f64 / n.max(1) as f64))
                .collect()
        };
        let qos = (!self.qos.is_unbounded()).then(|| QosSummary {
            rejected: self.backend.qos_rejections(),
            retried: self.qos_retried,
            retry_budget_exhausted: self.qos_budget_exhausted,
            mshr_stalls: self.sms.iter().map(|s| s.mshr().full_stalls()).sum::<u64>()
                + self.page_mshr.full_stalls(),
            pinned_overflow_stalls: self.pinned_overflow_stalls,
            gc_deadline_misses: self.backend.gc_deadline_misses(),
            paced_gcs: self.backend.paced_gcs(),
            gc_credit_exhausted: self.gc_credit_exhausted,
            fairness_throttles: fair.as_ref().map(FairShare::throttles).unwrap_or(0),
            max_service_lag: fair.as_ref().map(FairShare::max_lag).unwrap_or(0),
            max_queue_occupancy: self.backend.qos_max_occupancy(),
            read_p50: read_pct.as_mut().map(|p| p.percentile(0.50)).unwrap_or(0),
            read_p95: read_pct.as_mut().map(|p| p.percentile(0.95)).unwrap_or(0),
            read_p99: read_pct.as_mut().map(|p| p.percentile(0.99)).unwrap_or(0),
            write_p50: write_pct.as_mut().map(|p| p.percentile(0.50)).unwrap_or(0),
            write_p95: write_pct.as_mut().map(|p| p.percentile(0.95)).unwrap_or(0),
            write_p99: write_pct.as_mut().map(|p| p.percentile(0.99)).unwrap_or(0),
        });
        let redundancy = self.redundancy.enabled.then(|| {
            let c = self.backend.rain_counters().unwrap_or_default();
            RedundancySummary {
                reconstructions: c.reconstructions,
                reconstruction_reads: c.reconstruction_reads,
                parity_pages: c.parity_pages,
                scrub_scanned: c.scrub_scanned,
                scrub_rewrites: c.scrub_rewrites,
                scrub_overruns: c.scrub_overruns,
                scrub_ticks: self.patrol.ticks(),
                rebuild_pages: c.rebuild_pages,
                degraded_reads: c.degraded_reads,
                fenced_blocks: c.fenced_blocks,
                dead_die_reads: self.backend.dead_die_reads(),
                rerouted_transfers: self.backend.rerouted_transfers(),
                retry_depth_histogram: self
                    .backend
                    .flash_device()
                    .map(|d| d.stats().retry_depth_histogram())
                    .unwrap_or_default(),
            }
        });
        let integrity = self.integrity_on.then(|| {
            let c = self.backend.integrity_counters().unwrap_or_default();
            IntegritySummary {
                silent_corruptions: self.backend.silent_corruptions(),
                detected: c.detected,
                rereads: c.rereads,
                reconstructed: c.reconstructed,
                quarantined: c.quarantined,
                poisoned_lines: self.poisoned_lines,
            }
        });
        let endurance = self.endurance.enabled.then(|| {
            let c = self.backend.endurance_counters().unwrap_or_default();
            let rep = self.backend.endurance_report();
            let (disturb_reads, disturb_triggered_errors) = self
                .backend
                .flash_device()
                .map(|d| {
                    (
                        d.stats().disturb_reads(),
                        d.stats().disturb_triggered_errors(),
                    )
                })
                .unwrap_or((0, 0));
            EnduranceSummary {
                refresh_ticks: self.refresh_ticker.ticks(),
                refreshes: c.refreshes,
                disturb_refreshes: c.disturb_refreshes,
                retention_refreshes: c.retention_refreshes,
                refreshed_pages: c.refreshed_pages,
                level_migrations: c.level_migrations,
                leveled_pages: c.leveled_pages,
                refresh_overruns: c.refresh_overruns,
                capacity_steps: c.capacity_steps,
                writes_refused: self.writes_refused,
                disturb_reads,
                disturb_triggered_errors,
                wear_max: rep.map(|r| r.worst_wear_fraction()).unwrap_or(0.0),
                wear_mean: rep.map(|r| r.mean_wear_fraction()).unwrap_or(0.0),
                wear_min: rep.map(|r| r.min_wear_fraction()).unwrap_or(0.0),
                wear_spread: rep.map(|r| r.wear_spread()).unwrap_or(1.0),
            }
        });
        let checkpoint = self.checkpoint_on.then(|| {
            let c = self.backend.checkpoint_counters().unwrap_or_default();
            CheckpointSummary {
                checkpoint_ticks: self.checkpoint_ticker.ticks(),
                checkpoints: c.checkpoints,
                checkpoint_pages: c.checkpoint_pages,
                journal_records: c.journal_records,
                journal_pages: c.journal_pages,
                overruns: c.overruns,
                journal_overflows: c.journal_overflows,
                aborted: c.aborted,
            }
        });
        let perf = self.perf_on.then(|| {
            let wall = wall_start.elapsed().as_secs_f64();
            PerfSummary {
                wall_seconds: wall,
                events: perf_events,
                events_per_sec: perf_events as f64 / wall.max(1e-9),
                peak_queue_depth: perf_peak_depth,
                compute_events: perf_compute,
                mem_events: perf_mem,
                blocked_events: perf_blocked,
                maintenance_events: perf_maint,
                skipped_events: perf_skipped,
            }
        });
        let health = self.health_on.then(|| {
            let c = self.backend.health_counters().unwrap_or_default();
            let per_die = self
                .backend
                .flash_device()
                .map(|d| {
                    d.stats()
                        .die_health_sorted()
                        .iter()
                        .map(|&((channel, die), h)| DieBreakdown {
                            channel,
                            die,
                            reads: h.reads,
                            retry_steps: h.retry_steps,
                            uncorrectable_reads: h.uncorrectable_reads,
                            programs: h.programs,
                            program_failures: h.program_failures,
                            erases: h.erases,
                            erase_failures: h.erase_failures,
                        })
                        .collect()
                })
                .unwrap_or_default();
            HealthSummary {
                health_ticks: self.health_ticker.ticks(),
                suspects_flagged: c.suspects_flagged,
                pages_evacuated: c.pages_evacuated,
                evacuations_completed: c.evacuations_completed,
                rehabilitations: c.rehabilitations,
                evacuation_overruns: c.evacuation_overruns,
                dead_dies_fenced: c.dead_dies_fenced,
                quarantined: self.backend.quarantined_dies(),
                per_die,
            }
        });

        Ok(RunResult {
            platform: self.kind,
            workload: mix.name.clone(),
            cycles,
            instructions,
            requests,
            ipc: instructions as f64 / cycles.raw() as f64,
            flash_array_gbps: flash_gbps,
            flash_reads_per_page: reads_pp,
            flash_programs_per_page: progs_pp,
            l1_hit_rate: self.sms.iter().map(|s| s.l1_hit_rate()).sum::<f64>()
                / self.sms.len() as f64,
            l2_hit_rate: self.l2.hit_rate(),
            tlb_hit_rate: self.mmu.tlb().hit_rate(),
            predictor_accuracy: self.predictor.accuracy(),
            gcs: self.backend.gcs(),
            register_migrations: self
                .backend
                .flash_device()
                .map(|d| d.total_migrations())
                .unwrap_or(0),
            redirected_writes: self.redirected_writes,
            avg_read_latency: read_lat_sum as f64 / read_lat_n.max(1) as f64,
            avg_write_latency: write_lat_sum as f64 / write_lat_n.max(1) as f64,
            per_app_read_latency: mean(&per_app_read_lat),
            per_app_write_latency: mean(&per_app_write_lat),
            per_app_instructions,
            per_app_cycles,
            per_app_requests,
            per_app_series: series.into_iter().map(|(k, s)| (k, s.samples())).collect(),
            series_interval: SERIES_INTERVAL,
            gc_events,
            read_retries,
            uncorrectable_reads,
            program_failures,
            erase_failures,
            blocks_retired: self.backend.blocks_retired(),
            write_redrives: self.backend.write_redrives(),
            crash_recovery: self.crash_summary.take(),
            qos,
            redundancy,
            integrity,
            endurance,
            checkpoint,
            health,
            perf,
        })
    }

    /// Holds every app's memory requests until `until` (device-wide
    /// maintenance: crash recovery, die fencing, a scrub step).
    fn block_all_apps(&mut self, mix: &MultiApp, until: Cycle) {
        for (_, app, _) in &mix.apps {
            let blocked = self
                .app_blocked_until
                .get(&app.raw())
                .copied()
                .unwrap_or(Cycle::ZERO)
                .max(until);
            self.app_blocked_until.insert(app.raw(), blocked);
        }
    }

    /// Drops every piece of volatile GPU state at a power cut: L2
    /// contents (pinned dirty lines included — redirected writes die
    /// with the SRAM), L1s, MSHRs, TLB and in-flight page fills.
    fn power_cut_gpu(&mut self) {
        self.l2.power_loss();
        self.pinned_dirty = 0;
        self.thrash_mode = false;
        self.mmu.tlb_mut().flush_all();
        for sm in &mut self.sms {
            sm.power_loss();
        }
        self.page_mshr.clear();
    }

    /// Services one 128 B request; returns its completion time.
    #[allow(clippy::too_many_arguments)]
    fn service(
        &mut self,
        now: Cycle,
        sm_idx: usize,
        sector: u64,
        kind: AccessKind,
        app: AppId,
        pc: Pc,
        warp: WarpId,
    ) -> Result<Cycle> {
        let vpn = sector >> 12;
        let t = self.mmu.translate(now, vpn)?;
        match kind {
            AccessKind::Read => self.service_read(t, sm_idx, sector, vpn, app, pc, warp),
            AccessKind::Write => self.service_write(t, sm_idx, sector, vpn, app),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn service_read(
        &mut self,
        now: Cycle,
        sm_idx: usize,
        sector: u64,
        vpn: u64,
        app: AppId,
        pc: Pc,
        warp: WarpId,
    ) -> Result<Cycle> {
        let (l1_hit, t) = self.sms[sm_idx].l1_access(now, sector, false);
        if l1_hit {
            return Ok(t);
        }
        if let Some(done) = self.sms[sm_idx].mshr_mut().inflight(t, sector) {
            return Ok(done);
        }
        // Bounded mode: a full MSHR file is a structural hazard. Instead
        // of displacing an in-flight fill (the unbounded approximation),
        // the warp backs off until the earliest fill frees a slot — one
        // bounded retry, surfaced as an `mshr_stalls` count.
        let t = if self.qos.queue_depth.is_some() {
            self.sms[sm_idx]
                .mshr_mut()
                .full_until(t, sector)
                .unwrap_or(t)
        } else {
            t
        };
        if self.kind.has_rdopt() {
            self.predictor.observe(pc, warp, vpn);
        }
        let bank = self.l2.bank_of(sector);
        let t = self.icnt.transfer(t, bank, 128);
        // A whole-page fill may already be in flight.
        if let Some(done) = self.page_mshr.inflight(t, vpn) {
            self.sms[sm_idx].l1_fill(sector, app);
            return Ok(done);
        }
        let acc = self.l2.access(t, sector, false);
        if acc.hit {
            self.sms[sm_idx].l1_fill(sector, app);
            return Ok(acc.done);
        }
        // L2 miss: fetch from the backend.
        let (bytes, prefetch) = self.read_granule(pc);
        let data_at = match self.backend_read(acc.done, sector, vpn, bytes) {
            Ok(t) => t,
            Err(e @ Error::IntegrityViolation { .. }) => {
                // Poison containment: the unverifiable data still lands
                // in the L2 but the line is poisoned — it can never turn
                // dirty or be written back, and any dependent warp faults
                // deterministically instead of consuming it.
                let (ev, _) = self.l2.fill_line(acc.done, sector, false, app);
                if let Some(ev) = ev {
                    self.monitor.on_eviction(ev.prefetch, ev.accessed);
                }
                self.l2.poison_line(sector);
                self.poisoned_lines += 1;
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        // Fill the demand line, plus the prefetch window from page base.
        let (ev, _) = self.l2.fill_line(data_at, sector, false, app);
        if let Some(e) = ev {
            self.monitor.on_eviction(e.prefetch, e.accessed);
        }
        if prefetch && bytes > 128 {
            let page_base = sector & !(self.page_bytes as u64 - 1);
            let (evicted, _) = self.l2.fill_span(data_at, page_base, bytes, true, app);
            for e in evicted {
                self.monitor.on_eviction(e.prefetch, e.accessed);
            }
            self.page_mshr.register(vpn, data_at);
        }
        self.sms[sm_idx].mshr_mut().register(sector, data_at);
        self.sms[sm_idx].l1_fill(sector, app);
        Ok(data_at)
    }

    fn service_write(
        &mut self,
        now: Cycle,
        sm_idx: usize,
        sector: u64,
        vpn: u64,
        app: AppId,
    ) -> Result<Cycle> {
        // Write-through, no L1 allocation.
        let (_, t) = self.sms[sm_idx].l1_access(now, sector, true);
        let bank = self.l2.bank_of(sector);
        let mut t = self.icnt.transfer(t, bank, 128);

        // Thrashing redirection (full ZnG): absorb the write in pinned L2.
        if self.kind.has_redirection() && self.thrash_mode {
            if self.pinned_dirty < REDIRECT_CAP {
                self.write_probe += 1;
                if !self.write_probe.is_multiple_of(REDIRECT_PROBE) {
                    let (ev, done) = self.l2.fill_line(t, sector, false, app);
                    if let Some(e) = ev {
                        self.monitor.on_eviction(e.prefetch, e.accessed);
                    }
                    if self.l2.pin_dirty(sector) {
                        self.redirected_writes += 1;
                        self.pinned_dirty += 1;
                        return Ok(done);
                    }
                    // The set was fully pinned: fall through to the
                    // registers, gracefully. Bounded mode pays (and
                    // counts) one backoff quantum for the failed pin.
                    if !self.qos.is_unbounded() {
                        self.pinned_overflow_stalls += 1;
                        t += self.qos.backoff_delay(0);
                    }
                }
            } else if !self.qos.is_unbounded() {
                // The pinned region is at its cap: same graceful
                // degradation to the register path.
                self.pinned_overflow_stalls += 1;
                t += self.qos.backoff_delay(0);
            }
        }

        // The L2 copy of this line is now stale.
        self.l2.invalidate(sector);
        self.sms[sm_idx].l1_invalidate(sector);
        // Graceful end of life: a capacity-degraded device refuses the
        // program but the workload keeps running — the refusal is
        // counted and the op completes without touching the media.
        let w = match self.backend_write(t, sector, vpn) {
            Err(Error::CapacityDegraded { .. }) => {
                self.writes_refused += 1;
                BackendWrite {
                    done: t,
                    ..BackendWrite::default()
                }
            }
            other => other?,
        };
        self.thrash_mode = self.kind.has_redirection() && w.thrashing;
        if !w.thrashing && self.pinned_dirty > 0 {
            self.drain_pinned(w.done)?;
        }
        if let Some(gc) = w.gc {
            self.handle_gc(&gc);
            self.gc_reports.push(gc);
        }
        Ok(w.done)
    }

    /// Flushes redirected dirty lines back to the registers once
    /// thrashing subsides (asynchronously; does not gate the warp).
    ///
    /// The write-backs are issued concurrently at `now` — they contend
    /// naturally on the shared flash resources. Chaining them serially
    /// would reserve far-future link/plane slots and falsely stall every
    /// later demand access.
    fn drain_pinned(&mut self, now: Cycle) -> Result<()> {
        let dirty = self.l2.unpin_up_to(DRAIN_CHUNK);
        self.pinned_dirty = self.pinned_dirty.saturating_sub(dirty.len() as u64);
        for line in dirty {
            let w = match self.backend_write(now, line, line >> 12) {
                Err(Error::CapacityDegraded { .. }) => {
                    self.writes_refused += 1;
                    continue;
                }
                other => other?,
            };
            if let Some(gc) = w.gc {
                self.handle_gc(&gc);
                self.gc_reports.push(gc);
            }
        }
        Ok(())
    }

    /// The no-forward-progress watchdog: fails with [`Error::Stalled`]
    /// when the event clock has advanced more than `budget` cycles past
    /// the newest request completion. `None` disables the check.
    fn watchdog_check(budget: Option<u64>, now: Cycle, last_progress: Cycle) -> Result<()> {
        match budget {
            Some(b) if now.raw().saturating_sub(last_progress.raw()) > b => Err(Error::Stalled {
                cycle: now,
                last_progress,
            }),
            _ => Ok(()),
        }
    }

    /// Calls the backend read, absorbing [`Error::Backpressure`]: a
    /// bounded exponential backoff (at most `retry_budget` re-issues),
    /// then one forced wait at the rejecting queue's hinted `retry_at`,
    /// which is guaranteed to admit in the sequential model. Unbounded
    /// configurations never see a rejection, so this is a pass-through.
    fn backend_read(&mut self, now: Cycle, sector: u64, vpn: u64, bytes: usize) -> Result<Cycle> {
        let mut t = now;
        let mut attempt = 0u32;
        loop {
            match self.backend.read(t, sector, vpn, bytes) {
                Err(Error::Backpressure { retry_at }) => {
                    t = self.next_retry_at(t, retry_at, &mut attempt);
                }
                other => return other,
            }
        }
    }

    /// Write-side twin of [`Simulation::backend_read`]. Rejections happen
    /// before any FTL state changes, so a re-issue is idempotent.
    fn backend_write(&mut self, now: Cycle, sector: u64, vpn: u64) -> Result<BackendWrite> {
        let mut t = now;
        let mut attempt = 0u32;
        loop {
            match self.backend.write(t, sector, vpn) {
                Err(Error::Backpressure { retry_at }) => {
                    t = self.next_retry_at(t, retry_at, &mut attempt);
                }
                other => return other,
            }
        }
    }

    /// The shared backoff policy: exponential delays while the retry
    /// budget lasts, then a single wait at the queue's hinted `retry_at`.
    /// Time strictly advances on every path (the backoff base is
    /// validated positive and `retry_at > t` by construction), so the
    /// retry loops terminate.
    fn next_retry_at(&mut self, t: Cycle, retry_at: Cycle, attempt: &mut u32) -> Cycle {
        if *attempt < self.qos.retry_budget {
            self.qos_retried += 1;
            let delayed = t + self.qos.backoff_delay(*attempt);
            *attempt += 1;
            delayed
        } else {
            if *attempt == self.qos.retry_budget {
                self.qos_budget_exhausted += 1;
            }
            *attempt += 1;
            t.max(retry_at)
        }
    }

    /// Applies a GC report: block the victim app's requests until the
    /// merge's *blocking* horizon (the full merge, or its pacing deadline
    /// when a stall budget is configured), flush the merged pages from
    /// the caches, and invalidate their translations (paper §V-D).
    fn handle_gc(&mut self, gc: &GcReport) {
        let Some(&vpn0) = gc.flushed_vpns.first() else {
            return;
        };
        // app_base = app << 34, so vpn = addr >> 12 carries app at bit 22.
        let victim = (vpn0 >> 22) as u16;
        if std::env::var_os("ZNG_GC_DEBUG").is_some() {
            eprintln!(
                "gc: victim=app{victim} start={} done={} pages={}",
                gc.started.raw(),
                gc.done.raw(),
                gc.migrated_pages
            );
        }
        let blocked = self
            .app_blocked_until
            .get(&victim)
            .copied()
            .unwrap_or(Cycle::ZERO)
            .max(gc.blocking_done);
        self.app_blocked_until.insert(victim, blocked);
        if self.qos.gc_stall_budget.is_some() {
            // Arm the pacing credit for this merge: each foreground event
            // the victim stalls on burns one credit (see the run loop).
            self.gc_credits.insert(victim, self.qos.gc_credit_writes);
        }
        for &vpn in &gc.flushed_vpns {
            self.mmu.tlb_mut().invalidate(vpn);
            self.page_mshr.cancel(vpn);
            for s in 0..(self.page_bytes / self.l2.line_bytes()) as u64 {
                let sector = (vpn << 12) + s * self.l2.line_bytes() as u64;
                if self.l2.invalidate(sector).is_some() {
                    for sm in &mut self.sms {
                        sm.l1_invalidate(sector);
                    }
                }
            }
        }
    }

    /// Decides how many bytes an L2 read miss fetches (Fig. 16b).
    fn read_granule(&self, pc: Pc) -> (usize, bool) {
        if !self.kind.has_rdopt() {
            return (128, false);
        }
        match self.policy {
            PrefetchPolicy::None => (128, false),
            PrefetchPolicy::Fixed(n) => (n.max(128), n > 128),
            PrefetchPolicy::Predicted4K => {
                if self.predictor.should_prefetch(pc) {
                    (self.page_bytes, true)
                } else {
                    (128, false)
                }
            }
            PrefetchPolicy::Dynamic => {
                if self.predictor.should_prefetch(pc) {
                    (self.monitor.granularity(), true)
                } else {
                    (128, false)
                }
            }
        }
    }

    /// GC reports accumulated across runs.
    pub fn gc_reports(&self) -> &[GcReport] {
        &self.gc_reports
    }

    /// The backend (for post-run inspection).
    pub fn backend(&self) -> &Backend {
        &self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zng_workloads::{MultiApp, TraceParams};

    fn run(kind: PlatformKind) -> RunResult {
        let cfg = SimConfig::tiny();
        let mut sim = Simulation::new(kind, &cfg).unwrap();
        let mix = MultiApp::from_names(&["betw"], &TraceParams::tiny()).unwrap();
        sim.run(&mix).unwrap()
    }

    #[test]
    fn all_platforms_complete_a_small_run() {
        for kind in PlatformKind::PAPER_PLATFORMS {
            let r = run(kind);
            assert!(r.instructions > 0, "{kind}");
            assert!(r.cycles > Cycle::ZERO, "{kind}");
            assert!(r.ipc > 0.0, "{kind}");
        }
        let r = run(PlatformKind::Ideal);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn ideal_beats_zng_base() {
        let ideal = run(PlatformKind::Ideal);
        let base = run(PlatformKind::ZngBase);
        assert!(
            ideal.ipc > base.ipc * 2.0,
            "ideal {} vs base {}",
            ideal.ipc,
            base.ipc
        );
    }

    #[test]
    fn determinism() {
        let a = run(PlatformKind::Zng);
        let b = run(PlatformKind::Zng);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn request_count_matches_per_app_sum() {
        let r = run(PlatformKind::Zng);
        let sum: u64 = r.per_app_requests.values().sum();
        assert_eq!(sum, r.requests);
        let series_sum: u64 = r.per_app_series.values().flatten().sum();
        assert_eq!(series_sum, r.requests);
    }

    #[test]
    fn write_mix_triggers_flash_programs_on_base() {
        let cfg = SimConfig::tiny();
        let mut sim = Simulation::new(PlatformKind::ZngBase, &cfg).unwrap();
        let mix = MultiApp::from_names(&["back"], &TraceParams::tiny()).unwrap();
        let r = sim.run(&mix).unwrap();
        assert!(r.flash_programs_per_page > 0.0, "{r:?}");
    }

    #[test]
    fn none_profile_keeps_fault_counters_at_zero() {
        let r = run(PlatformKind::ZngBase);
        assert_eq!(r.read_retries, 0);
        assert_eq!(r.uncorrectable_reads, 0);
        assert_eq!(r.program_failures, 0);
        assert_eq!(r.erase_failures, 0);
        assert_eq!(r.blocks_retired, 0);
        assert_eq!(r.write_redrives, 0);
    }

    #[test]
    fn eol_faults_are_counted_and_survivable() {
        let mut cfg = SimConfig::tiny();
        cfg.fault = zng_flash::FaultConfig::end_of_life();
        let mut sim = Simulation::new(PlatformKind::ZngBase, &cfg).unwrap();
        let mix = MultiApp::from_names(&["back"], &TraceParams::tiny()).unwrap();
        let r = sim.run(&mix).unwrap();
        assert!(r.ipc > 0.0);
        assert!(r.read_retries > 0, "EOL reads must hit the retry ladder");
    }

    #[test]
    fn eol_sustained_writes_wear_out_gracefully() {
        let mut cfg = SimConfig::tiny();
        cfg.fault = zng_flash::FaultConfig::end_of_life();
        // Shrink the pool so sustained writes exhaust it within the run.
        cfg.flash.blocks_per_plane = 8;
        let mut sim = Simulation::new(PlatformKind::ZngBase, &cfg).unwrap();
        let mix = MultiApp::from_names(
            &["back"],
            &TraceParams {
                total_warps: 4,
                mem_ops_per_warp: 4_000,
                footprint_pages: 32,
                seed: 9,
            },
        )
        .unwrap();
        match sim.run(&mix) {
            Err(zng_types::Error::DeviceWornOut { retired_blocks }) => {
                assert!(retired_blocks > 0);
            }
            Err(e) => panic!("expected graceful wear-out, got: {e}"),
            Ok(r) => panic!(
                "run should exhaust the tiny spare pool (retired {})",
                r.blocks_retired
            ),
        }
    }

    #[test]
    fn crash_at_recovers_and_finishes_the_run() {
        let mut cfg = SimConfig::tiny();
        cfg.crash_at = Some(50);
        let mix = MultiApp::from_names(&["back"], &TraceParams::tiny()).unwrap();
        let crashed = Simulation::new(PlatformKind::Zng, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        let clean = Simulation::new(PlatformKind::Zng, &SimConfig::tiny())
            .unwrap()
            .run(&mix)
            .unwrap();
        let summary = crashed.crash_recovery.expect("crash must be reported");
        assert!(summary.at_requests >= 50);
        assert!(summary.at_cycle > Cycle::ZERO);
        assert_eq!(
            crashed.requests, clean.requests,
            "every request still serviced across the cut"
        );
        assert!(
            crashed.cycles >= clean.cycles,
            "recovery can only add time: {} vs {}",
            crashed.cycles,
            clean.cycles
        );
    }

    #[test]
    fn disarmed_crash_reports_nothing() {
        let r = run(PlatformKind::Zng);
        assert!(r.crash_recovery.is_none());
    }

    #[test]
    fn crash_on_flashless_platform_is_a_cold_reboot() {
        let mut cfg = SimConfig::tiny();
        cfg.crash_at = Some(20);
        let mut sim = Simulation::new(PlatformKind::Ideal, &cfg).unwrap();
        let mix = MultiApp::from_names(&["betw"], &TraceParams::tiny()).unwrap();
        let r = sim.run(&mix).unwrap();
        let summary = r.crash_recovery.expect("cut still recorded");
        assert_eq!(summary.pages_scanned, 0, "no flash, nothing to scan");
        assert!(r.instructions > 0);
    }

    #[test]
    fn default_run_reports_no_qos_summary() {
        let r = run(PlatformKind::Zng);
        assert!(r.qos.is_none(), "unbounded default must not report QoS");
        // Per-app latency breakdowns are always collected.
        assert!(!r.per_app_read_latency.is_empty());
        let app_mean =
            r.per_app_read_latency.values().sum::<f64>() / r.per_app_read_latency.len() as f64;
        assert!(app_mean > 0.0);
    }

    #[test]
    fn bounded_qos_run_completes_and_reports() {
        let mut cfg = SimConfig::tiny();
        cfg.qos = crate::qos::QosConfig::bounded(2);
        let mix = MultiApp::from_names(&["betw", "back"], &TraceParams::tiny()).unwrap();
        let mut sim = Simulation::new(PlatformKind::Zng, &cfg).unwrap();
        let r = sim.run(&mix).unwrap();
        assert!(r.instructions > 0);
        let q = r.qos.expect("bounded policy must report a summary");
        assert!(q.rejected > 0, "depth-2 queues must refuse bursts: {q:?}");
        assert!(q.retried > 0, "rejections must be retried: {q:?}");
        assert!(
            q.read_p99 >= q.read_p95 && q.read_p95 >= q.read_p50,
            "{q:?}"
        );
        // Retries are bounded: each request performs at most
        // retry_budget backoffs plus one forced wait.
        let per_request_cap = (cfg.qos.retry_budget as u64 + 1) * r.requests;
        assert!(q.retried + q.retry_budget_exhausted <= per_request_cap);
    }

    #[test]
    fn bounded_qos_run_is_deterministic() {
        let mut cfg = SimConfig::tiny();
        cfg.qos = crate::qos::QosConfig::bounded(2);
        let mix = MultiApp::from_names(&["betw", "back"], &TraceParams::tiny()).unwrap();
        let a = Simulation::new(PlatformKind::Zng, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        let b = Simulation::new(PlatformKind::Zng, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.qos, b.qos);
    }

    #[test]
    fn default_run_reports_no_redundancy_summary() {
        let r = run(PlatformKind::Zng);
        assert!(r.redundancy.is_none(), "off by default, no summary");
    }

    #[test]
    fn patrol_scrub_runs_on_cadence() {
        let mut cfg = SimConfig::tiny();
        cfg.redundancy = RedundancyConfig::rain(20);
        let mix = MultiApp::from_names(&["back"], &TraceParams::tiny()).unwrap();
        let mut sim = Simulation::new(PlatformKind::Zng, &cfg).unwrap();
        let r = sim.run(&mix).unwrap();
        let rd = r.redundancy.expect("enabled policy must report");
        assert!(rd.scrub_ticks > 0, "{rd:?}");
        assert!(rd.scrub_scanned > 0, "{rd:?}");
        assert!(
            rd.retry_depth_histogram.iter().sum::<u64>() > 0,
            "every read lands in a depth bucket: {rd:?}"
        );
    }

    #[test]
    fn die_failure_mid_run_completes_and_rebuilds() {
        let mut cfg = SimConfig::tiny();
        cfg.redundancy = RedundancyConfig::rain(0);
        cfg.redundancy.die_fail_at = Some(60);
        cfg.redundancy.die_fail = (1, 0);
        // Read-heavy mix: preloaded data blocks stay on the dead die
        // (writes would relocate them into log blocks on their own), so
        // the end-of-run rebuild has stranded pages to re-create.
        let mix = MultiApp::from_names(&["betw"], &TraceParams::tiny()).unwrap();
        let mut sim = Simulation::new(PlatformKind::ZngBase, &cfg).unwrap();
        let r = sim.run(&mix).unwrap();
        assert!(r.instructions > 0);
        let rd = r.redundancy.expect("enabled policy must report");
        assert!(rd.fenced_blocks > 0, "dead die's blocks fenced: {rd:?}");
        assert!(rd.rebuild_pages > 0, "stranded pages rebuilt: {rd:?}");
    }

    #[test]
    fn die_failure_run_is_deterministic() {
        let mut cfg = SimConfig::tiny();
        cfg.redundancy = RedundancyConfig::rain(25);
        cfg.redundancy.die_fail_at = Some(40);
        cfg.redundancy.die_fail = (2, 1);
        let mix = MultiApp::from_names(&["back"], &TraceParams::tiny()).unwrap();
        let a = Simulation::new(PlatformKind::ZngBase, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        let b = Simulation::new(PlatformKind::ZngBase, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.redundancy, b.redundancy);
    }

    #[test]
    fn severed_link_reroutes_transfers() {
        let mut cfg = SimConfig::tiny();
        cfg.redundancy = RedundancyConfig::rain(0);
        cfg.redundancy.link_fail = Some(1);
        let mix = MultiApp::from_names(&["betw"], &TraceParams::tiny()).unwrap();
        let mut sim = Simulation::new(PlatformKind::Zng, &cfg).unwrap();
        let r = sim.run(&mix).unwrap();
        let rd = r.redundancy.expect("enabled policy must report");
        assert!(rd.rerouted_transfers > 0, "{rd:?}");
    }

    #[test]
    fn watchdog_check_trips_only_beyond_budget() {
        assert!(Simulation::watchdog_check(None, Cycle(u64::MAX), Cycle::ZERO).is_ok());
        // Exactly at the budget is still progress.
        assert!(Simulation::watchdog_check(Some(100), Cycle(600), Cycle(500)).is_ok());
        match Simulation::watchdog_check(Some(100), Cycle(601), Cycle(500)) {
            Err(Error::Stalled {
                cycle,
                last_progress,
            }) => {
                assert_eq!(cycle, Cycle(601));
                assert_eq!(last_progress, Cycle(500));
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
        // Saturating arithmetic: progress recorded ahead of the clock
        // (a request completing in the future) never underflows.
        assert!(Simulation::watchdog_check(Some(0), Cycle(10), Cycle(500)).is_ok());
    }

    #[test]
    fn generous_watchdog_run_matches_default() {
        let mut cfg = SimConfig::tiny();
        cfg.watchdog = Some(u64::MAX);
        let mix = MultiApp::from_names(&["betw"], &TraceParams::tiny()).unwrap();
        let watched = Simulation::new(PlatformKind::Zng, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        let plain = Simulation::new(PlatformKind::Zng, &SimConfig::tiny())
            .unwrap()
            .run(&mix)
            .unwrap();
        assert_eq!(watched.cycles, plain.cycles);
        assert_eq!(watched.requests, plain.requests);
        assert_eq!(watched.instructions, plain.instructions);
    }

    #[test]
    fn tiny_watchdog_budget_trips_stalled() {
        // A 1-cycle budget trips as soon as the clock advances before the
        // first request completes — the loud-abort path, end to end.
        let mut cfg = SimConfig::tiny();
        cfg.watchdog = Some(1);
        let mix = MultiApp::from_names(&["betw"], &TraceParams::tiny()).unwrap();
        let mut sim = Simulation::new(PlatformKind::Zng, &cfg).unwrap();
        match sim.run(&mix) {
            Err(Error::Stalled {
                cycle,
                last_progress,
            }) => {
                assert!(cycle > last_progress);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn default_run_reports_no_integrity_summary() {
        let r = run(PlatformKind::Zng);
        assert!(r.integrity.is_none(), "off by default, no summary");
    }

    #[test]
    fn integrity_shot_without_redundancy_fails_loudly_and_poisons() {
        use crate::config::IntegrityConfig;
        let mut cfg = SimConfig::tiny();
        cfg.integrity = IntegrityConfig::with_shot(5);
        let mix = MultiApp::from_names(&["betw"], &TraceParams::tiny()).unwrap();
        let mut sim = Simulation::new(PlatformKind::ZngBase, &cfg).unwrap();
        match sim.run(&mix) {
            Err(Error::IntegrityViolation { .. }) => {}
            other => panic!("expected an integrity violation, got {other:?}"),
        }
        // The fetched line was contained: poisoned in the L2, never dirty.
        assert_eq!(sim.poisoned_lines, 1);
        assert_eq!(sim.l2.poisoned(), 1);
    }

    #[test]
    fn integrity_shot_with_redundancy_heals_and_completes() {
        use crate::config::IntegrityConfig;
        let mut cfg = SimConfig::tiny();
        cfg.integrity = IntegrityConfig::with_shot(5);
        cfg.redundancy = RedundancyConfig::rain(0);
        let mix = MultiApp::from_names(&["betw"], &TraceParams::tiny()).unwrap();
        let mut sim = Simulation::new(PlatformKind::ZngBase, &cfg).unwrap();
        let r = sim.run(&mix).unwrap();
        let i = r.integrity.expect("integrity summary must be present");
        assert!(i.silent_corruptions >= 1, "{i:?}");
        assert!(i.detected >= 1, "{i:?}");
        assert!(i.reconstructed >= 1, "{i:?}");
        assert_eq!(i.poisoned_lines, 0, "healed reads never poison: {i:?}");
        // The clean twin finishes with the same request count.
        let clean = Simulation::new(PlatformKind::ZngBase, &SimConfig::tiny())
            .unwrap()
            .run(&mix)
            .unwrap();
        assert_eq!(r.requests, clean.requests);
    }

    #[test]
    fn integrity_run_is_deterministic() {
        use crate::config::IntegrityConfig;
        let mut cfg = SimConfig::tiny();
        cfg.integrity = IntegrityConfig::with_shot(5);
        cfg.redundancy = RedundancyConfig::rain(0);
        let mix = MultiApp::from_names(&["betw"], &TraceParams::tiny()).unwrap();
        let a = Simulation::new(PlatformKind::ZngBase, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        let b = Simulation::new(PlatformKind::ZngBase, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.integrity, b.integrity);
    }

    #[test]
    fn default_run_reports_no_endurance_summary() {
        let r = run(PlatformKind::Zng);
        assert!(r.endurance.is_none(), "off by default, no summary");
    }

    #[test]
    fn endurance_run_reports_wear_and_refresh_activity() {
        use crate::config::EnduranceConfig;
        let mut cfg = SimConfig::tiny();
        cfg.endurance = EnduranceConfig::on(25);
        let mix = MultiApp::from_names(&["back"], &TraceParams::tiny()).unwrap();
        let mut sim = Simulation::new(PlatformKind::ZngBase, &cfg).unwrap();
        let r = sim.run(&mix).unwrap();
        let e = r.endurance.expect("enabled policy must report");
        assert!(e.refresh_ticks > 0, "{e:?}");
        assert!(e.disturb_reads > 0, "array senses charge disturb: {e:?}");
        assert!(e.wear_spread >= 1.0, "{e:?}");
        assert_eq!(e.capacity_steps, 0, "healthy device never degrades");
    }

    #[test]
    fn endurance_run_is_deterministic() {
        use crate::config::EnduranceConfig;
        let mut cfg = SimConfig::tiny();
        cfg.endurance = EnduranceConfig::on(25);
        cfg.fault = zng_flash::FaultConfig::end_of_life();
        let mix = MultiApp::from_names(&["back"], &TraceParams::tiny()).unwrap();
        let a = Simulation::new(PlatformKind::ZngBase, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        let b = Simulation::new(PlatformKind::ZngBase, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.endurance, b.endurance);
    }

    #[test]
    fn endurance_degrades_capacity_instead_of_wearing_out() {
        // The twin of `eol_sustained_writes_wear_out_gracefully`: same
        // churn, but with endurance on the run completes — writes are
        // refused in capacity-degraded read-only mode instead of the
        // whole simulation dying on the DeviceWornOut cliff.
        let mut cfg = SimConfig::tiny();
        cfg.fault = zng_flash::FaultConfig::end_of_life();
        cfg.flash.blocks_per_plane = 8;
        cfg.endurance.enabled = true;
        let mix = MultiApp::from_names(
            &["back"],
            &TraceParams {
                total_warps: 4,
                mem_ops_per_warp: 4_000,
                footprint_pages: 32,
                seed: 9,
            },
        )
        .unwrap();
        let mut sim = Simulation::new(PlatformKind::ZngBase, &cfg).unwrap();
        let r = sim.run(&mix).unwrap();
        let e = r.endurance.expect("enabled policy must report");
        assert!(e.capacity_steps >= 1, "the pool was exhausted: {e:?}");
        assert!(e.writes_refused > 0, "later writes were refused: {e:?}");
        assert!(r.blocks_retired > 0);
    }

    #[test]
    fn default_run_reports_no_checkpoint_summary() {
        let r = run(PlatformKind::Zng);
        assert!(r.checkpoint.is_none(), "off by default, no summary");
    }

    #[test]
    fn checkpoint_run_reports_writer_activity() {
        use crate::config::CheckpointConfig;
        let mut cfg = SimConfig::tiny();
        cfg.checkpoint = CheckpointConfig::on(25);
        let mix = MultiApp::from_names(&["back"], &TraceParams::tiny()).unwrap();
        let mut sim = Simulation::new(PlatformKind::ZngBase, &cfg).unwrap();
        let r = sim.run(&mix).unwrap();
        let c = r.checkpoint.expect("enabled policy must report");
        assert!(c.checkpoint_ticks > 0, "{c:?}");
        assert!(c.checkpoints > 0, "{c:?}");
        assert!(c.checkpoint_pages > 0, "{c:?}");
        assert_eq!(c.aborted, 0, "healthy media never aborts: {c:?}");
    }

    #[test]
    fn checkpoint_off_is_byte_identical_to_default() {
        let mix = MultiApp::from_names(&["back"], &TraceParams::tiny()).unwrap();
        let plain = Simulation::new(PlatformKind::ZngBase, &SimConfig::tiny())
            .unwrap()
            .run(&mix)
            .unwrap();
        let off = Simulation::new(PlatformKind::ZngBase, &SimConfig::tiny())
            .unwrap()
            .run(&mix)
            .unwrap();
        assert_eq!(
            plain.to_json_value().to_string(),
            off.to_json_value().to_string()
        );
    }

    /// Collecting throughput telemetry must not perturb the simulation:
    /// a `perf: true` run's results, with the telemetry detached, are
    /// byte-identical to a default run's.
    #[test]
    fn perf_telemetry_does_not_perturb_results() {
        let mix = MultiApp::from_names(&["back"], &TraceParams::tiny()).unwrap();
        let plain = Simulation::new(PlatformKind::Zng, &SimConfig::tiny())
            .unwrap()
            .run(&mix)
            .unwrap();
        let mut cfg = SimConfig::tiny();
        cfg.perf = true;
        let mut measured = Simulation::new(PlatformKind::Zng, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        let p = measured.perf.take().expect("telemetry attached");
        assert!(p.events > 0 && p.peak_queue_depth > 0);
        assert_eq!(
            p.events,
            p.compute_events + p.mem_events + p.blocked_events + p.skipped_events,
            "every event is exactly one of compute/mem/blocked/skipped"
        );
        assert_eq!(
            plain.to_json_value().to_string(),
            measured.to_json_value().to_string(),
            "telemetry collection changed simulated results"
        );
    }

    #[test]
    fn crash_with_checkpoint_takes_the_fast_path() {
        use crate::config::CheckpointConfig;
        let mut cfg = SimConfig::tiny();
        cfg.checkpoint = CheckpointConfig::on(100);
        cfg.crash_at = Some(5_500);
        // Enough writes that sealed cold blocks dominate the device: the
        // fast path rescans only what moved since the last checkpoint.
        let params = TraceParams {
            total_warps: 8,
            mem_ops_per_warp: 800,
            footprint_pages: 512,
            seed: 7,
        };
        let mix = MultiApp::from_names(&["back"], &params).unwrap();
        let crashed = Simulation::new(PlatformKind::ZngBase, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        let summary = crashed.crash_recovery.expect("crash must be reported");
        assert!(summary.fast_path, "{summary:?}");
        assert!(!summary.fallback, "{summary:?}");
        assert!(
            summary.cycles_saved > Cycle::ZERO,
            "the fast path must beat the full scan: {summary:?}"
        );
        // The crash-free twin still services every request.
        let mut clean_cfg = SimConfig::tiny();
        clean_cfg.checkpoint = CheckpointConfig::on(20);
        let clean = Simulation::new(PlatformKind::ZngBase, &clean_cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        assert_eq!(crashed.requests, clean.requests);
    }

    #[test]
    fn checkpoint_run_is_deterministic() {
        use crate::config::CheckpointConfig;
        let mut cfg = SimConfig::tiny();
        cfg.checkpoint = CheckpointConfig::on(25);
        cfg.crash_at = Some(100);
        let mix = MultiApp::from_names(&["back"], &TraceParams::tiny()).unwrap();
        let a = Simulation::new(PlatformKind::ZngBase, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        let b = Simulation::new(PlatformKind::ZngBase, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.checkpoint, b.checkpoint);
        assert_eq!(a.crash_recovery, b.crash_recovery);
    }

    #[test]
    fn default_run_reports_no_health_summary() {
        let r = run(PlatformKind::Zng);
        assert!(r.health.is_none(), "off by default, no summary");
    }

    #[test]
    fn health_monitor_evacuates_a_degrading_die_end_to_end() {
        use crate::config::HealthConfig;
        // A die degrades over the first ~14M cycles of a ~22M-cycle
        // write-heavy run, then dies. The monitor must flag it while it
        // is merely noisy, fence new writes away, drain its live pages
        // and finish the run without a single read landing on the corpse.
        let mut cfg = SimConfig::tiny();
        cfg.health = HealthConfig::on(3);
        cfg.health.window = 16;
        cfg.health.suspect_threshold = 0.02;
        cfg.health.evacuate = true;
        cfg.fault = zng_flash::FaultConfig::none().with_degrading(zng_flash::DegradingDie {
            channel: 0,
            die: 0,
            onset: 200_000,
            death: 14_000_000,
        });
        let mix = MultiApp::from_names(&["back"], &TraceParams::tiny()).unwrap();
        let mut sim = Simulation::new(PlatformKind::ZngBase, &cfg).unwrap();
        let r = sim.run(&mix).unwrap();
        let h = r.health.expect("enabled monitor must report");
        assert!(h.health_ticks > 0, "{h:?}");
        assert!(h.suspects_flagged >= 1, "{h:?}");
        assert!(h.pages_evacuated > 0, "{h:?}");
        assert!(h.evacuations_completed >= 1, "{h:?}");
        assert_eq!(h.dead_dies_fenced, 1, "the die died mid-run: {h:?}");
        assert!(!h.per_die.is_empty(), "telemetry rollups present: {h:?}");
        assert_eq!(
            sim.backend().dead_die_reads(),
            0,
            "evacuation finished before death, no read hit dead silicon"
        );
    }

    #[test]
    fn health_run_is_deterministic() {
        use crate::config::HealthConfig;
        let mut cfg = SimConfig::tiny();
        cfg.health = HealthConfig::on(3);
        cfg.health.window = 16;
        cfg.health.suspect_threshold = 0.02;
        cfg.health.evacuate = true;
        cfg.fault = zng_flash::FaultConfig::none().with_degrading(zng_flash::DegradingDie {
            channel: 0,
            die: 0,
            onset: 200_000,
            death: 14_000_000,
        });
        let mix = MultiApp::from_names(&["back"], &TraceParams::tiny()).unwrap();
        let a = Simulation::new(PlatformKind::ZngBase, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        let b = Simulation::new(PlatformKind::ZngBase, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.health, b.health);
    }

    #[test]
    fn health_off_is_byte_identical_to_default() {
        let mix = MultiApp::from_names(&["back"], &TraceParams::tiny()).unwrap();
        let plain = Simulation::new(PlatformKind::ZngBase, &SimConfig::tiny())
            .unwrap()
            .run(&mix)
            .unwrap();
        let mut off_cfg = SimConfig::tiny();
        off_cfg.health = crate::config::HealthConfig::off();
        let off = Simulation::new(PlatformKind::ZngBase, &off_cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        assert_eq!(
            plain.to_json_value().to_string(),
            off.to_json_value().to_string()
        );
    }

    #[test]
    fn rdopt_uses_prefetcher() {
        let cfg = SimConfig::tiny();
        let mut sim = Simulation::new(PlatformKind::ZngRdopt, &cfg).unwrap();
        let mix = MultiApp::from_names(
            &["betw"],
            &TraceParams {
                total_warps: 8,
                mem_ops_per_warp: 120,
                footprint_pages: 64,
                seed: 5,
            },
        )
        .unwrap();
        let r = sim.run(&mix).unwrap();
        assert!(
            r.predictor_accuracy > 0.0,
            "predictor must have made predictions: {r:?}"
        );
    }
}
