//! Saving and loading generated traces.
//!
//! Trace synthesis is deterministic per seed, but exporting the exact
//! warp traces lets an experiment be archived, diffed, or replayed by an
//! external tool. The format is a versioned JSON envelope around the
//! externally-tagged representation of [`WarpTrace`]:
//!
//! ```json
//! {"version":1,"workload":"betw","seed":42,"traces":[
//!   {"ops":[{"Compute":5},
//!           {"Mem":{"base":4096,"kind":"Read","pattern":"Sequential","pc":7}},
//!           {"Mem":{"base":8192,"kind":"Write","pattern":{"Strided":128},"pc":9}}]}
//! ]}
//! ```

use std::fs;
use std::io::{Read as _, Write as _};
use std::path::Path;

use zng_gpu::{AccessPattern, WarpOp, WarpTrace};
use zng_json::Value;
use zng_types::{ids::Pc, AccessKind, Error, Result, VirtAddr};

/// On-disk trace bundle: one application's warp traces plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBundle {
    /// Format version (bumped on breaking changes).
    pub version: u32,
    /// Workload name (Table II).
    pub workload: String,
    /// Seed the traces were generated from.
    pub seed: u64,
    /// One trace per warp.
    pub traces: Vec<WarpTrace>,
}

/// Current bundle format version.
pub const TRACE_FORMAT_VERSION: u32 = 1;

impl TraceBundle {
    /// Wraps freshly generated traces with provenance.
    pub fn new(workload: &str, seed: u64, traces: Vec<WarpTrace>) -> TraceBundle {
        TraceBundle {
            version: TRACE_FORMAT_VERSION,
            workload: workload.to_string(),
            seed,
            traces,
        }
    }

    /// Serialises the bundle as compact JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if serialisation fails (cannot
    /// happen for well-formed traces).
    pub fn to_json(&self) -> Result<String> {
        let traces = self
            .traces
            .iter()
            .map(|t| {
                Value::object(vec![(
                    "ops",
                    Value::Array(t.ops().iter().map(op_to_json).collect()),
                )])
            })
            .collect();
        let doc = Value::object(vec![
            ("version", Value::from(self.version)),
            ("workload", Value::from(self.workload.as_str())),
            ("seed", Value::from(self.seed)),
            ("traces", Value::Array(traces)),
        ]);
        Ok(doc.to_string_compact())
    }

    /// Parses a bundle from JSON, validating the format version.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on malformed JSON or an
    /// unsupported version.
    pub fn from_json(json: &str) -> Result<TraceBundle> {
        let doc =
            Value::parse(json).map_err(|e| Error::invalid_config("trace bundle", e.to_string()))?;
        let version = field_u64(&doc, "version")? as u32;
        if version != TRACE_FORMAT_VERSION {
            return Err(Error::invalid_config(
                "trace bundle",
                format!("unsupported format version {version} (expected {TRACE_FORMAT_VERSION})"),
            ));
        }
        let workload = doc["workload"]
            .as_str()
            .ok_or_else(|| bad("missing `workload`"))?
            .to_string();
        let seed = field_u64(&doc, "seed")?;
        let traces = doc["traces"]
            .as_array()
            .ok_or_else(|| bad("missing `traces`"))?
            .iter()
            .map(trace_from_json)
            .collect::<Result<Vec<WarpTrace>>>()?;
        Ok(TraceBundle {
            version,
            workload,
            seed,
            traces,
        })
    }

    /// Writes the bundle to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on I/O failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = self.to_json()?;
        let mut f = fs::File::create(path)
            .map_err(|e| Error::invalid_config("trace file", e.to_string()))?;
        f.write_all(json.as_bytes())
            .map_err(|e| Error::invalid_config("trace file", e.to_string()))
    }

    /// Loads a bundle from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on I/O or format failure.
    pub fn load(path: &Path) -> Result<TraceBundle> {
        let mut json = String::new();
        fs::File::open(path)
            .and_then(|mut f| f.read_to_string(&mut json))
            .map_err(|e| Error::invalid_config("trace file", e.to_string()))?;
        TraceBundle::from_json(&json)
    }

    /// Total memory operations across all warps.
    pub fn mem_ops(&self) -> usize {
        self.traces.iter().map(WarpTrace::mem_ops).sum()
    }
}

fn op_to_json(op: &WarpOp) -> Value {
    match *op {
        WarpOp::Compute(n) => Value::object(vec![("Compute", Value::from(n))]),
        WarpOp::Mem {
            base,
            kind,
            pattern,
            pc,
        } => {
            let kind = match kind {
                AccessKind::Read => "Read",
                AccessKind::Write => "Write",
            };
            let pattern = match pattern {
                AccessPattern::Sequential => Value::from("Sequential"),
                AccessPattern::Strided(s) => Value::object(vec![("Strided", Value::from(s))]),
                AccessPattern::Scatter(n) => Value::object(vec![("Scatter", Value::from(n))]),
            };
            Value::object(vec![(
                "Mem",
                Value::object(vec![
                    ("base", Value::from(base.raw())),
                    ("kind", Value::from(kind)),
                    ("pattern", pattern),
                    ("pc", Value::from(pc.raw())),
                ]),
            )])
        }
    }
}

fn bad(why: impl Into<String>) -> Error {
    Error::invalid_config("trace bundle", why)
}

fn field_u64(v: &Value, key: &str) -> Result<u64> {
    v[key]
        .as_u64()
        .ok_or_else(|| bad(format!("missing or non-integer `{key}`")))
}

fn trace_from_json(v: &Value) -> Result<WarpTrace> {
    let ops = v["ops"]
        .as_array()
        .ok_or_else(|| bad("trace without `ops`"))?
        .iter()
        .map(op_from_json)
        .collect::<Result<Vec<WarpOp>>>()?;
    Ok(WarpTrace::new(ops))
}

fn op_from_json(v: &Value) -> Result<WarpOp> {
    if let Some(n) = v["Compute"].as_u64() {
        return Ok(WarpOp::Compute(n as u32));
    }
    let mem = &v["Mem"];
    if mem.as_object().is_some() {
        let kind = match mem["kind"].as_str() {
            Some("Read") => AccessKind::Read,
            Some("Write") => AccessKind::Write,
            other => return Err(bad(format!("unknown access kind {other:?}"))),
        };
        let pattern = pattern_from_json(&mem["pattern"])?;
        return Ok(WarpOp::Mem {
            base: VirtAddr(field_u64(mem, "base")?),
            kind,
            pattern,
            pc: Pc(field_u64(mem, "pc")?),
        });
    }
    Err(bad("op is neither `Compute` nor `Mem`"))
}

fn pattern_from_json(v: &Value) -> Result<AccessPattern> {
    if v.as_str() == Some("Sequential") {
        return Ok(AccessPattern::Sequential);
    }
    if let Some(s) = v["Strided"].as_u64() {
        return Ok(AccessPattern::Strided(s as u32));
    }
    if let Some(n) = v["Scatter"].as_u64() {
        return Ok(AccessPattern::Scatter(n as u8));
    }
    Err(bad("unknown access pattern"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, TraceParams};
    use crate::table2::by_name;
    use zng_types::ids::AppId;

    fn bundle() -> TraceBundle {
        let spec = by_name("betw").unwrap();
        let params = TraceParams::tiny();
        TraceBundle::new("betw", params.seed, generate(&spec, AppId(0), &params))
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let b = bundle();
        let json = b.to_json().unwrap();
        let back = TraceBundle::from_json(&json).unwrap();
        assert_eq!(b, back);
        assert_eq!(back.workload, "betw");
        assert!(back.mem_ops() > 0);
    }

    #[test]
    fn file_roundtrip() {
        let b = bundle();
        let dir = std::env::temp_dir();
        let path = dir.join("zng_trace_test.json");
        b.save(&path).unwrap();
        let back = TraceBundle::load(&path).unwrap();
        assert_eq!(b, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_mismatch_rejected() {
        let b = bundle();
        let json = b
            .to_json()
            .unwrap()
            .replace("\"version\":1", "\"version\":99");
        assert!(TraceBundle::from_json(&json).is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(TraceBundle::from_json("{not json").is_err());
        assert!(TraceBundle::from_json("{\"version\":1}").is_err());
        assert!(TraceBundle::load(Path::new("/nonexistent/zng")).is_err());
    }
}
