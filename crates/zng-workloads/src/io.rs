//! Saving and loading generated traces.
//!
//! Trace synthesis is deterministic per seed, but exporting the exact
//! warp traces lets an experiment be archived, diffed, or replayed by an
//! external tool. The format is a versioned JSON envelope around the
//! serde representation of [`WarpTrace`].

use std::fs;
use std::io::{Read as _, Write as _};
use std::path::Path;

use serde::{Deserialize, Serialize};
use zng_gpu::WarpTrace;
use zng_types::{Error, Result};

/// On-disk trace bundle: one application's warp traces plus provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceBundle {
    /// Format version (bumped on breaking changes).
    pub version: u32,
    /// Workload name (Table II).
    pub workload: String,
    /// Seed the traces were generated from.
    pub seed: u64,
    /// One trace per warp.
    pub traces: Vec<WarpTrace>,
}

/// Current bundle format version.
pub const TRACE_FORMAT_VERSION: u32 = 1;

impl TraceBundle {
    /// Wraps freshly generated traces with provenance.
    pub fn new(workload: &str, seed: u64, traces: Vec<WarpTrace>) -> TraceBundle {
        TraceBundle {
            version: TRACE_FORMAT_VERSION,
            workload: workload.to_string(),
            seed,
            traces,
        }
    }

    /// Serialises the bundle as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if serialisation fails (cannot
    /// happen for well-formed traces).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| Error::invalid_config("trace bundle", e.to_string()))
    }

    /// Parses a bundle from JSON, validating the format version.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on malformed JSON or an
    /// unsupported version.
    pub fn from_json(json: &str) -> Result<TraceBundle> {
        let bundle: TraceBundle = serde_json::from_str(json)
            .map_err(|e| Error::invalid_config("trace bundle", e.to_string()))?;
        if bundle.version != TRACE_FORMAT_VERSION {
            return Err(Error::invalid_config(
                "trace bundle",
                format!(
                    "unsupported format version {} (expected {TRACE_FORMAT_VERSION})",
                    bundle.version
                ),
            ));
        }
        Ok(bundle)
    }

    /// Writes the bundle to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on I/O failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = self.to_json()?;
        let mut f = fs::File::create(path)
            .map_err(|e| Error::invalid_config("trace file", e.to_string()))?;
        f.write_all(json.as_bytes())
            .map_err(|e| Error::invalid_config("trace file", e.to_string()))
    }

    /// Loads a bundle from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on I/O or format failure.
    pub fn load(path: &Path) -> Result<TraceBundle> {
        let mut json = String::new();
        fs::File::open(path)
            .and_then(|mut f| f.read_to_string(&mut json))
            .map_err(|e| Error::invalid_config("trace file", e.to_string()))?;
        TraceBundle::from_json(&json)
    }

    /// Total memory operations across all warps.
    pub fn mem_ops(&self) -> usize {
        self.traces.iter().map(WarpTrace::mem_ops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, TraceParams};
    use crate::table2::by_name;
    use zng_types::ids::AppId;

    fn bundle() -> TraceBundle {
        let spec = by_name("betw").unwrap();
        let params = TraceParams::tiny();
        TraceBundle::new("betw", params.seed, generate(&spec, AppId(0), &params))
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let b = bundle();
        let json = b.to_json().unwrap();
        let back = TraceBundle::from_json(&json).unwrap();
        assert_eq!(b, back);
        assert_eq!(back.workload, "betw");
        assert!(back.mem_ops() > 0);
    }

    #[test]
    fn file_roundtrip() {
        let b = bundle();
        let dir = std::env::temp_dir();
        let path = dir.join("zng_trace_test.json");
        b.save(&path).unwrap();
        let back = TraceBundle::load(&path).unwrap();
        assert_eq!(b, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_mismatch_rejected() {
        let b = bundle();
        let json = b.to_json().unwrap().replace("\"version\":1", "\"version\":99");
        assert!(TraceBundle::from_json(&json).is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(TraceBundle::from_json("{not json").is_err());
        assert!(TraceBundle::load(Path::new("/nonexistent/zng")).is_err());
    }
}
