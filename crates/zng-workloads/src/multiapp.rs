//! Multi-application workload mixes (paper §V-A).
//!
//! The paper stresses the memory subsystem by co-running a read-intensive
//! graph workload with a write-intensive scientific workload. The
//! standard eight mixes here follow that recipe; `betw-back` is the pair
//! the paper singles out for the GC study (Fig. 17) and the scalability
//! sweep (Fig. 15a).

use zng_gpu::WarpTrace;
use zng_types::ids::AppId;
use zng_types::Result;

use crate::generator::{generate, TraceParams};
use crate::table2::{by_name, WorkloadSpec};

/// A co-running application set.
#[derive(Debug, Clone)]
pub struct MultiApp {
    /// Mix name, e.g. `"betw-back"`.
    pub name: String,
    /// Per-app spec and traces, in app-id order.
    pub apps: Vec<(WorkloadSpec, AppId, Vec<WarpTrace>)>,
}

impl MultiApp {
    /// Builds a mix from workload names (app ids assigned in order).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown workload names.
    pub fn from_names(names: &[&str], params: &TraceParams) -> Result<MultiApp> {
        let mut apps = Vec::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            let spec = by_name(name)?;
            let app = AppId(i as u16);
            let traces = generate(&spec, app, params);
            apps.push((spec, app, traces));
        }
        Ok(MultiApp {
            name: names.join("-"),
            apps,
        })
    }

    /// Total warps across all apps.
    pub fn total_warps(&self) -> usize {
        self.apps.iter().map(|(_, _, t)| t.len()).sum()
    }
}

/// The eight standard read×write mixes used by Figs. 10–14.
pub fn standard_mix_names() -> [[&'static str; 2]; 8] {
    [
        ["betw", "back"],
        ["bfs1", "gaus"],
        ["bfs2", "gaus"],
        ["bfs3", "FDT"],
        ["bfs6", "gaus"],
        ["gc1", "gram"],
        ["pr", "back"],
        ["sssp3", "FDT"],
    ]
}

/// Builds all standard mixes under `params`.
///
/// # Errors
///
/// Propagates unknown-workload errors (impossible for the built-in set).
pub fn mixes(params: &TraceParams) -> Result<Vec<MultiApp>> {
    standard_mix_names()
        .iter()
        .map(|pair| MultiApp::from_names(pair, params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_mixes_build() {
        let all = mixes(&TraceParams::tiny()).unwrap();
        assert_eq!(all.len(), 8);
        for m in &all {
            assert_eq!(m.apps.len(), 2);
            assert_eq!(m.total_warps(), 2 * TraceParams::tiny().total_warps);
            // Read-intensive first, write-intensive second.
            assert!(m.apps[0].0.read_ratio > 0.8, "{}", m.name);
            assert!(m.apps[1].0.is_write_intensive(), "{}", m.name);
        }
    }

    #[test]
    fn mix_names_join_with_dash() {
        let m = MultiApp::from_names(&["betw", "back"], &TraceParams::tiny()).unwrap();
        assert_eq!(m.name, "betw-back");
        assert_eq!(m.apps[0].1, AppId(0));
        assert_eq!(m.apps[1].1, AppId(1));
    }

    #[test]
    fn unknown_workload_propagates() {
        assert!(MultiApp::from_names(&["betw", "bogus"], &TraceParams::tiny()).is_err());
    }

    #[test]
    fn n_way_corun_supported() {
        // The Fig. 15a scalability sweep co-runs up to 8 instances.
        let names = ["betw"; 8];
        let m = MultiApp::from_names(&names, &TraceParams::tiny()).unwrap();
        assert_eq!(m.apps.len(), 8);
        // Distinct app ids -> distinct address windows.
        let ids: std::collections::HashSet<u16> = m.apps.iter().map(|(_, a, _)| a.raw()).collect();
        assert_eq!(ids.len(), 8);
    }
}
