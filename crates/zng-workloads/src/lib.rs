//! Workload specifications and synthetic trace generation.
//!
//! The paper evaluates 16 GPU applications (Table II) from GraphBIG,
//! Rodinia and PolyBench, characterised in Fig. 5: graph-analysis
//! footprints re-read each flash page ~42× and write-intensive kernels
//! re-write pages ~65×. We cannot replay the authors' binaries, so
//! [`generate`] synthesises per-warp traces whose *statistics* (read
//! ratio, page reuse, spatial locality, write redundancy) match that
//! characterisation — see `DESIGN.md` §2 for the substitution argument.

pub mod generator;
pub mod io;
pub mod multiapp;
pub mod stats;
pub mod table2;

pub use generator::{generate, TraceParams};
pub use io::{TraceBundle, TRACE_FORMAT_VERSION};
pub use multiapp::{mixes, standard_mix_names, MultiApp};
pub use stats::{trace_stats, TraceStats};
pub use table2::{by_name, table2, Class, Suite, WorkloadSpec};
