//! Trace statistics: the request-level characterisation of Fig. 5b/5c.

use fxhash::FxHashMap;

use zng_gpu::{WarpOp, WarpTrace};

/// Aggregate request-level statistics of a trace set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Coalesced 128 B read requests.
    pub read_requests: u64,
    /// Coalesced 128 B write requests.
    pub write_requests: u64,
    /// Distinct 4 KB pages read.
    pub pages_read: u64,
    /// Distinct 4 KB pages written.
    pub pages_written: u64,
    /// Mean read requests per distinct read page (Fig. 5b's re-access).
    pub mean_reads_per_page: f64,
    /// Mean write requests per distinct written page (Fig. 5c's
    /// redundancy).
    pub mean_writes_per_page: f64,
    /// Reads / (reads + writes).
    pub read_ratio: f64,
}

/// Computes [`TraceStats`] by expanding every memory op through the
/// coalescer.
///
/// # Examples
///
/// ```
/// use zng_workloads::{by_name, generate, trace_stats, TraceParams};
/// use zng_types::ids::AppId;
///
/// let spec = by_name("betw")?;
/// let traces = generate(&spec, AppId(0), &TraceParams::tiny());
/// let stats = trace_stats(&traces);
/// assert!(stats.read_ratio > 0.9);
/// # Ok::<(), zng_types::Error>(())
/// ```
pub fn trace_stats(traces: &[WarpTrace]) -> TraceStats {
    let mut reads_per_page: FxHashMap<u64, u64> = FxHashMap::default();
    let mut writes_per_page: FxHashMap<u64, u64> = FxHashMap::default();
    let (mut reads, mut writes) = (0u64, 0u64);
    for trace in traces {
        for op in trace.ops() {
            if let WarpOp::Mem {
                base,
                kind,
                pattern,
                ..
            } = op
            {
                for sector in pattern.sectors(base.raw()) {
                    let page = sector / 4096;
                    if kind.is_read() {
                        reads += 1;
                        *reads_per_page.entry(page).or_insert(0) += 1;
                    } else {
                        writes += 1;
                        *writes_per_page.entry(page).or_insert(0) += 1;
                    }
                }
            }
        }
    }
    let mean = |m: &FxHashMap<u64, u64>| {
        if m.is_empty() {
            0.0
        } else {
            m.values().sum::<u64>() as f64 / m.len() as f64
        }
    };
    TraceStats {
        read_requests: reads,
        write_requests: writes,
        pages_read: reads_per_page.len() as u64,
        pages_written: writes_per_page.len() as u64,
        mean_reads_per_page: mean(&reads_per_page),
        mean_writes_per_page: mean(&writes_per_page),
        read_ratio: if reads + writes == 0 {
            0.0
        } else {
            reads as f64 / (reads + writes) as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, TraceParams};
    use crate::table2::by_name;
    use zng_types::ids::AppId;

    #[test]
    fn empty_traces_are_zero() {
        let s = trace_stats(&[]);
        assert_eq!(s.read_requests, 0);
        assert_eq!(s.mean_reads_per_page, 0.0);
        assert_eq!(s.read_ratio, 0.0);
    }

    #[test]
    fn graph_traces_have_substantial_page_reuse() {
        // The paper's Fig. 5b: each page read tens of times on average.
        let spec = by_name("betw").unwrap();
        let traces = generate(&spec, AppId(0), &TraceParams::default());
        let s = trace_stats(&traces);
        assert!(
            s.mean_reads_per_page > 15.0,
            "reuse {}",
            s.mean_reads_per_page
        );
    }

    #[test]
    fn write_heavy_traces_have_write_redundancy() {
        // Fig. 5c: write-intensive kernels rewrite pages heavily.
        let spec = by_name("back").unwrap();
        let traces = generate(&spec, AppId(0), &TraceParams::default());
        let s = trace_stats(&traces);
        assert!(
            s.mean_writes_per_page > 20.0,
            "redundancy {}",
            s.mean_writes_per_page
        );
        assert!(s.read_ratio < 0.7);
    }

    #[test]
    fn stats_are_consistent() {
        let spec = by_name("gaus").unwrap();
        let traces = generate(&spec, AppId(0), &TraceParams::tiny());
        let s = trace_stats(&traces);
        assert!(s.pages_read <= s.read_requests);
        assert!(s.pages_written <= s.write_requests);
        let implied = s.mean_reads_per_page * s.pages_read as f64;
        assert!((implied - s.read_requests as f64).abs() < 1.0);
    }
}
