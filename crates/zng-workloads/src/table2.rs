//! The paper's Table II: 16 GPU benchmarks with read ratios and kernel
//! counts.

use zng_types::{Error, Result};

/// Source benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// GraphBIG graph analysis.
    GraphBig,
    /// Rodinia heterogeneous-computing suite.
    Rodinia,
    /// PolyBench polyhedral kernels.
    Polybench,
}

/// Access-pattern family, which drives trace synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Irregular, pointer-chasing graph traversal (Zipf-reused pages).
    Graph,
    /// Regular, strided scientific sweeps with write-heavy phases.
    Scientific,
}

/// One Table II row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name as the paper prints it.
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Fraction of memory operations that are reads.
    pub read_ratio: f64,
    /// Number of GPU kernels the application launches.
    pub kernels: u32,
    /// Pattern family for synthesis.
    pub class: Class,
}

impl WorkloadSpec {
    /// Whether the paper treats this workload as write-intensive
    /// (read ratio below 0.8 — `back`, `gaus`, `FDT`, `gram`).
    pub fn is_write_intensive(&self) -> bool {
        self.read_ratio < 0.8
    }
}

/// All 16 Table II workloads, in the paper's order.
pub fn table2() -> &'static [WorkloadSpec] {
    use Class::*;
    use Suite::*;
    const T: &[WorkloadSpec] = &[
        WorkloadSpec {
            name: "betw",
            suite: GraphBig,
            read_ratio: 0.98,
            kernels: 11,
            class: Graph,
        },
        WorkloadSpec {
            name: "bfs1",
            suite: GraphBig,
            read_ratio: 0.95,
            kernels: 7,
            class: Graph,
        },
        WorkloadSpec {
            name: "bfs2",
            suite: GraphBig,
            read_ratio: 0.99,
            kernels: 9,
            class: Graph,
        },
        WorkloadSpec {
            name: "bfs3",
            suite: GraphBig,
            read_ratio: 0.88,
            kernels: 10,
            class: Graph,
        },
        WorkloadSpec {
            name: "bfs4",
            suite: GraphBig,
            read_ratio: 0.97,
            kernels: 12,
            class: Graph,
        },
        WorkloadSpec {
            name: "bfs5",
            suite: GraphBig,
            read_ratio: 0.99,
            kernels: 6,
            class: Graph,
        },
        WorkloadSpec {
            name: "bfs6",
            suite: GraphBig,
            read_ratio: 0.97,
            kernels: 7,
            class: Graph,
        },
        WorkloadSpec {
            name: "gc1",
            suite: GraphBig,
            read_ratio: 0.98,
            kernels: 8,
            class: Graph,
        },
        WorkloadSpec {
            name: "gc2",
            suite: GraphBig,
            read_ratio: 0.99,
            kernels: 10,
            class: Graph,
        },
        WorkloadSpec {
            name: "sssp3",
            suite: GraphBig,
            read_ratio: 0.98,
            kernels: 8,
            class: Graph,
        },
        WorkloadSpec {
            name: "deg",
            suite: GraphBig,
            read_ratio: 1.0,
            kernels: 1,
            class: Graph,
        },
        WorkloadSpec {
            name: "pr",
            suite: GraphBig,
            read_ratio: 0.99,
            kernels: 53,
            class: Graph,
        },
        WorkloadSpec {
            name: "back",
            suite: Rodinia,
            read_ratio: 0.57,
            kernels: 1,
            class: Scientific,
        },
        WorkloadSpec {
            name: "gaus",
            suite: Rodinia,
            read_ratio: 0.66,
            kernels: 3,
            class: Scientific,
        },
        WorkloadSpec {
            name: "FDT",
            suite: Polybench,
            read_ratio: 0.73,
            kernels: 1,
            class: Scientific,
        },
        WorkloadSpec {
            name: "gram",
            suite: Polybench,
            read_ratio: 0.75,
            kernels: 3,
            class: Scientific,
        },
    ];
    T
}

/// Looks up a workload by its paper name.
///
/// # Errors
///
/// Returns [`Error::UnknownWorkload`] for an unrecognised name.
///
/// # Examples
///
/// ```
/// let betw = zng_workloads::by_name("betw")?;
/// assert_eq!(betw.kernels, 11);
/// # Ok::<(), zng_types::Error>(())
/// ```
pub fn by_name(name: &str) -> Result<WorkloadSpec> {
    table2()
        .iter()
        .find(|w| w.name == name)
        .copied()
        .ok_or_else(|| Error::UnknownWorkload(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_workloads() {
        assert_eq!(table2().len(), 16);
    }

    #[test]
    fn read_ratios_match_paper() {
        assert!((by_name("betw").unwrap().read_ratio - 0.98).abs() < 1e-9);
        assert!((by_name("back").unwrap().read_ratio - 0.57).abs() < 1e-9);
        assert!((by_name("deg").unwrap().read_ratio - 1.0).abs() < 1e-9);
        assert_eq!(by_name("pr").unwrap().kernels, 53);
    }

    #[test]
    fn write_intensive_set_is_the_scientific_four() {
        let wi: Vec<&str> = table2()
            .iter()
            .filter(|w| w.is_write_intensive())
            .map(|w| w.name)
            .collect();
        assert_eq!(wi, vec!["back", "gaus", "FDT", "gram"]);
    }

    #[test]
    fn graph_class_is_graphbig() {
        for w in table2() {
            match w.suite {
                Suite::GraphBig => assert_eq!(w.class, Class::Graph),
                _ => assert_eq!(w.class, Class::Scientific),
            }
        }
    }

    #[test]
    fn unknown_name_errors() {
        assert!(by_name("nope").is_err());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = table2().iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }
}
