//! Synthetic trace generation parameterised by Table II.
//!
//! Each workload class maps to a generator:
//!
//! * **Graph** (GraphBIG) — per-warp sequential CSR-style scans (strong
//!   spatial locality the prefetcher can exploit) mixed with Zipf-reused
//!   scatter lookups (the page re-access of Fig. 5b), plus rare writes to
//!   a hot property region.
//! * **Scientific** (Rodinia/PolyBench) — strided array sweeps whose
//!   write phase repeatedly rewrites a small output region across kernel
//!   iterations (the write redundancy of Fig. 5c).
//!
//! All randomness comes from the per-run seed; the same
//! `(spec, app, params)` triple always yields the same traces.

use rand::Rng;
use zng_gpu::{AccessPattern, WarpOp, WarpTrace};
use zng_sim::rng::{derive_seed, seeded, Zipf};
use zng_types::{
    ids::{AppId, Pc},
    AccessKind, VirtAddr,
};

use crate::table2::{Class, WorkloadSpec};

/// Trace-synthesis knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceParams {
    /// Warps generated for the application (spread over SMs by the
    /// platform).
    pub total_warps: usize,
    /// Memory operations per warp.
    pub mem_ops_per_warp: usize,
    /// Footprint in 4 KB pages.
    pub footprint_pages: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for TraceParams {
    fn default() -> TraceParams {
        TraceParams {
            total_warps: 256,
            mem_ops_per_warp: 1300,
            footprint_pages: 4096,
            seed: 42,
        }
    }
}

impl TraceParams {
    /// A lighter configuration for unit tests.
    pub fn tiny() -> TraceParams {
        TraceParams {
            total_warps: 8,
            mem_ops_per_warp: 24,
            footprint_pages: 64,
            seed: 7,
        }
    }
}

/// Address-space base for an application (disjoint 16 GB windows).
pub fn app_base(app: AppId) -> u64 {
    (app.index() as u64) << 34
}

/// Generates one trace per warp for `spec` under `params`.
///
/// # Panics
///
/// Panics if `params` has zero warps, ops or footprint.
pub fn generate(spec: &WorkloadSpec, app: AppId, params: &TraceParams) -> Vec<WarpTrace> {
    assert!(
        params.total_warps > 0 && params.mem_ops_per_warp > 0 && params.footprint_pages > 0,
        "trace parameters must be non-zero"
    );
    // The Zipf CDF tables depend only on the footprint, not the warp:
    // build them once here instead of once per warp (their construction
    // is O(footprint) with a `powf` per entry, which dominated trace
    // generation at large warp counts).
    let zipfs = match spec.class {
        Class::Graph => Some(GraphZipfs::new(params)),
        Class::Scientific => None,
    };
    (0..params.total_warps)
        .map(|w| {
            let seed = derive_seed(params.seed, (app.index() as u64) << 32 | w as u64);
            match spec.class {
                Class::Graph => graph_warp(spec, app, w, params, seed, zipfs.as_ref().unwrap()),
                Class::Scientific => scientific_warp(spec, app, w, params, seed),
            }
        })
        .collect()
}

/// Warp-independent Zipf samplers for the graph generator.
struct GraphZipfs {
    scatter: Zipf,
    write: Zipf,
}

impl GraphZipfs {
    fn new(params: &TraceParams) -> GraphZipfs {
        let fp = params.footprint_pages as u64;
        let write_pages = (fp / 16).max(1);
        GraphZipfs {
            scatter: Zipf::new(fp as usize, 0.85),
            write: Zipf::new(write_pages as usize, 1.1),
        }
    }
}

/// PCs are small and shared across warps so the PC-indexed predictor can
/// learn per-instruction behaviour; one PC group per kernel.
fn pcs_for_kernel(kernel: u32) -> (Pc, Pc, Pc) {
    let base = 0x1000 + (kernel as u64 % 8) * 0x40;
    (Pc(base), Pc(base + 8), Pc(base + 16))
}

/// Table II's read ratio is a fraction of coalesced *requests*. A read op
/// expands to `sectors_per_read` requests on average while a write op is
/// one request, so the op-level read probability must be deflated:
/// solving `r = p*E / (p*E + (1-p))` for `p`.
fn op_read_probability(request_read_ratio: f64, sectors_per_read: f64) -> f64 {
    let r = request_read_ratio.clamp(0.0, 1.0);
    if r >= 1.0 {
        return 1.0;
    }
    (r / (sectors_per_read * (1.0 - r) + r)).clamp(0.0, 1.0)
}

fn graph_warp(
    spec: &WorkloadSpec,
    app: AppId,
    warp: usize,
    params: &TraceParams,
    seed: u64,
    zipfs: &GraphZipfs,
) -> WarpTrace {
    let mut rng = seeded(seed);
    let base = app_base(app);
    let fp = params.footprint_pages as u64;
    // First half: CSR/frontier arrays (scanned); whole range: vertex data
    // (scattered); property writes go to pages *spread across the whole
    // footprint* (property arrays interleave with graph structure), so
    // writes touch many data-block groups.
    let scan_pages = (fp / 2).max(1);
    // Graph property updates concentrate on a small hot set (active
    // frontier): the flash registers absorb it almost entirely, so a
    // read-intensive graph app causes no GC — as in the paper.
    let write_pages = (fp / 16).max(1);
    let write_stride = (fp / write_pages).max(1);
    let scatter_zipf = &zipfs.scatter;
    let write_zipf = &zipfs.write;
    // Reads average 0.8*1 + 0.2*2 = 1.2 sectors per op.
    let p_read = op_read_probability(spec.read_ratio, 1.2);

    // Each warp scans its own slice of the CSR region.
    let mut cursor = base + (warp as u64 * scan_pages / params.total_warps as u64) * 4096;
    let mut ops = Vec::with_capacity(params.mem_ops_per_warp * 2);
    // Real kernels run long enough for the PC-indexed predictor to warm;
    // keep at least 64 ops per kernel's PC group so short synthetic
    // traces do the same.
    let ops_per_kernel = (params.mem_ops_per_warp as u32 / spec.kernels.max(1)).max(64);

    for i in 0..params.mem_ops_per_warp {
        let kernel = i as u32 / ops_per_kernel;
        let (pc_seq, pc_scatter, pc_write) = pcs_for_kernel(kernel);
        ops.push(WarpOp::Compute(rng.gen_range(4..16)));
        let is_read = rng.gen_bool(p_read);
        if is_read {
            if rng.gen_bool(0.8) {
                // Sequential scan: next 128 B sector of the warp's slice.
                ops.push(WarpOp::Mem {
                    base: VirtAddr(cursor),
                    kind: AccessKind::Read,
                    pattern: AccessPattern::Sequential,
                    pc: pc_seq,
                });
                cursor += 128;
                // Wrap within the scan region.
                if cursor >= base + scan_pages * 4096 {
                    cursor = base;
                }
            } else {
                // Irregular neighbour lookup: Zipf-hot page. Vertex data
                // reuses a few hot *sectors* of each page (a vertex's
                // record), which is what gives graph workloads the page
                // re-access of Fig. 5b. The rank→page permutation keeps
                // hot vertices scattered over the address space (and thus
                // over flash planes), as in a real graph layout.
                let page = (scatter_zipf.sample(&mut rng) as u64 * 769) % fp;
                let sector = (page * 7 + rng.gen_range(0..2u64)) % 32;
                ops.push(WarpOp::Mem {
                    base: VirtAddr(base + page * 4096 + sector * 128),
                    kind: AccessKind::Read,
                    pattern: AccessPattern::Scatter(2),
                    pc: pc_scatter,
                });
            }
        } else {
            // Property update: hot pages strided across the footprint.
            // A fixed sector per page lets repeat updates merge in the
            // same flash register.
            let slot = write_zipf.sample(&mut rng) as u64;
            let page = (slot * write_stride).min(fp - 1);
            let sector = (page * 5) % 32;
            ops.push(WarpOp::Mem {
                base: VirtAddr(base + page * 4096 + sector * 128),
                kind: AccessKind::Write,
                pattern: AccessPattern::Sequential,
                pc: pc_write,
            });
        }
    }
    WarpTrace::new(ops)
}

fn scientific_warp(
    spec: &WorkloadSpec,
    app: AppId,
    warp: usize,
    params: &TraceParams,
    seed: u64,
) -> WarpTrace {
    let mut rng = seeded(seed);
    let base = app_base(app);
    let fp = params.footprint_pages as u64;
    // Output arrays are a small fraction of the footprint (weight deltas,
    // pivot rows): a hot region the flash registers can mostly hold.
    let input_pages = (fp * 7 / 8).max(1);
    let output_pages = (fp - input_pages).max(1);

    // Warp sweeps its slice of the input; output is shared and rewritten
    // every kernel iteration (write redundancy).
    let slice = (input_pages / params.total_warps as u64).max(1);
    let in_base = base + (warp as u64 % params.total_warps as u64) * slice * 4096;
    let out_base = base + input_pages * 4096;
    let mut in_cursor = in_base;
    // Spread warp cursors evenly over the output region so the write
    // working set covers the whole region (and many log groups).
    let mut out_cursor = out_base + (warp as u64 * output_pages / params.total_warps as u64) * 4096;
    let mut ops = Vec::with_capacity(params.mem_ops_per_warp * 2);
    let ops_per_kernel = (params.mem_ops_per_warp as u32 / spec.kernels.max(1)).max(64);
    // Reads average 0.95*1 + 0.05*32 = 2.55 sectors per op.
    let p_read = op_read_probability(spec.read_ratio, 2.55);

    for i in 0..params.mem_ops_per_warp {
        let kernel = i as u32 / ops_per_kernel;
        let (pc_row, pc_col, pc_write) = pcs_for_kernel(kernel);
        ops.push(WarpOp::Compute(rng.gen_range(8..24)));
        let is_read = rng.gen_bool(p_read);
        if is_read {
            if rng.gen_bool(0.95) {
                // Row-major unit-stride sweep.
                ops.push(WarpOp::Mem {
                    base: VirtAddr(in_cursor),
                    kind: AccessKind::Read,
                    pattern: AccessPattern::Sequential,
                    pc: pc_row,
                });
                in_cursor += 128;
                if in_cursor >= in_base + slice * 4096 {
                    in_cursor = in_base;
                }
            } else {
                // Column access: 128 B-strided threads (32 sectors).
                ops.push(WarpOp::Mem {
                    base: VirtAddr(in_cursor),
                    kind: AccessKind::Read,
                    pattern: AccessPattern::Strided(128),
                    pc: pc_col,
                });
            }
        } else {
            // Output rewrite: the cursor wraps the small output region,
            // revisiting pages across kernel iterations.
            ops.push(WarpOp::Mem {
                base: VirtAddr(out_cursor),
                kind: AccessKind::Write,
                pattern: AccessPattern::Sequential,
                pc: pc_write,
            });
            out_cursor += 128;
            if out_cursor >= out_base + output_pages * 4096 {
                out_cursor = out_base;
            }
        }
    }
    WarpTrace::new(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2::by_name;

    #[test]
    fn deterministic_generation() {
        let spec = by_name("betw").unwrap();
        let p = TraceParams::tiny();
        let a = generate(&spec, AppId(0), &p);
        let b = generate(&spec, AppId(0), &p);
        assert_eq!(a, b);
    }

    #[test]
    fn warp_count_honoured() {
        let spec = by_name("bfs1").unwrap();
        let p = TraceParams::tiny();
        assert_eq!(generate(&spec, AppId(0), &p).len(), p.total_warps);
    }

    #[test]
    fn request_level_read_ratio_approximates_table2() {
        for name in ["betw", "back", "deg", "gaus"] {
            let spec = by_name(name).unwrap();
            let p = TraceParams {
                total_warps: 16,
                mem_ops_per_warp: 400,
                footprint_pages: 128,
                seed: 3,
            };
            let traces = generate(&spec, AppId(0), &p);
            let (mut r, mut t) = (0usize, 0usize);
            for trace in &traces {
                for op in trace.ops() {
                    if let WarpOp::Mem {
                        base,
                        kind,
                        pattern,
                        ..
                    } = op
                    {
                        let n = pattern.sectors(base.raw()).len();
                        t += n;
                        if kind.is_read() {
                            r += n;
                        }
                    }
                }
            }
            let ratio = r as f64 / t as f64;
            assert!(
                (ratio - spec.read_ratio).abs() < 0.07,
                "{name}: got {ratio}, want {}",
                spec.read_ratio
            );
        }
    }

    #[test]
    fn apps_have_disjoint_address_windows() {
        let spec = by_name("betw").unwrap();
        let p = TraceParams::tiny();
        let a0 = generate(&spec, AppId(0), &p);
        let a1 = generate(&spec, AppId(1), &p);
        let max0 = max_addr(&a0);
        let min1 = min_addr(&a1);
        assert!(max0 < min1, "app windows overlap: {max0:#x} vs {min1:#x}");
    }

    fn addrs(traces: &[WarpTrace]) -> impl Iterator<Item = u64> + '_ {
        traces
            .iter()
            .flat_map(|t| {
                t.ops().iter().filter_map(|op| match op {
                    WarpOp::Mem { base, pattern, .. } => {
                        Some(pattern.sectors(base.raw()).into_iter())
                    }
                    _ => None,
                })
            })
            .flatten()
    }

    fn max_addr(traces: &[WarpTrace]) -> u64 {
        addrs(traces).max().unwrap()
    }

    fn min_addr(traces: &[WarpTrace]) -> u64 {
        addrs(traces).min().unwrap()
    }

    #[test]
    fn footprint_is_bounded() {
        let spec = by_name("gc1").unwrap();
        let p = TraceParams::tiny();
        let traces = generate(&spec, AppId(0), &p);
        // Scatter can reach slightly past the last footprint page
        // (page-crossing spread); allow that headroom.
        let bound = (p.footprint_pages as u64 + 40) * 4096;
        assert!(max_addr(&traces) < bound);
    }

    #[test]
    fn deg_is_read_only() {
        let spec = by_name("deg").unwrap();
        let traces = generate(&spec, AppId(0), &TraceParams::tiny());
        for t in &traces {
            assert!((t.read_ratio() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_params_rejected() {
        let spec = by_name("betw").unwrap();
        let mut p = TraceParams::tiny();
        p.total_warps = 0;
        let _ = generate(&spec, AppId(0), &p);
    }
}
