//! Flash-block state machine: erase-before-write and in-order programming.

use zng_types::{Error, Result};

/// What a block is currently used for.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// Erased and unused.
    #[default]
    Free,
    /// A physical data block (read-only sequential pages, DBMT-mapped).
    Data,
    /// A physical log block (over-provisioned, LPMT-remapped writes).
    Log,
}

/// One flash block: a fixed number of pages that must be programmed
/// strictly in order and can only be reused after a whole-block erase
/// (paper §II-B).
///
/// # Examples
///
/// ```
/// use zng_flash::{Block, BlockKind};
///
/// let mut b = Block::new(4);
/// b.set_kind(BlockKind::Data);
/// assert_eq!(b.program_next()?, 0);
/// assert_eq!(b.program_next()?, 1);
/// b.invalidate(0);
/// assert_eq!(b.valid_pages(), 1);
/// b.invalidate(1);
/// b.erase()?;
/// assert_eq!(b.kind(), BlockKind::Free);
/// # Ok::<(), zng_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    pages: u32,
    kind: BlockKind,
    /// In-order program pointer: next free page index.
    next_page: u32,
    /// Validity bitmap, one bit per page.
    valid: Vec<u64>,
    valid_count: u32,
    erase_count: u32,
    /// Set when a program or erase on this block failed verification:
    /// the block must be retired once its live data has been migrated.
    failed: bool,
    /// Verification metadata: the `(key, sequence)` of the last
    /// successful program of each page. Not part of the timing model —
    /// property tests use it to prove no acknowledged write is lost.
    stamps: Vec<Option<(u64, u64)>>,
}

impl Block {
    /// Creates a free, erased block with `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn new(pages: u32) -> Block {
        assert!(pages > 0, "a block needs at least one page");
        Block {
            pages,
            kind: BlockKind::Free,
            next_page: 0,
            valid: vec![0; (pages as usize).div_ceil(64)],
            valid_count: 0,
            erase_count: 0,
            failed: false,
            stamps: vec![None; pages as usize],
        }
    }

    /// Programs the next in-order page; returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FlashProtocol`] when the block is full — callers
    /// must erase (after GC) before reusing it.
    pub fn program_next(&mut self) -> Result<u32> {
        if self.next_page >= self.pages {
            return Err(Error::FlashProtocol(format!(
                "block is full ({} pages programmed); erase before reuse",
                self.pages
            )));
        }
        let page = self.next_page;
        self.next_page += 1;
        self.valid[(page / 64) as usize] |= 1 << (page % 64);
        self.valid_count += 1;
        Ok(page)
    }

    /// Marks `page` invalid (superseded by a newer version elsewhere).
    ///
    /// Invalidating an unprogrammed or already-invalid page is a no-op.
    pub fn invalidate(&mut self, page: u32) {
        if page >= self.pages {
            return;
        }
        let (w, b) = ((page / 64) as usize, page % 64);
        if self.valid[w] & (1 << b) != 0 {
            self.valid[w] &= !(1 << b);
            self.valid_count -= 1;
        }
    }

    /// Whether `page` has been programmed and not superseded.
    pub fn is_valid(&self, page: u32) -> bool {
        page < self.pages && self.valid[(page / 64) as usize] & (1 << (page % 64)) != 0
    }

    /// Whether `page` has been programmed (valid or stale).
    pub fn is_programmed(&self, page: u32) -> bool {
        page < self.next_page
    }

    /// Erases the block, returning it to [`BlockKind::Free`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::FlashProtocol`] if valid pages remain: GC must
    /// migrate them first (erasing live data is a simulator-logic bug a
    /// caller can trigger, so it is an error, not a panic).
    pub fn erase(&mut self) -> Result<()> {
        if self.valid_count > 0 {
            return Err(Error::FlashProtocol(format!(
                "erasing block with {} valid pages",
                self.valid_count
            )));
        }
        self.kind = BlockKind::Free;
        self.next_page = 0;
        self.valid.iter_mut().for_each(|w| *w = 0);
        self.stamps.iter_mut().for_each(|s| *s = None);
        self.erase_count += 1;
        Ok(())
    }

    /// Marks the block failed (a program or erase did not verify). The
    /// flag is sticky — it survives erases — so the FTL retires the
    /// block instead of returning it to the free pool.
    pub fn mark_failed(&mut self) {
        self.failed = true;
    }

    /// Whether a program/erase on this block has ever failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Records verification metadata for `page` (ignored out of range).
    pub fn set_stamp(&mut self, page: u32, key: u64, seq: u64) {
        if let Some(s) = self.stamps.get_mut(page as usize) {
            *s = Some((key, seq));
        }
    }

    /// The `(key, sequence)` of the last successful program of `page`.
    pub fn stamp(&self, page: u32) -> Option<(u64, u64)> {
        self.stamps.get(page as usize).copied().flatten()
    }

    /// Sets the block's role (done by the FTL when allocating).
    pub fn set_kind(&mut self, kind: BlockKind) {
        self.kind = kind;
    }

    /// Current role.
    pub fn kind(&self) -> BlockKind {
        self.kind
    }

    /// Number of valid pages.
    pub fn valid_pages(&self) -> u32 {
        self.valid_count
    }

    /// Number of programmed pages (valid + stale).
    pub fn programmed_pages(&self) -> u32 {
        self.next_page
    }

    /// Remaining free (unprogrammed) pages.
    pub fn free_pages(&self) -> u32 {
        self.pages - self.next_page
    }

    /// Whether every page has been programmed.
    pub fn is_full(&self) -> bool {
        self.next_page == self.pages
    }

    /// Lifetime erase count (wear-levelling input).
    pub fn erase_count(&self) -> u32 {
        self.erase_count
    }

    /// Total pages in the block.
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// Iterates indices of currently valid pages.
    pub fn valid_page_indices(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.next_page).filter(move |&p| self.is_valid(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_in_order() {
        let mut b = Block::new(3);
        assert_eq!(b.program_next().unwrap(), 0);
        assert_eq!(b.program_next().unwrap(), 1);
        assert_eq!(b.program_next().unwrap(), 2);
        assert!(b.is_full());
        assert!(matches!(b.program_next(), Err(Error::FlashProtocol(_))));
    }

    #[test]
    fn validity_tracking() {
        let mut b = Block::new(128);
        for _ in 0..100 {
            b.program_next().unwrap();
        }
        assert_eq!(b.valid_pages(), 100);
        b.invalidate(5);
        b.invalidate(64); // second bitmap word
        b.invalidate(5); // double-invalidate is a no-op
        b.invalidate(1_000); // out of range is a no-op
        assert_eq!(b.valid_pages(), 98);
        assert!(!b.is_valid(5));
        assert!(b.is_programmed(5));
        assert!(b.is_valid(6));
        assert!(!b.is_valid(100)); // programmed? no
        assert!(!b.is_programmed(100));
    }

    #[test]
    fn erase_requires_no_valid_pages() {
        let mut b = Block::new(2);
        b.set_kind(BlockKind::Log);
        b.program_next().unwrap();
        assert!(b.erase().is_err());
        b.invalidate(0);
        b.erase().unwrap();
        assert_eq!(b.kind(), BlockKind::Free);
        assert_eq!(b.erase_count(), 1);
        assert_eq!(b.free_pages(), 2);
        // Reusable after erase.
        assert_eq!(b.program_next().unwrap(), 0);
    }

    #[test]
    fn valid_page_indices_iterates_survivors() {
        let mut b = Block::new(8);
        for _ in 0..5 {
            b.program_next().unwrap();
        }
        b.invalidate(1);
        b.invalidate(3);
        let live: Vec<u32> = b.valid_page_indices().collect();
        assert_eq!(live, vec![0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_pages_rejected() {
        let _ = Block::new(0);
    }

    #[test]
    fn failed_flag_is_sticky_across_erase() {
        let mut b = Block::new(2);
        assert!(!b.is_failed());
        b.program_next().unwrap();
        b.mark_failed();
        b.invalidate(0);
        b.erase().unwrap();
        assert!(b.is_failed(), "failure survives erase");
    }

    #[test]
    fn stamps_track_last_program_and_clear_on_erase() {
        let mut b = Block::new(4);
        b.program_next().unwrap();
        assert_eq!(b.stamp(0), None);
        b.set_stamp(0, 77, 1);
        b.set_stamp(0, 77, 2); // re-stamp supersedes
        assert_eq!(b.stamp(0), Some((77, 2)));
        b.set_stamp(99, 1, 1); // out of range: no-op
        assert_eq!(b.stamp(99), None);
        b.invalidate(0);
        b.erase().unwrap();
        assert_eq!(b.stamp(0), None, "erase clears stamps");
    }
}
