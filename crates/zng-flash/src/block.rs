//! Flash-block state machine: erase-before-write and in-order programming.

use zng_types::{Cycle, Error, Result};

/// What a block is currently used for.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// Erased and unused.
    #[default]
    Free,
    /// A physical data block (read-only sequential pages, DBMT-mapped).
    Data,
    /// A physical log block (over-provisioned, LPMT-remapped writes).
    Log,
    /// A RAIN parity block: holds per-stripe XOR pages, never user data.
    /// Recovery scans skip parity pages when resolving logical winners.
    Parity,
    /// A checkpoint/journal block: holds serialised mapping snapshots and
    /// write-ahead journal pages in a reserved key namespace, never user
    /// data. Like parity, checkpoint pages never win a logical page
    /// during recovery; unlike parity, their torn-page semantics are the
    /// recovery fast path's validity signal.
    Checkpoint,
}

/// Out-of-band (OOB) metadata written atomically with a page's data.
///
/// Real NAND reserves a spare area per page; ZnG's recovery story depends
/// on it: after a power loss the volatile mapping tables (DBMT / LBMT /
/// row-decoder LPMT) are gone and a full-device OOB scan is the only way
/// to rebuild them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OobMeta {
    /// Logical page number the data belongs to.
    pub lpn: u64,
    /// Monotonic device-wide program stamp; duplicate LPNs found during a
    /// recovery scan are resolved in favour of the highest stamp.
    pub seq: u64,
    /// The role the owning block had when the page was programmed
    /// (data-vs-log tag), so the scan can rebuild DBMT vs LPMT entries.
    pub tag: BlockKind,
    /// When the array program completed. A power loss before this instant
    /// leaves the page torn.
    pub programmed_at: Cycle,
    /// Demand writes tear when power is cut mid-program; GC migrations
    /// and dataset preloads do not (the helper thread orders its erase
    /// after migration completion, so a cut mid-merge leaves the sources
    /// as the surviving copies instead — see DESIGN.md).
    pub demand: bool,
}

/// Per-page OOB state as seen by a recovery scan.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum PageOob {
    /// Never successfully programmed with metadata: an erased slot, or
    /// garbage left by a failed (unverified) program.
    #[default]
    Blank,
    /// Programmed and verified; metadata readable.
    Written(OobMeta),
    /// A power loss interrupted the program: the page reads back as
    /// detectable garbage and must never be served.
    Torn,
}

/// One flash block: a fixed number of pages that must be programmed
/// strictly in order and can only be reused after a whole-block erase
/// (paper §II-B).
///
/// # Examples
///
/// ```
/// use zng_flash::{Block, BlockKind};
///
/// let mut b = Block::new(4);
/// b.set_kind(BlockKind::Data);
/// assert_eq!(b.program_next()?, 0);
/// assert_eq!(b.program_next()?, 1);
/// b.invalidate(0);
/// assert_eq!(b.valid_pages(), 1);
/// b.invalidate(1);
/// b.erase()?;
/// assert_eq!(b.kind(), BlockKind::Free);
/// # Ok::<(), zng_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    pages: u32,
    kind: BlockKind,
    /// In-order program pointer: next free page index.
    next_page: u32,
    /// Validity bitmap, one bit per page.
    valid: Vec<u64>,
    valid_count: u32,
    erase_count: u32,
    /// Set when a program or erase on this block failed verification:
    /// the block must be retired once its live data has been migrated.
    failed: bool,
    /// Per-page out-of-band metadata, written atomically with each page.
    /// Not part of the timing model; recovery scans it to rebuild the
    /// volatile mapping tables and property tests use it to prove no
    /// acknowledged write is lost.
    oob: Vec<PageOob>,
    /// Silent-corruption bitmap, one bit per page: set when the page's
    /// payload was flipped *below* the ECC model (a miscorrection the
    /// sense reports as success). The simulator carries no payload bytes,
    /// so this flag *is* the corruption — "does the stored payload still
    /// match its OOB checksum". Survives power loss (the array is
    /// non-volatile) and clears on erase.
    corrupt: Vec<u64>,
    /// Read-disturb exposure: array senses against this block since its
    /// last erase. Disturb is accumulated charge drift on sibling pages,
    /// so it is physical state — it survives power loss and only an
    /// erase (fresh charge) resets it.
    disturb_reads: u64,
    /// When the first page after the last erase finished programming:
    /// the block's retention clock. Charge state, so it survives power
    /// loss and clears on erase.
    first_programmed: Option<Cycle>,
}

impl Block {
    /// Creates a free, erased block with `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn new(pages: u32) -> Block {
        assert!(pages > 0, "a block needs at least one page");
        Block {
            pages,
            kind: BlockKind::Free,
            next_page: 0,
            valid: vec![0; (pages as usize).div_ceil(64)],
            valid_count: 0,
            erase_count: 0,
            failed: false,
            oob: vec![PageOob::Blank; pages as usize],
            corrupt: vec![0; (pages as usize).div_ceil(64)],
            disturb_reads: 0,
            first_programmed: None,
        }
    }

    /// Records one read-disturb exposure: an array sense against any page
    /// of this block drifts the charge of its sibling pages. Cleared by
    /// [`Block::erase`] only.
    pub fn note_disturb_read(&mut self) {
        self.disturb_reads = self.disturb_reads.saturating_add(1);
    }

    /// Array senses against this block since its last erase.
    pub fn disturb_reads(&self) -> u64 {
        self.disturb_reads
    }

    /// When the first page after the last erase finished programming, if
    /// any — the block's retention clock for refresh decisions.
    pub fn first_programmed(&self) -> Option<Cycle> {
        self.first_programmed
    }

    /// Flags `page`'s payload as silently corrupted: its stored bits no
    /// longer match the checksum in its OOB record. No-op out of range.
    pub fn mark_corrupt(&mut self, page: u32) {
        if page < self.pages {
            self.corrupt[(page / 64) as usize] |= 1 << (page % 64);
        }
    }

    /// Whether `page`'s payload fails its end-to-end checksum. Only an
    /// integrity-verifying reader notices — the sense itself succeeds.
    pub fn is_corrupt(&self, page: u32) -> bool {
        page < self.pages && self.corrupt[(page / 64) as usize] & (1 << (page % 64)) != 0
    }

    /// Programs the next in-order page; returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FlashProtocol`] when the block is full — callers
    /// must erase (after GC) before reusing it.
    pub fn program_next(&mut self) -> Result<u32> {
        if self.next_page >= self.pages {
            return Err(Error::FlashProtocol(format!(
                "block is full ({} pages programmed); erase before reuse",
                self.pages
            )));
        }
        let page = self.next_page;
        self.next_page += 1;
        self.valid[(page / 64) as usize] |= 1 << (page % 64);
        self.valid_count += 1;
        Ok(page)
    }

    /// Marks `page` invalid (superseded by a newer version elsewhere).
    ///
    /// Invalidating an unprogrammed or already-invalid page is a no-op.
    pub fn invalidate(&mut self, page: u32) {
        if page >= self.pages {
            return;
        }
        let (w, b) = ((page / 64) as usize, page % 64);
        if self.valid[w] & (1 << b) != 0 {
            self.valid[w] &= !(1 << b);
            self.valid_count -= 1;
        }
    }

    /// Whether `page` has been programmed and not superseded.
    pub fn is_valid(&self, page: u32) -> bool {
        page < self.pages && self.valid[(page / 64) as usize] & (1 << (page % 64)) != 0
    }

    /// Whether `page` has been programmed (valid or stale).
    pub fn is_programmed(&self, page: u32) -> bool {
        page < self.next_page
    }

    /// Erases the block, returning it to [`BlockKind::Free`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::FlashProtocol`] if valid pages remain: GC must
    /// migrate them first (erasing live data is a simulator-logic bug a
    /// caller can trigger, so it is an error, not a panic).
    pub fn erase(&mut self) -> Result<()> {
        if self.valid_count > 0 {
            return Err(Error::FlashProtocol(format!(
                "erasing block with {} valid pages",
                self.valid_count
            )));
        }
        self.kind = BlockKind::Free;
        self.next_page = 0;
        self.valid.iter_mut().for_each(|w| *w = 0);
        self.oob.iter_mut().for_each(|s| *s = PageOob::Blank);
        self.corrupt.iter_mut().for_each(|w| *w = 0);
        self.disturb_reads = 0;
        self.first_programmed = None;
        self.erase_count += 1;
        Ok(())
    }

    /// Marks the block failed (a program or erase did not verify). The
    /// flag is sticky — it survives erases — so the FTL retires the
    /// block instead of returning it to the free pool.
    pub fn mark_failed(&mut self) {
        self.failed = true;
    }

    /// Whether a program/erase on this block has ever failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Records the full out-of-band record for `page` (ignored out of
    /// range). Written "atomically with the page": the device calls this
    /// from the same completion that verifies the program.
    pub fn record_oob(&mut self, page: u32, meta: OobMeta) {
        if let Some(s) = self.oob.get_mut(page as usize) {
            *s = PageOob::Written(meta);
            if self.first_programmed.is_none() {
                self.first_programmed = Some(meta.programmed_at);
            }
        }
    }

    /// The OOB state of `page` ([`PageOob::Blank`] out of range).
    pub fn oob(&self, page: u32) -> PageOob {
        self.oob.get(page as usize).copied().unwrap_or_default()
    }

    /// Whether `page` was torn by a power loss mid-program.
    pub fn is_torn(&self, page: u32) -> bool {
        matches!(self.oob(page), PageOob::Torn)
    }

    /// Records verification metadata for `page` (ignored out of range).
    /// Shorthand for [`Block::record_oob`] with the block's current kind
    /// and no timing information; tests and preloads use it.
    pub fn set_stamp(&mut self, page: u32, key: u64, seq: u64) {
        self.record_oob(
            page,
            OobMeta {
                lpn: key,
                seq,
                tag: self.kind,
                programmed_at: Cycle::ZERO,
                demand: false,
            },
        );
    }

    /// The `(key, sequence)` of the last successful program of `page`.
    pub fn stamp(&self, page: u32) -> Option<(u64, u64)> {
        match self.oob(page) {
            PageOob::Written(m) => Some((m.lpn, m.seq)),
            _ => None,
        }
    }

    /// Cuts power over this block at `now`.
    ///
    /// The flash array itself is non-volatile — programmed pages, OOB
    /// records, wear counters and the sticky failed flag all survive —
    /// but two things change:
    ///
    /// * any **demand** program still in flight (`programmed_at > now`)
    ///   is torn: its page becomes detectable garbage — unless its
    ///   sequence is covered by `fenced_seq`, the device-wide erase
    ///   barrier (an erase is only issued after the programs whose
    ///   invalidations justified it have verified, so every program
    ///   sequenced before the last erase has completed);
    /// * the **validity bitmap and block role are dropped** — they are
    ///   FTL bookkeeping mirrored here for the model's convenience, not
    ///   media state. Recovery rebuilds both from the OOB scan.
    ///
    /// Returns the number of pages torn.
    pub fn power_loss(&mut self, now: Cycle, fenced_seq: u64) -> u32 {
        let mut torn = 0;
        for slot in self.oob.iter_mut().take(self.next_page as usize) {
            if let PageOob::Written(m) = slot {
                if m.demand && m.programmed_at > now && m.seq > fenced_seq {
                    *slot = PageOob::Torn;
                    torn += 1;
                }
            }
        }
        self.kind = BlockKind::Free;
        self.valid.iter_mut().for_each(|w| *w = 0);
        self.valid_count = 0;
        torn
    }

    /// Re-marks a programmed page valid during recovery (the scan decided
    /// this copy is the winner for its LPN). No-op out of range, on
    /// unprogrammed pages, or when already valid.
    pub fn restore_valid(&mut self, page: u32) {
        if page >= self.next_page || self.is_valid(page) {
            return;
        }
        self.valid[(page / 64) as usize] |= 1 << (page % 64);
        self.valid_count += 1;
    }

    /// Sets the block's role (done by the FTL when allocating).
    pub fn set_kind(&mut self, kind: BlockKind) {
        self.kind = kind;
    }

    /// Current role.
    pub fn kind(&self) -> BlockKind {
        self.kind
    }

    /// Number of valid pages.
    pub fn valid_pages(&self) -> u32 {
        self.valid_count
    }

    /// Number of programmed pages (valid + stale).
    pub fn programmed_pages(&self) -> u32 {
        self.next_page
    }

    /// Remaining free (unprogrammed) pages.
    pub fn free_pages(&self) -> u32 {
        self.pages - self.next_page
    }

    /// Whether every page has been programmed.
    pub fn is_full(&self) -> bool {
        self.next_page == self.pages
    }

    /// Lifetime erase count (wear-levelling input).
    pub fn erase_count(&self) -> u32 {
        self.erase_count
    }

    /// Total pages in the block.
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// Iterates indices of currently valid pages.
    pub fn valid_page_indices(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.next_page).filter(move |&p| self.is_valid(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_in_order() {
        let mut b = Block::new(3);
        assert_eq!(b.program_next().unwrap(), 0);
        assert_eq!(b.program_next().unwrap(), 1);
        assert_eq!(b.program_next().unwrap(), 2);
        assert!(b.is_full());
        assert!(matches!(b.program_next(), Err(Error::FlashProtocol(_))));
    }

    #[test]
    fn validity_tracking() {
        let mut b = Block::new(128);
        for _ in 0..100 {
            b.program_next().unwrap();
        }
        assert_eq!(b.valid_pages(), 100);
        b.invalidate(5);
        b.invalidate(64); // second bitmap word
        b.invalidate(5); // double-invalidate is a no-op
        b.invalidate(1_000); // out of range is a no-op
        assert_eq!(b.valid_pages(), 98);
        assert!(!b.is_valid(5));
        assert!(b.is_programmed(5));
        assert!(b.is_valid(6));
        assert!(!b.is_valid(100)); // programmed? no
        assert!(!b.is_programmed(100));
    }

    #[test]
    fn erase_requires_no_valid_pages() {
        let mut b = Block::new(2);
        b.set_kind(BlockKind::Log);
        b.program_next().unwrap();
        assert!(b.erase().is_err());
        b.invalidate(0);
        b.erase().unwrap();
        assert_eq!(b.kind(), BlockKind::Free);
        assert_eq!(b.erase_count(), 1);
        assert_eq!(b.free_pages(), 2);
        // Reusable after erase.
        assert_eq!(b.program_next().unwrap(), 0);
    }

    #[test]
    fn valid_page_indices_iterates_survivors() {
        let mut b = Block::new(8);
        for _ in 0..5 {
            b.program_next().unwrap();
        }
        b.invalidate(1);
        b.invalidate(3);
        let live: Vec<u32> = b.valid_page_indices().collect();
        assert_eq!(live, vec![0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_pages_rejected() {
        let _ = Block::new(0);
    }

    #[test]
    fn failed_flag_is_sticky_across_erase() {
        let mut b = Block::new(2);
        assert!(!b.is_failed());
        b.program_next().unwrap();
        b.mark_failed();
        b.invalidate(0);
        b.erase().unwrap();
        assert!(b.is_failed(), "failure survives erase");
    }

    #[test]
    fn power_loss_tears_inflight_demand_programs_only() {
        let mut b = Block::new(4);
        b.set_kind(BlockKind::Log);
        for _ in 0..3 {
            b.program_next().unwrap();
        }
        let meta = |at: u64, demand: bool| OobMeta {
            lpn: 7,
            seq: 1,
            tag: BlockKind::Log,
            programmed_at: Cycle(at),
            demand,
        };
        b.record_oob(0, meta(50, true)); // completed before the cut
        b.record_oob(1, meta(500, true)); // in flight: tears
        b.record_oob(2, meta(500, false)); // migration in flight: survives
        let torn = b.power_loss(Cycle(100), 0);
        assert_eq!(torn, 1);
        assert!(!b.is_torn(0) && b.is_torn(1) && !b.is_torn(2));
        // Volatile per-block bookkeeping is dropped…
        assert_eq!(b.kind(), BlockKind::Free);
        assert_eq!(b.valid_pages(), 0);
        // …but the array contents survive.
        assert_eq!(b.programmed_pages(), 3);
        assert_eq!(b.stamp(0), Some((7, 1)));
        assert_eq!(b.stamp(1), None, "torn pages lose their metadata");
    }

    #[test]
    fn restore_valid_rebuilds_bitmap_after_power_loss() {
        let mut b = Block::new(4);
        b.program_next().unwrap();
        b.program_next().unwrap();
        b.power_loss(Cycle::ZERO, 0);
        assert_eq!(b.valid_pages(), 0);
        b.restore_valid(1);
        b.restore_valid(1); // idempotent
        b.restore_valid(3); // unprogrammed: no-op
        assert_eq!(b.valid_pages(), 1);
        assert!(b.is_valid(1) && !b.is_valid(0));
    }

    #[test]
    fn corruption_survives_power_loss_and_clears_on_erase() {
        let mut b = Block::new(4);
        b.program_next().unwrap();
        b.program_next().unwrap();
        assert!(!b.is_corrupt(0));
        b.mark_corrupt(0);
        b.mark_corrupt(99); // out of range: no-op
        assert!(b.is_corrupt(0) && !b.is_corrupt(1));
        // The array is non-volatile: corruption survives the cut.
        b.power_loss(Cycle::ZERO, 0);
        assert!(b.is_corrupt(0));
        // A fresh erase gives the cells new, clean charge.
        b.erase().unwrap();
        assert!(!b.is_corrupt(0));
    }

    #[test]
    fn erase_clears_torn_state() {
        let mut b = Block::new(2);
        b.program_next().unwrap();
        b.record_oob(
            0,
            OobMeta {
                lpn: 1,
                seq: 1,
                tag: BlockKind::Data,
                programmed_at: Cycle(10),
                demand: true,
            },
        );
        b.power_loss(Cycle::ZERO, 0);
        assert!(b.is_torn(0));
        b.erase().unwrap();
        assert_eq!(b.oob(0), PageOob::Blank);
    }

    #[test]
    fn disturb_reads_survive_power_loss_and_clear_on_erase() {
        let mut b = Block::new(2);
        b.program_next().unwrap();
        assert_eq!(b.disturb_reads(), 0);
        b.note_disturb_read();
        b.note_disturb_read();
        assert_eq!(b.disturb_reads(), 2);
        // Disturb is charge drift — physical state that survives a cut.
        b.power_loss(Cycle::ZERO, 0);
        assert_eq!(b.disturb_reads(), 2);
        // A fresh erase re-charges the cells.
        b.erase().unwrap();
        assert_eq!(b.disturb_reads(), 0);
    }

    #[test]
    fn first_programmed_stamps_retention_clock() {
        let mut b = Block::new(3);
        assert_eq!(b.first_programmed(), None);
        b.program_next().unwrap();
        let meta = |at: u64| OobMeta {
            lpn: 1,
            seq: 1,
            tag: BlockKind::Data,
            programmed_at: Cycle(at),
            demand: true,
        };
        b.record_oob(0, meta(100));
        assert_eq!(b.first_programmed(), Some(Cycle(100)));
        // Later programs never move the retention clock backwards.
        b.program_next().unwrap();
        b.record_oob(1, meta(900));
        assert_eq!(b.first_programmed(), Some(Cycle(100)));
        // Survives power loss, clears on erase.
        b.power_loss(Cycle(2_000), 0);
        assert_eq!(b.first_programmed(), Some(Cycle(100)));
        b.erase().unwrap();
        assert_eq!(b.first_programmed(), None);
    }

    #[test]
    fn stamps_track_last_program_and_clear_on_erase() {
        let mut b = Block::new(4);
        b.program_next().unwrap();
        assert_eq!(b.stamp(0), None);
        b.set_stamp(0, 77, 1);
        b.set_stamp(0, 77, 2); // re-stamp supersedes
        assert_eq!(b.stamp(0), Some((77, 2)));
        b.set_stamp(99, 1, 1); // out of range: no-op
        assert_eq!(b.stamp(99), None);
        b.invalidate(0);
        b.erase().unwrap();
        assert_eq!(b.stamp(0), None, "erase clears stamps");
    }
}
