//! A Z-NAND plane: the unit of array access.
//!
//! A plane owns its blocks (allocated lazily — the full Table I device has
//! a million blocks, but workloads touch a small fraction) and its array
//! timing. Programs and erases serialize on the array; reads run at
//! *higher priority*: Z-NAND implements program/erase suspend-resume so
//! that its 3 µs reads are not buried under 100 µs programs (this is the
//! core of Z-SSD's low-latency design). Reads therefore serialize only
//! against other reads, paying a small suspension overhead when they
//! preempt a program.

use std::collections::HashMap;

use zng_sim::Resource;
use zng_types::{Cycle, Error, Result};

use crate::block::Block;
use crate::timing::FlashCycles;

/// Extra cycles a read pays to suspend an in-flight program/erase
/// (~0.5 µs at the default clock).
pub const SUSPEND_OVERHEAD: Cycle = Cycle(600);

/// One flash plane.
#[derive(Debug, Clone)]
pub struct Plane {
    blocks_per_plane: u32,
    pages_per_block: u32,
    timing: FlashCycles,
    blocks: HashMap<u32, Block>,
    /// Program/erase occupancy.
    array: Resource,
    /// Read occupancy (reads suspend programs, so they only queue behind
    /// other reads).
    read_port: Resource,
    /// The page currently latched in the plane's cache register: repeat
    /// reads of it stream out without re-sensing the array.
    sensed: Option<(u32, u32)>,
    /// When the latched page's sense completes.
    sensed_at: Cycle,
    reads: u64,
    register_reads: u64,
    programs: u64,
    erases: u64,
}

impl Plane {
    /// Creates a plane with the given dimensions and media timing.
    pub fn new(blocks_per_plane: u32, pages_per_block: u32, timing: FlashCycles) -> Plane {
        Plane {
            blocks_per_plane,
            pages_per_block,
            timing,
            blocks: HashMap::new(),
            array: Resource::new(1),
            read_port: Resource::new(1),
            sensed: None,
            sensed_at: Cycle::ZERO,
            reads: 0,
            register_reads: 0,
            programs: 0,
            erases: 0,
        }
    }

    fn check_block(&self, block: u32) -> Result<()> {
        if block >= self.blocks_per_plane {
            return Err(Error::AddressOutOfRange {
                addr: block as u64,
                capacity: self.blocks_per_plane as u64,
            });
        }
        Ok(())
    }

    /// Mutable access to a block, creating it erased on first touch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] for an invalid block index.
    pub fn block_mut(&mut self, block: u32) -> Result<&mut Block> {
        self.check_block(block)?;
        let pages = self.pages_per_block;
        Ok(self
            .blocks
            .entry(block)
            .or_insert_with(|| Block::new(pages)))
    }

    /// Shared access to a block, if it has ever been touched.
    pub fn block(&self, block: u32) -> Option<&Block> {
        self.blocks.get(&block)
    }

    /// Senses one page from the array; returns sense-complete time.
    ///
    /// If the plane's cache register already latches this page (it was
    /// the most recently sensed one), the data streams from the register
    /// without occupying the array — `(time, false)` is returned and the
    /// read is *not* an array access.
    ///
    /// # Errors
    ///
    /// Flash protocol: reading an unprogrammed page is rejected.
    pub fn read_page(&mut self, now: Cycle, block: u32, page: u32) -> Result<Cycle> {
        Ok(self.read_page_traced(now, block, page)?.0)
    }

    /// [`Plane::read_page`] variant reporting whether the array was
    /// actually sensed (`true`) or the cache register served it
    /// (`false`).
    ///
    /// # Errors
    ///
    /// Flash protocol: reading an unprogrammed page is rejected.
    pub fn read_page_traced(
        &mut self,
        now: Cycle,
        block: u32,
        page: u32,
    ) -> Result<(Cycle, bool)> {
        self.check_block(block)?;
        let programmed = self
            .blocks
            .get(&block)
            .map(|b| b.is_programmed(page))
            .unwrap_or(false);
        if !programmed {
            return Err(Error::FlashProtocol(format!(
                "reading unprogrammed page {page} of block {block}"
            )));
        }
        if self.sensed == Some((block, page)) {
            self.register_reads += 1;
            return Ok((now.max(self.sensed_at), false));
        }
        self.reads += 1;
        // Reads preempt programs (suspend-resume): they serialize only
        // against other reads, plus a fixed suspension overhead when a
        // program/erase is in flight.
        let suspend = if self.array.earliest_free() > now {
            SUSPEND_OVERHEAD
        } else {
            Cycle::ZERO
        };
        let done = self.read_port.acquire(now, self.timing.read + suspend);
        self.sensed = Some((block, page));
        self.sensed_at = done;
        Ok((done, true))
    }

    /// Programs the next in-order page of `block`; returns
    /// `(page_index, program-complete time)`.
    ///
    /// # Errors
    ///
    /// Propagates the block's protocol errors (full block).
    pub fn program_next(&mut self, now: Cycle, block: u32) -> Result<(u32, Cycle)> {
        let page = self.block_mut(block)?.program_next()?;
        self.programs += 1;
        // Programming reuses the cache register: the latched page is lost.
        self.sensed = None;
        let done = self.array.acquire(now, self.timing.program);
        Ok((page, done))
    }

    /// Erases `block`; returns erase-complete time.
    ///
    /// # Errors
    ///
    /// Propagates the block's protocol errors (valid pages remain).
    pub fn erase(&mut self, now: Cycle, block: u32) -> Result<Cycle> {
        self.block_mut(block)?.erase()?;
        self.erases += 1;
        if matches!(self.sensed, Some((b, _)) if b == block) {
            self.sensed = None;
        }
        Ok(self.array.acquire(now, self.timing.erase))
    }

    /// When the array next becomes idle.
    pub fn array_free_at(&self) -> Cycle {
        self.array.earliest_free()
    }

    /// Array reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Reads served from the cache register without an array sense.
    pub fn register_reads(&self) -> u64 {
        self.register_reads
    }

    /// Array programs performed.
    pub fn programs(&self) -> u64 {
        self.programs
    }

    /// Array erases performed.
    pub fn erases(&self) -> u64 {
        self.erases
    }

    /// The media timing this plane was built with.
    pub fn timing(&self) -> FlashCycles {
        self.timing
    }

    /// Pages per block.
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// Blocks in this plane.
    pub fn blocks_per_plane(&self) -> u32 {
        self.blocks_per_plane
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> Plane {
        Plane::new(8, 4, FlashCycles::default())
    }

    #[test]
    fn read_requires_programmed_page() {
        let mut p = plane();
        assert!(matches!(
            p.read_page(Cycle(0), 0, 0),
            Err(Error::FlashProtocol(_))
        ));
        p.program_next(Cycle(0), 0).unwrap();
        assert!(p.read_page(Cycle(0), 0, 0).is_ok());
        assert_eq!(p.reads(), 1);
    }

    #[test]
    fn reads_suspend_programs() {
        let mut p = plane();
        let (_, t1) = p.program_next(Cycle(0), 0).unwrap();
        assert_eq!(t1, Cycle(120_000)); // 100us program
        // A read issued at t=0 suspends the program instead of waiting
        // for it: sense time + suspension overhead.
        let t2 = p.read_page(Cycle(0), 0, 0).unwrap();
        assert_eq!(t2, Cycle(3_600) + SUSPEND_OVERHEAD);
        // With the array idle, reads pay no suspension overhead.
        let t3 = p.read_page(Cycle(200_000), 1, 0);
        assert!(t3.is_err(), "block 1 page 0 unprogrammed");
        p.program_next(Cycle(200_000), 1).unwrap();
        let t4 = p.read_page(Cycle(500_000), 1, 0).unwrap();
        assert_eq!(t4, Cycle(500_000 + 3_600));
    }

    #[test]
    fn programs_serialize_on_array() {
        let mut p = plane();
        let (_, t1) = p.program_next(Cycle(0), 0).unwrap();
        let (_, t2) = p.program_next(Cycle(0), 0).unwrap();
        assert_eq!(t1, Cycle(120_000));
        assert_eq!(t2, Cycle(240_000));
    }

    #[test]
    fn program_erase_cycle() {
        let mut p = plane();
        for _ in 0..4 {
            p.program_next(Cycle(0), 1).unwrap();
        }
        assert!(p.program_next(Cycle(0), 1).is_err());
        for pg in 0..4 {
            p.block_mut(1).unwrap().invalidate(pg);
        }
        let t = p.erase(Cycle(0), 1).unwrap();
        assert!(t >= Cycle(1_200_000));
        assert_eq!(p.erases(), 1);
        // Block usable again.
        assert!(p.program_next(Cycle(0), 1).is_ok());
    }

    #[test]
    fn block_bounds_checked() {
        let mut p = plane();
        assert!(matches!(
            p.read_page(Cycle(0), 99, 0),
            Err(Error::AddressOutOfRange { .. })
        ));
        assert!(p.block_mut(99).is_err());
        assert!(p.block(99).is_none());
    }

    #[test]
    fn lazy_blocks() {
        let mut p = plane();
        assert!(p.block(3).is_none());
        p.block_mut(3).unwrap();
        assert!(p.block(3).is_some());
    }
}
