//! A Z-NAND plane: the unit of array access.
//!
//! A plane owns its blocks (allocated lazily — the full Table I device has
//! a million blocks, but workloads touch a small fraction) and its array
//! timing. Programs and erases serialize on the array; reads run at
//! *higher priority*: Z-NAND implements program/erase suspend-resume so
//! that its 3 µs reads are not buried under 100 µs programs (this is the
//! core of Z-SSD's low-latency design). Reads therefore serialize only
//! against other reads, paying a small suspension overhead when they
//! preempt a program.

use zng_sim::Resource;
use zng_types::{Cycle, Error, Result};

use crate::block::Block;
use crate::fault::{PlaneFaults, MAX_READ_RETRIES, RETRY_STEP_EXTRA_CYCLES};
use crate::timing::FlashCycles;

/// Extra cycles a read pays to suspend an in-flight program/erase
/// (~0.5 µs at the default clock).
pub const SUSPEND_OVERHEAD: Cycle = Cycle(600);

/// Outcome of a page read that completed (possibly after retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadReport {
    /// When the data is available.
    pub done: Cycle,
    /// Whether the array was sensed (`false`: served from the cache
    /// register).
    pub sensed: bool,
    /// Read-retry steps taken beyond the initial sense.
    pub retries: u32,
}

/// Outcome of a page program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramReport {
    /// The in-order page index that was programmed.
    pub page: u32,
    /// When the program completes.
    pub done: Cycle,
    /// Whether program verification failed: the page holds garbage and
    /// the block must be retired after its live data is migrated.
    pub failed: bool,
}

/// Outcome of a block erase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EraseReport {
    /// When the erase completes.
    pub done: Cycle,
    /// Whether erase verification failed: the block must be retired.
    pub failed: bool,
}

/// One flash plane.
#[derive(Debug, Clone)]
pub struct Plane {
    blocks_per_plane: u32,
    pages_per_block: u32,
    timing: FlashCycles,
    /// Direct-indexed by block id, grown lazily to the highest block
    /// ever touched: the hot read/program paths index in O(1) with no
    /// hashing, while an untouched tail of a million-block device costs
    /// nothing. Iteration (power loss) walks in index order, which is
    /// deterministic by construction.
    blocks: Vec<Option<Block>>,
    /// Program/erase occupancy.
    array: Resource,
    /// Read occupancy (reads suspend programs, so they only queue behind
    /// other reads).
    read_port: Resource,
    /// The page currently latched in the plane's cache register: repeat
    /// reads of it stream out without re-sensing the array.
    sensed: Option<(u32, u32)>,
    /// When the latched page's sense completes.
    sensed_at: Cycle,
    reads: u64,
    register_reads: u64,
    programs: u64,
    erases: u64,
    /// Fault-injection state; `None` runs the plane fault-free with no
    /// RNG draws at all.
    faults: Option<PlaneFaults>,
    /// Read-disturb tracking unit: array senses per block that add one
    /// P/E-equivalent cycle of RBER exposure. `None` (the default)
    /// disables disturb accounting entirely — no counter updates, and
    /// every fault draw is bit-identical to a build without it.
    disturb_unit: Option<u64>,
    /// Senses charged to per-block disturb counters (endurance on only).
    disturb_noted: u64,
    /// Failed read attempts attributable to disturb amplification alone,
    /// including the final attempt of an uncorrectable read.
    disturb_errors: u64,
}

impl Plane {
    /// Creates a plane with the given dimensions and media timing.
    pub fn new(blocks_per_plane: u32, pages_per_block: u32, timing: FlashCycles) -> Plane {
        Plane {
            blocks_per_plane,
            pages_per_block,
            timing,
            blocks: Vec::new(),
            array: Resource::new(1),
            read_port: Resource::new(1),
            sensed: None,
            sensed_at: Cycle::ZERO,
            reads: 0,
            register_reads: 0,
            programs: 0,
            erases: 0,
            faults: None,
            disturb_unit: None,
            disturb_noted: 0,
            disturb_errors: 0,
        }
    }

    /// Installs (or clears) the plane's fault-injection state.
    pub fn set_faults(&mut self, faults: Option<PlaneFaults>) {
        self.faults = faults;
    }

    /// Enables read-disturb accounting: every array sense bumps its
    /// block's disturb counter and every `unit` senses amplify the
    /// block's effective wear by one P/E cycle. `None` (the default)
    /// disables it with zero behavioural footprint.
    pub fn set_disturb_unit(&mut self, unit: Option<u64>) {
        self.disturb_unit = unit.map(|u| u.max(1));
    }

    /// Senses charged to per-block disturb counters.
    pub fn disturb_noted(&self) -> u64 {
        self.disturb_noted
    }

    /// Failed read attempts attributable to disturb amplification alone.
    pub fn disturb_errors(&self) -> u64 {
        self.disturb_errors
    }

    fn check_block(&self, block: u32) -> Result<()> {
        if block >= self.blocks_per_plane {
            return Err(Error::AddressOutOfRange {
                addr: block as u64,
                capacity: self.blocks_per_plane as u64,
            });
        }
        Ok(())
    }

    /// Mutable access to a block, creating it erased on first touch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] for an invalid block index.
    pub fn block_mut(&mut self, block: u32) -> Result<&mut Block> {
        self.check_block(block)?;
        let idx = block as usize;
        if idx >= self.blocks.len() {
            self.blocks.resize_with(idx + 1, || None);
        }
        let pages = self.pages_per_block;
        Ok(self.blocks[idx].get_or_insert_with(|| Block::new(pages)))
    }

    /// Shared access to a block, if it has ever been touched.
    pub fn block(&self, block: u32) -> Option<&Block> {
        self.blocks.get(block as usize).and_then(|b| b.as_ref())
    }

    /// Mutable access to a block only if it has ever been touched.
    fn touched_mut(&mut self, block: u32) -> Option<&mut Block> {
        self.blocks.get_mut(block as usize).and_then(|b| b.as_mut())
    }

    /// Senses one page from the array; returns sense-complete time.
    ///
    /// If the plane's cache register already latches this page (it was
    /// the most recently sensed one), the data streams from the register
    /// without occupying the array — `(time, false)` is returned and the
    /// read is *not* an array access.
    ///
    /// # Errors
    ///
    /// Flash protocol: reading an unprogrammed page is rejected.
    pub fn read_page(&mut self, now: Cycle, block: u32, page: u32) -> Result<Cycle> {
        Ok(self.read_page_traced(now, block, page)?.done)
    }

    /// [`Plane::read_page`] variant reporting whether the array was
    /// actually sensed (`true`) or the cache register served it
    /// (`false`), and how many read-retry steps the sense needed.
    ///
    /// # Errors
    ///
    /// Flash protocol: reading an unprogrammed page is rejected.
    /// Under fault injection, a sense whose raw bit errors stay above the
    /// ECC budget through the whole retry ladder returns
    /// [`Error::UncorrectableRead`]; the failure is transient (the data
    /// is not lost) and an independent later read may succeed.
    pub fn read_page_traced(&mut self, now: Cycle, block: u32, page: u32) -> Result<ReadReport> {
        self.check_block(block)?;
        let programmed = self
            .block(block)
            .map(|b| b.is_programmed(page))
            .unwrap_or(false);
        if !programmed {
            return Err(Error::FlashProtocol(format!(
                "reading unprogrammed page {page} of block {block}"
            )));
        }
        if self.block(block).is_some_and(|b| b.is_torn(page)) {
            // A program interrupted by power loss left detectable garbage;
            // serving it would silently return corrupt data.
            return Err(Error::TornPage {
                block: block as u64,
                page,
            });
        }
        if self.sensed == Some((block, page)) {
            // Register data already passed ECC when it was latched.
            self.register_reads += 1;
            return Ok(ReadReport {
                done: now.max(self.sensed_at),
                sensed: false,
                retries: 0,
            });
        }
        self.reads += 1;
        // Read disturb: the sense stresses the whole block's sibling
        // pages. The pre-sense exposure drives this read's amplification;
        // the counter is charged afterwards.
        let disturb_cycles = match self.disturb_unit {
            Some(unit) => self.block(block).map(|b| b.disturb_reads()).unwrap_or(0) / unit,
            None => 0,
        };
        // Reads preempt programs (suspend-resume): they serialize only
        // against other reads, plus a fixed suspension overhead when a
        // program/erase is in flight.
        let suspend = if self.array.earliest_free() > now {
            SUSPEND_OVERHEAD
        } else {
            Cycle::ZERO
        };
        let mut done = self.read_port.acquire(now, self.timing.read + suspend);
        let mut retries = 0u32;
        if let Some(faults) = self.faults.as_mut() {
            let wear = self
                .blocks
                .get(block as usize)
                .and_then(|b| b.as_ref())
                .map(|b| b.erase_count() as u64)
                .unwrap_or(0);
            // Read-retry ladder: each failed sense re-senses with tuned
            // reference voltages — slower, but far more likely to pass
            // ECC. The time of every failed attempt stays charged to the
            // read port.
            loop {
                let (failed, disturb_hit) =
                    faults.read_attempt_fails_disturbed(wear, disturb_cycles, retries);
                if disturb_hit {
                    self.disturb_errors += 1;
                }
                if !failed {
                    break;
                }
                if retries >= MAX_READ_RETRIES {
                    self.note_disturb(block);
                    // ECC-uncorrectable. The register does not latch a
                    // failed sense, so the previously sensed page is
                    // simply gone and the stored data stays intact.
                    return Err(Error::UncorrectableRead {
                        block: block as u64,
                        page,
                        retries,
                    });
                }
                retries += 1;
                let step = self.timing.read + Cycle(RETRY_STEP_EXTRA_CYCLES * retries as u64);
                done = self.read_port.acquire(done, step);
            }
        }
        self.note_disturb(block);
        self.sensed = Some((block, page));
        self.sensed_at = done;
        Ok(ReadReport {
            done,
            sensed: true,
            retries,
        })
    }

    /// Drops the plane's cache-register latch. A failed sense never
    /// latches; the device's degrading-die penalty uses this to keep
    /// that invariant when it fails a sense after the fact.
    pub fn evict_latch(&mut self) {
        self.sensed = None;
    }

    /// Charges one array sense against `block`'s disturb counter
    /// (no-op unless disturb accounting is enabled).
    fn note_disturb(&mut self, block: u32) {
        if self.disturb_unit.is_none() {
            return;
        }
        if let Some(b) = self.touched_mut(block) {
            b.note_disturb_read();
            self.disturb_noted += 1;
        }
    }

    /// `block`'s current disturb exposure in P/E-equivalent cycles
    /// (zero when disturb accounting is disabled).
    pub fn disturb_cycles(&self, block: u32) -> u64 {
        match self.disturb_unit {
            Some(unit) => self.block(block).map(|b| b.disturb_reads()).unwrap_or(0) / unit,
            None => 0,
        }
    }

    /// Programs the next in-order page of `block`.
    ///
    /// Under fault injection a program can fail verification
    /// ([`ProgramReport::failed`]): the burned page is invalidated, the
    /// block is marked failed (the FTL retires it after migrating live
    /// data), and the caller must re-drive the write elsewhere. The full
    /// program time is still charged.
    ///
    /// # Errors
    ///
    /// Propagates the block's protocol errors (full block).
    pub fn program_next(&mut self, now: Cycle, block: u32) -> Result<ProgramReport> {
        let page = self.block_mut(block)?.program_next()?;
        self.programs += 1;
        // Programming reuses the cache register: the latched page is lost.
        self.sensed = None;
        let done = self.array.acquire(now, self.timing.program);
        let wear = self
            .block(block)
            .map(|b| b.erase_count() as u64)
            .unwrap_or(0);
        let failed = self.faults.as_mut().is_some_and(|f| f.program_fails(wear));
        if failed {
            let b = self.touched_mut(block).expect("block was just programmed");
            b.mark_failed();
            b.invalidate(page);
        }
        Ok(ProgramReport { page, done, failed })
    }

    /// Erases `block`.
    ///
    /// Under fault injection an erase can fail verification
    /// ([`EraseReport::failed`]): the block is marked failed and must be
    /// retired rather than reused. The full erase time is still charged.
    ///
    /// # Errors
    ///
    /// Propagates the block's protocol errors (valid pages remain).
    pub fn erase(&mut self, now: Cycle, block: u32) -> Result<EraseReport> {
        // Capture wear before the erase bumps the count.
        let wear = self
            .block(block)
            .map(|b| b.erase_count() as u64)
            .unwrap_or(0);
        self.block_mut(block)?.erase()?;
        self.erases += 1;
        if matches!(self.sensed, Some((b, _)) if b == block) {
            self.sensed = None;
        }
        let done = self.array.acquire(now, self.timing.erase);
        let failed = self.faults.as_mut().is_some_and(|f| f.erase_fails(wear));
        if failed {
            self.touched_mut(block)
                .expect("block was just erased")
                .mark_failed();
        }
        Ok(EraseReport { done, failed })
    }

    /// Cuts power to the plane at `now`: the cache-register latch is
    /// lost and every block drops its volatile bookkeeping (validity,
    /// role) while tearing in-flight demand programs not covered by the
    /// device's erase barrier `fenced_seq`. Returns the number of pages
    /// torn.
    pub fn power_loss(&mut self, now: Cycle, fenced_seq: u64) -> u64 {
        self.sensed = None;
        self.sensed_at = Cycle::ZERO;
        self.blocks
            .iter_mut()
            .flatten()
            .map(|b| b.power_loss(now, fenced_seq) as u64)
            .sum()
    }

    /// When the array next becomes idle.
    pub fn array_free_at(&self) -> Cycle {
        self.array.earliest_free()
    }

    /// Array reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Reads served from the cache register without an array sense.
    pub fn register_reads(&self) -> u64 {
        self.register_reads
    }

    /// Array programs performed.
    pub fn programs(&self) -> u64 {
        self.programs
    }

    /// Array erases performed.
    pub fn erases(&self) -> u64 {
        self.erases
    }

    /// The media timing this plane was built with.
    pub fn timing(&self) -> FlashCycles {
        self.timing
    }

    /// Pages per block.
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// Blocks in this plane.
    pub fn blocks_per_plane(&self) -> u32 {
        self.blocks_per_plane
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> Plane {
        Plane::new(8, 4, FlashCycles::default())
    }

    #[test]
    fn read_requires_programmed_page() {
        let mut p = plane();
        assert!(matches!(
            p.read_page(Cycle(0), 0, 0),
            Err(Error::FlashProtocol(_))
        ));
        p.program_next(Cycle(0), 0).unwrap();
        assert!(p.read_page(Cycle(0), 0, 0).is_ok());
        assert_eq!(p.reads(), 1);
    }

    #[test]
    fn reads_suspend_programs() {
        let mut p = plane();
        let t1 = p.program_next(Cycle(0), 0).unwrap().done;
        assert_eq!(t1, Cycle(120_000)); // 100us program
                                        // A read issued at t=0 suspends the program instead of waiting
                                        // for it: sense time + suspension overhead.
        let t2 = p.read_page(Cycle(0), 0, 0).unwrap();
        assert_eq!(t2, Cycle(3_600) + SUSPEND_OVERHEAD);
        // With the array idle, reads pay no suspension overhead.
        let t3 = p.read_page(Cycle(200_000), 1, 0);
        assert!(t3.is_err(), "block 1 page 0 unprogrammed");
        p.program_next(Cycle(200_000), 1).unwrap();
        let t4 = p.read_page(Cycle(500_000), 1, 0).unwrap();
        assert_eq!(t4, Cycle(500_000 + 3_600));
    }

    #[test]
    fn programs_serialize_on_array() {
        let mut p = plane();
        let r1 = p.program_next(Cycle(0), 0).unwrap();
        let r2 = p.program_next(Cycle(0), 0).unwrap();
        assert_eq!((r1.page, r1.done), (0, Cycle(120_000)));
        assert_eq!((r2.page, r2.done), (1, Cycle(240_000)));
        assert!(!r1.failed && !r2.failed);
    }

    #[test]
    fn program_erase_cycle() {
        let mut p = plane();
        for _ in 0..4 {
            p.program_next(Cycle(0), 1).unwrap();
        }
        assert!(p.program_next(Cycle(0), 1).is_err());
        for pg in 0..4 {
            p.block_mut(1).unwrap().invalidate(pg);
        }
        let t = p.erase(Cycle(0), 1).unwrap().done;
        assert!(t >= Cycle(1_200_000));
        assert_eq!(p.erases(), 1);
        // Block usable again.
        assert!(p.program_next(Cycle(0), 1).is_ok());
    }

    #[test]
    fn block_bounds_checked() {
        let mut p = plane();
        assert!(matches!(
            p.read_page(Cycle(0), 99, 0),
            Err(Error::AddressOutOfRange { .. })
        ));
        assert!(p.block_mut(99).is_err());
        assert!(p.block(99).is_none());
    }

    #[test]
    fn lazy_blocks() {
        let mut p = plane();
        assert!(p.block(3).is_none());
        p.block_mut(3).unwrap();
        assert!(p.block(3).is_some());
    }

    #[test]
    fn torn_pages_are_never_served() {
        use crate::block::OobMeta;
        use crate::BlockKind;
        let mut p = plane();
        let r = p.program_next(Cycle(0), 0).unwrap();
        p.block_mut(0).unwrap().record_oob(
            r.page,
            OobMeta {
                lpn: 9,
                seq: 1,
                tag: BlockKind::Log,
                programmed_at: r.done,
                demand: true,
            },
        );
        // Power cut before the program completes: the page tears.
        let torn = p.power_loss(Cycle(10), 0);
        assert_eq!(torn, 1);
        assert!(matches!(
            p.read_page(Cycle(500_000), 0, r.page),
            Err(Error::TornPage { block: 0, page }) if page == r.page
        ));
    }

    #[test]
    fn fault_free_plane_reports_no_retries_or_failures() {
        let mut p = plane();
        let r = p.program_next(Cycle(0), 0).unwrap();
        assert!(!r.failed);
        let rd = p.read_page_traced(Cycle(200_000), 0, 0).unwrap();
        assert_eq!(rd.retries, 0);
        assert!(rd.sensed);
    }

    #[test]
    fn eol_reads_retry_and_sometimes_fail_uncorrectably() {
        use crate::fault::{FaultConfig, PlaneFaults};
        let mut p = plane();
        p.set_faults(PlaneFaults::new(&FaultConfig::end_of_life(), 0, 100_000));
        p.program_next(Cycle(0), 0).unwrap();
        let mut retries = 0u64;
        let mut uncorrectable = 0u64;
        let mut t = Cycle(1_000_000);
        for _ in 0..400 {
            // Evict the register latch so each read senses the array.
            p.sensed = None;
            match p.read_page_traced(t, 0, 0) {
                Ok(r) => {
                    retries += r.retries as u64;
                    t = r.done;
                }
                Err(Error::UncorrectableRead { block, page, .. }) => {
                    assert_eq!((block, page), (0, 0));
                    uncorrectable += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(retries > 0, "EOL profile must trigger retries");
        // With an 8 % base rate and 0.25 decay, five consecutive failed
        // senses are ~0.08*0.02*0.005*... — rare but present over 400
        // draws is not guaranteed; only assert the data stayed readable.
        let _ = uncorrectable;
        p.sensed = None;
        assert!(
            (0..50).any(|i| p
                .read_page_traced(Cycle(10_000_000 + i * 10_000), 0, 0)
                .is_ok()),
            "uncorrectable reads are transient, not data loss"
        );
    }

    #[test]
    fn retry_steps_escalate_latency() {
        use crate::fault::{FaultConfig, PlaneFaults};
        // Find a seed whose first sense needs at least one retry, then
        // check the read took longer than a clean sense.
        for seed in 0..64 {
            let mut p = plane();
            let cfg = FaultConfig::end_of_life().with_seed(seed);
            p.set_faults(PlaneFaults::new(&cfg, 0, 100_000));
            p.program_next(Cycle(0), 0).unwrap();
            if let Ok(r) = p.read_page_traced(Cycle(1_000_000), 0, 0) {
                if r.retries > 0 {
                    let clean = Cycle(1_000_000) + p.timing.read;
                    assert!(
                        r.done
                            >= clean
                                + Cycle(
                                    (p.timing.read.raw() + RETRY_STEP_EXTRA_CYCLES)
                                        * r.retries as u64
                                ),
                        "each retry re-senses with an escalating step"
                    );
                    return;
                }
            }
        }
        panic!("no seed in 0..64 produced a retried read under EOL rates");
    }

    #[test]
    fn disturb_accounting_charges_senses_not_register_hits() {
        let mut p = plane();
        p.set_disturb_unit(Some(4));
        p.program_next(Cycle(0), 0).unwrap();
        // First read senses the array and charges the counter…
        p.read_page_traced(Cycle(200_000), 0, 0).unwrap();
        assert_eq!(p.block(0).unwrap().disturb_reads(), 1);
        assert_eq!(p.disturb_noted(), 1);
        // …repeat reads stream from the register latch: no disturb.
        p.read_page_traced(Cycle(300_000), 0, 0).unwrap();
        assert_eq!(p.block(0).unwrap().disturb_reads(), 1);
        // 4 senses = one P/E-equivalent cycle of exposure.
        for i in 0..3 {
            p.sensed = None;
            p.read_page_traced(Cycle(400_000 + i), 0, 0).unwrap();
        }
        assert_eq!(p.disturb_cycles(0), 1);
    }

    #[test]
    fn disturb_off_keeps_counters_untouched() {
        let mut p = plane();
        p.program_next(Cycle(0), 0).unwrap();
        for i in 0..8 {
            p.sensed = None;
            p.read_page_traced(Cycle(200_000 + i), 0, 0).unwrap();
        }
        assert_eq!(p.block(0).unwrap().disturb_reads(), 0);
        assert_eq!(p.disturb_noted(), 0);
        assert_eq!(p.disturb_errors(), 0);
        assert_eq!(p.disturb_cycles(0), 0);
    }

    #[test]
    fn heavy_disturb_exposure_triggers_attributable_errors() {
        use crate::fault::{FaultConfig, PlaneFaults};
        let mut p = plane();
        p.set_faults(PlaneFaults::new(&FaultConfig::nominal(), 0, 100_000));
        // One sense = one full P/E cycle of exposure: pathological, but
        // it drives the amplified rate to the wear ceiling fast.
        p.set_disturb_unit(Some(1));
        p.program_next(Cycle(0), 0).unwrap();
        for _ in 0..100_000 {
            p.block_mut(0).unwrap().note_disturb_read();
        }
        let mut t = Cycle(1_000_000);
        for _ in 0..2_000 {
            p.sensed = None;
            match p.read_page_traced(t, 0, 0) {
                Ok(r) => t = r.done,
                Err(_) => t += Cycle(10_000),
            }
        }
        assert!(
            p.disturb_errors() > 0,
            "full-wear disturb exposure must cause attributable errors"
        );
    }

    #[test]
    fn eol_program_failures_burn_page_and_mark_block() {
        use crate::fault::{FaultConfig, PlaneFaults};
        for seed in 0..64 {
            let mut p = Plane::new(8, 64, FlashCycles::default());
            let cfg = FaultConfig::end_of_life().with_seed(seed);
            p.set_faults(PlaneFaults::new(&cfg, 0, 100_000));
            for _ in 0..64 {
                let r = p.program_next(Cycle(0), 0).unwrap();
                if r.failed {
                    let b = p.block(0).unwrap();
                    assert!(b.is_failed());
                    assert!(!b.is_valid(r.page), "burned page is invalid");
                    assert!(b.is_programmed(r.page), "the page slot is consumed");
                    return;
                }
            }
        }
        panic!("no program failure in 64 seeds x 64 programs at EOL rates");
    }
}
