//! A Z-NAND package: dies × planes, I/O ports and the register
//! interconnect (paper §IV-C).
//!
//! The package owns the timing composition of everything *inside* the
//! flash chip: array sensing/programming (per-plane), the two I/O ports,
//! and — for register-cache evictions whose holder plane differs from the
//! page's home plane — the register migration network: **SWnet** (data
//! leaves the package and re-enters through the flash network), **HW-FCnet**
//! (dedicated point-to-point wires) or **HW-NiF** (shared I/O bus + data
//! bus per plane, a local network between data registers).

use zng_sim::Resource;
use zng_types::{ids::ChannelId, Cycle, Result};

use crate::network::FlashNetwork;
use crate::plane::{EraseReport, Plane, ProgramReport, ReadReport};
use crate::registers::{Evicted, RegisterCache, WriteOutcome};
use crate::timing::FlashCycles;

/// How the flash registers of a package are interconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegisterTopology {
    /// Registers are private to their plane (the Fig. 13 "baseline").
    Private,
    /// Software grouping: remote evictions migrate through the flash
    /// network router (consumes flash-network bandwidth).
    SwNet,
    /// Fully-connected hardware network: free parallelism, unaffordable
    /// wiring cost.
    FcNet,
    /// Network-in-Flash: two buses per plane group plus a local
    /// data-register network; ~98 % of FCnet at low cost.
    NiF,
}

impl RegisterTopology {
    /// Whether registers across planes form one associative pool.
    pub fn is_grouped(self) -> bool {
        !matches!(self, RegisterTopology::Private)
    }
}

impl std::fmt::Display for RegisterTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RegisterTopology::Private => "baseline",
            RegisterTopology::SwNet => "SWnet",
            RegisterTopology::FcNet => "HW-FCnet",
            RegisterTopology::NiF => "HW-NiF",
        };
        f.write_str(s)
    }
}

/// A buffered sector write's outcome at package level.
#[derive(Debug, Clone, Copy)]
pub struct BufferedWrite {
    /// When the sector has landed in a register (warp can retire).
    pub done: Cycle,
    /// A victim page that the caller's FTL must now program to flash.
    /// Any register-migration cost is already folded into
    /// `migration_done`.
    pub eviction: Option<PendingProgram>,
    /// The thrashing checker's verdict after this write.
    pub thrashing: bool,
}

/// An evicted register page awaiting an FTL-directed array program.
#[derive(Debug, Clone, Copy)]
pub struct PendingProgram {
    /// Logical page key held by the register.
    pub key: u64,
    /// Package-local home plane index.
    pub home_plane: usize,
    /// Earliest time the data is available at the home plane.
    pub ready_at: Cycle,
    /// Sector writes merged while resident (write-redundancy accounting).
    pub writes_merged: u64,
}

/// One flash package.
#[derive(Debug, Clone)]
pub struct FlashPackage {
    channel: ChannelId,
    dies: usize,
    planes_per_die: usize,
    page_bytes: usize,
    planes: Vec<Plane>,
    /// Two ONFI I/O ports, 8 B wide each (Table I).
    io_ports: Resource,
    io_bytes_per_cycle: f64,
    registers: RegisterCache,
    topology: RegisterTopology,
    /// NiF local network between data registers (parallel lanes).
    nif_lanes: Resource,
    migrations: u64,
}

impl FlashPackage {
    /// Builds a package for `channel` with the given dimensions, media
    /// timing, per-plane register count and register interconnect.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        channel: ChannelId,
        dies: usize,
        planes_per_die: usize,
        blocks_per_plane: u32,
        pages_per_block: u32,
        page_bytes: usize,
        registers_per_plane: usize,
        io_ports: usize,
        timing: FlashCycles,
        topology: RegisterTopology,
    ) -> FlashPackage {
        let plane_count = dies * planes_per_die;
        let registers = if topology.is_grouped() {
            RegisterCache::grouped(plane_count, registers_per_plane)
        } else {
            RegisterCache::private(plane_count, registers_per_plane)
        };
        FlashPackage {
            channel,
            dies,
            planes_per_die,
            page_bytes,
            planes: (0..plane_count)
                .map(|_| Plane::new(blocks_per_plane, pages_per_block, timing))
                .collect(),
            io_ports: Resource::new(io_ports),
            io_bytes_per_cycle: 8.0,
            registers,
            topology,
            // NiF allows several simultaneous local migrations.
            nif_lanes: Resource::new(4),
            migrations: 0,
        }
    }

    /// Package-local plane index for (die, plane).
    pub fn plane_index(&self, die: usize, plane: usize) -> usize {
        die * self.planes_per_die + plane
    }

    /// Immutable access to a plane by package-local index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn plane(&self, idx: usize) -> &Plane {
        &self.planes[idx]
    }

    /// Mutable access to a plane by package-local index.
    pub fn plane_mut(&mut self, idx: usize) -> &mut Plane {
        &mut self.planes[idx]
    }

    /// Number of planes in the package.
    pub fn plane_count(&self) -> usize {
        self.planes.len()
    }

    /// Number of dies.
    pub fn dies(&self) -> usize {
        self.dies
    }

    /// The register interconnect in use.
    pub fn topology(&self) -> RegisterTopology {
        self.topology
    }

    /// The register cache (for inspection).
    pub fn registers(&self) -> &RegisterCache {
        &self.registers
    }

    fn io_transfer(&mut self, now: Cycle, bytes: usize) -> Cycle {
        let service = Cycle((bytes as f64 / self.io_bytes_per_cycle).ceil() as u64);
        self.io_ports.acquire(now, service)
    }

    /// Reads a page from the array of plane `idx` (or its cache register,
    /// if latched) and streams it out of an I/O port; the report's `done`
    /// is when the page is at the package pins.
    ///
    /// # Errors
    ///
    /// Flash protocol errors (unprogrammed page, bad block index), or
    /// [`zng_types::Error::UncorrectableRead`] under fault injection.
    pub fn read_page_from_array(
        &mut self,
        now: Cycle,
        plane_idx: usize,
        block: u32,
        page: u32,
    ) -> Result<ReadReport> {
        let r = self.planes[plane_idx].read_page_traced(now, block, page)?;
        Ok(ReadReport {
            done: self.io_transfer(r.done, self.page_bytes),
            ..r
        })
    }

    /// Serves `bytes` of a register-resident page through an I/O port.
    pub fn read_from_register(&mut self, now: Cycle, bytes: usize) -> Cycle {
        self.io_transfer(now, bytes)
    }

    /// Whether a register currently holds logical page `key`.
    pub fn register_holds(&self, key: u64) -> bool {
        self.registers.contains(key)
    }

    /// Streams a full page in through an I/O port and programs it to the
    /// next in-order page of `block` on plane `idx`.
    ///
    /// # Errors
    ///
    /// Flash protocol errors (full block).
    pub fn program_page(
        &mut self,
        now: Cycle,
        plane_idx: usize,
        block: u32,
    ) -> Result<ProgramReport> {
        let arrived = self.io_transfer(now, self.page_bytes);
        self.planes[plane_idx].program_next(arrived, block)
    }

    /// Programs a page whose data is already inside the package (register
    /// eviction write-back): no I/O port crossing.
    ///
    /// # Errors
    ///
    /// Flash protocol errors (full block).
    pub fn program_page_internal(
        &mut self,
        now: Cycle,
        plane_idx: usize,
        block: u32,
    ) -> Result<ProgramReport> {
        self.planes[plane_idx].program_next(now, block)
    }

    /// Erases `block` on plane `idx`.
    ///
    /// # Errors
    ///
    /// Flash protocol errors (valid pages remain).
    pub fn erase_block(&mut self, now: Cycle, plane_idx: usize, block: u32) -> Result<EraseReport> {
        self.planes[plane_idx].erase(now, block)
    }

    /// Accepts one 128 B sector write for logical page `key`, homed on
    /// plane `home_plane`, into the register cache.
    ///
    /// On eviction, the migration cost implied by the register topology is
    /// charged here; the returned [`PendingProgram`] tells the caller's
    /// FTL to program the victim (at `ready_at` or later).
    pub fn buffered_write(
        &mut self,
        now: Cycle,
        key: u64,
        home_plane: usize,
        sector_bytes: usize,
        net: &mut FlashNetwork,
    ) -> BufferedWrite {
        let landed = self.io_transfer(now, sector_bytes);
        let outcome: WriteOutcome = self.registers.write(key, home_plane);
        let eviction = outcome.evicted.map(|ev| {
            let ready_at = self.migration_cost(landed, &ev, net);
            PendingProgram {
                key: ev.key,
                home_plane: ev.home_plane,
                ready_at,
                writes_merged: ev.writes_merged,
            }
        });
        BufferedWrite {
            done: landed,
            eviction,
            thrashing: self.registers.is_thrashing(),
        }
    }

    /// Charges the register-to-home-plane migration for an eviction and
    /// returns when the data is ready at the home plane.
    fn migration_cost(&mut self, now: Cycle, ev: &Evicted, net: &mut FlashNetwork) -> Cycle {
        if ev.holder_plane == ev.home_plane {
            return now;
        }
        self.migrations += 1;
        match self.topology {
            RegisterTopology::Private => now, // unreachable: private never spills
            RegisterTopology::SwNet => {
                // Out through an I/O port to the controller's router buffer
                // and back in: two flash-network link reservations.
                let out = self.io_transfer(now, self.page_bytes);
                let back = net.migrate(out, self.channel, self.channel, self.page_bytes);
                self.io_transfer(back, self.page_bytes)
            }
            RegisterTopology::FcNet => {
                // Dedicated point-to-point wires: pure wire delay, no
                // shared resource (64 B/cycle effective width).
                now + Cycle((self.page_bytes / 64) as u64)
            }
            RegisterTopology::NiF => {
                // Register -> data register -> remote data register ->
                // remote register, over the 8 B local network lanes. Does
                // not touch the flash network.
                let service = Cycle((self.page_bytes as f64 / 8.0).ceil() as u64);
                self.nif_lanes.acquire(now, service)
            }
        }
    }

    /// Drains all register-resident pages (GC / flush); the caller
    /// programs each returned page.
    pub fn flush_registers(&mut self, now: Cycle, net: &mut FlashNetwork) -> Vec<PendingProgram> {
        let evicted = self.registers.flush_all();
        evicted
            .into_iter()
            .map(|ev| {
                let ready_at = self.migration_cost(now, &ev, net);
                PendingProgram {
                    key: ev.key,
                    home_plane: ev.home_plane,
                    ready_at,
                    writes_merged: ev.writes_merged,
                }
            })
            .collect()
    }

    /// Drops a stale register entry without write-back.
    pub fn discard_register(&mut self, key: u64) -> bool {
        self.registers.discard(key)
    }

    /// Cuts power to the package at `now`: the register write cache is
    /// dropped without write-back and every plane loses its volatile
    /// state (`fenced_seq` is the device-wide erase barrier, see
    /// [`crate::block::Block::power_loss`]). Returns
    /// `(pages_torn, register_pages_lost)`.
    pub fn power_loss(&mut self, now: Cycle, fenced_seq: u64) -> (u64, u64) {
        let dropped = self.registers.power_loss() as u64;
        let torn = self
            .planes
            .iter_mut()
            .map(|p| p.power_loss(now, fenced_seq))
            .sum::<u64>();
        (torn, dropped)
    }

    /// Cross-plane register migrations performed.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Total array reads across all planes.
    pub fn array_reads(&self) -> u64 {
        self.planes.iter().map(|p| p.reads()).sum()
    }

    /// Total array programs across all planes.
    pub fn array_programs(&self) -> u64 {
        self.planes.iter().map(|p| p.programs()).sum()
    }

    /// Total array erases across all planes.
    pub fn array_erases(&self) -> u64 {
        self.planes.iter().map(|p| p.erases()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::FlashTiming;
    use zng_types::Freq;

    fn pkg(topology: RegisterTopology) -> (FlashPackage, FlashNetwork) {
        let timing = FlashTiming::znand().to_cycles(Freq::default());
        (
            FlashPackage::new(ChannelId(0), 2, 2, 16, 8, 4096, 2, 2, timing, topology),
            FlashNetwork::mesh(1, 8.0, Cycle(2)),
        )
    }

    #[test]
    fn plane_indexing() {
        let (p, _) = pkg(RegisterTopology::NiF);
        assert_eq!(p.plane_index(0, 0), 0);
        assert_eq!(p.plane_index(1, 1), 3);
        assert_eq!(p.plane_count(), 4);
        assert_eq!(p.dies(), 2);
    }

    #[test]
    fn read_includes_sense_and_io() {
        let (mut p, _) = pkg(RegisterTopology::NiF);
        p.program_page(Cycle(0), 0, 0).unwrap();
        let r = p.read_page_from_array(Cycle(200_000), 0, 0, 0).unwrap();
        // 3600 sense + 512 io transfer.
        assert!(r.sensed);
        assert_eq!(r.done, Cycle(200_000 + 3_600 + 512));
        // A repeat read of the same page streams from the cache register.
        let r2 = p.read_page_from_array(r.done, 0, 0, 0).unwrap();
        assert!(!r2.sensed);
        assert!(r2.done - r.done < Cycle(3_600));
    }

    #[test]
    fn buffered_write_merges() {
        let (mut p, mut net) = pkg(RegisterTopology::NiF);
        let a = p.buffered_write(Cycle(0), 42, 0, 128, &mut net);
        assert!(a.eviction.is_none());
        let b = p.buffered_write(Cycle(0), 42, 0, 128, &mut net);
        assert!(b.eviction.is_none());
        assert_eq!(p.registers().hits(), 1);
    }

    #[test]
    fn eviction_emits_pending_program() {
        // 4 planes x 2 regs grouped = 8 entries; the 9th distinct page
        // evicts the LRU.
        let (mut p, mut net) = pkg(RegisterTopology::NiF);
        let mut evictions = 0;
        for k in 0..9u64 {
            let r = p.buffered_write(Cycle(0), k, 0, 128, &mut net);
            if let Some(pp) = r.eviction {
                evictions += 1;
                assert_eq!(pp.key, 0); // LRU order
                assert_eq!(pp.home_plane, 0);
            }
        }
        assert_eq!(evictions, 1);
    }

    /// Fills the 8-register pool with pages homed on plane 0 (keys 0 and 1
    /// land locally, the rest spill to remote planes), refreshes the two
    /// local entries, then inserts a fresh page so the LRU victim is
    /// remote-held and a migration is required.
    fn force_remote_eviction(p: &mut FlashPackage, net: &mut FlashNetwork) {
        for k in 0..8u64 {
            p.buffered_write(Cycle(0), k, 0, 128, net);
        }
        p.buffered_write(Cycle(0), 0, 0, 128, net);
        p.buffered_write(Cycle(0), 1, 0, 128, net);
        let r = p.buffered_write(Cycle(0), 100, 0, 128, net);
        let ev = r.eviction.expect("full cache must evict");
        assert_ne!(ev.home_plane, 1_000_000); // touched to keep ev used
    }

    #[test]
    fn swnet_migration_consumes_network() {
        let (mut p, mut net) = pkg(RegisterTopology::SwNet);
        force_remote_eviction(&mut p, &mut net);
        assert!(p.migrations() > 0);
        assert!(
            net.total_bytes_moved() > 0,
            "SWnet must move pages through the flash network"
        );
    }

    #[test]
    fn fcnet_migration_is_cheap_and_off_network() {
        let (mut p, mut net) = pkg(RegisterTopology::FcNet);
        force_remote_eviction(&mut p, &mut net);
        assert_eq!(
            net.total_bytes_moved(),
            0,
            "FCnet never touches the flash network"
        );
        assert!(p.migrations() > 0);
    }

    #[test]
    fn flush_registers_returns_all() {
        let (mut p, mut net) = pkg(RegisterTopology::NiF);
        for k in 0..5u64 {
            p.buffered_write(Cycle(0), k, (k % 4) as usize, 128, &mut net);
        }
        let pending = p.flush_registers(Cycle(10), &mut net);
        assert_eq!(pending.len(), 5);
        assert!(p.registers().is_empty());
    }

    #[test]
    fn internal_program_skips_io_port() {
        let (mut p, _) = pkg(RegisterTopology::NiF);
        let t_ext = p.program_page(Cycle(0), 0, 0).unwrap().done;
        let t_int = p.program_page_internal(Cycle(0), 1, 0).unwrap().done;
        assert!(t_int < t_ext);
    }
}
