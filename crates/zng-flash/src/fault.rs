//! Fault injection: a wear-dependent raw-bit-error-rate (RBER) model.
//!
//! Z-NAND keeps conventional NAND's failure physics even though its
//! latencies are an order of magnitude lower: raw bit errors grow with a
//! block's program/erase count, reads that exceed the ECC correction
//! budget must be retried with tuned reference voltages, and blocks whose
//! programs or erases fail verification are retired for good. This module
//! models those mechanisms as *probabilities per operation*:
//!
//! * **Reads** fail *transiently*. Each failed attempt escalates to the
//!   next read-retry step (slower, finer-grained sensing) with a
//!   geometrically decaying failure probability; running out of steps is
//!   an ECC-uncorrectable read ([`zng_types::Error::UncorrectableRead`]).
//!   The data itself survives — a later, independent read may succeed.
//! * **Programs and erases** fail *permanently*: the affected block stops
//!   accepting new data and must be retired by the FTL.
//!
//! All draws come from a per-plane deterministic RNG seeded via
//! [`zng_sim::rng::derive_seed`], so runs remain reproducible and the
//! [`FaultProfile::None`] preset performs no draws at all (bit-identical
//! to a fault-free build).

use rand::rngs::SmallRng;
use rand::Rng;

use zng_sim::rng::{derive_seed, seeded};
use zng_types::{Error, Result};

/// How aggressively faults are injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultProfile {
    /// No faults; every RNG draw is skipped (bit-identical baseline).
    #[default]
    None,
    /// Mid-life device: occasional read retries, rare program/erase
    /// failures. Uncorrectable reads are vanishingly rare.
    Nominal,
    /// Worn device near its endurance limit: frequent retries, routine
    /// program/erase failures, blocks retiring under sustained writes.
    EndOfLife,
}

impl FaultProfile {
    /// Parses a CLI-style profile name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for unrecognised names.
    pub fn parse(s: &str) -> Result<FaultProfile> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "off" => Ok(FaultProfile::None),
            "nominal" => Ok(FaultProfile::Nominal),
            "end-of-life" | "eol" => Ok(FaultProfile::EndOfLife),
            other => Err(Error::invalid_config(
                "fault profile",
                format!("unknown profile `{other}` (expected none|nominal|end-of-life)"),
            )),
        }
    }
}

impl std::fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultProfile::None => write!(f, "none"),
            FaultProfile::Nominal => write!(f, "nominal"),
            FaultProfile::EndOfLife => write!(f, "end-of-life"),
        }
    }
}

/// A single die degrading toward death over a fixed cycle window.
///
/// Models the wear-out signature real SSD health monitors key on:
/// between `onset` and `death` the die's raw bit-error rate and
/// program-failure rate ramp linearly from nominal to certain failure;
/// at `death` the die stops returning data entirely. Unlike the
/// instant `fail_die` fault (a clean amputation), a degrading die is
/// *noisy* on the way down — exactly the telemetry a predictive health
/// monitor needs to flag it before the cliff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DegradingDie {
    /// Channel of the degrading die.
    pub channel: u16,
    /// Die index within the channel.
    pub die: u16,
    /// Cycle at which degradation begins (severity 0).
    pub onset: u64,
    /// Cycle at which the die dies outright (severity reaches 1 just
    /// before). Must be strictly greater than `onset`.
    pub death: u64,
}

impl DegradingDie {
    /// Degradation severity at `now`: 0 before `onset`, ramping
    /// linearly to 1 at `death` (and clamped there after).
    pub fn severity(&self, now: u64) -> f64 {
        if now < self.onset {
            return 0.0;
        }
        let span = self.death.saturating_sub(self.onset).max(1);
        ((now - self.onset) as f64 / span as f64).min(1.0)
    }

    /// Whether the die has reached its death cycle at `now`.
    pub fn is_dead(&self, now: u64) -> bool {
        now >= self.death
    }

    /// Whether this fault targets `(channel, die)`.
    pub fn matches(&self, channel: u16, die: u16) -> bool {
        self.channel == channel && self.die == die
    }

    /// Rejects an empty degradation window.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `death <= onset`.
    pub fn validate(&self) -> Result<()> {
        if self.death <= self.onset {
            return Err(Error::invalid_config(
                "degrading die",
                format!(
                    "death cycle {} must exceed onset cycle {}",
                    self.death, self.onset
                ),
            ));
        }
        Ok(())
    }
}

/// Fault-injection configuration carried by `SimConfig`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Which RBER preset to apply.
    pub profile: FaultProfile,
    /// Master seed; each plane derives its own stream from this.
    pub seed: u64,
    /// Optional single die degrading toward death (independent of the
    /// profile; `None` performs no draws and is bit-identical).
    pub degrading: Option<DegradingDie>,
}

impl FaultConfig {
    /// No fault injection (the default).
    pub fn none() -> FaultConfig {
        FaultConfig {
            profile: FaultProfile::None,
            seed: 42,
            degrading: None,
        }
    }

    /// Mid-life fault rates.
    pub fn nominal() -> FaultConfig {
        FaultConfig {
            profile: FaultProfile::Nominal,
            seed: 42,
            degrading: None,
        }
    }

    /// End-of-life fault rates.
    pub fn end_of_life() -> FaultConfig {
        FaultConfig {
            profile: FaultProfile::EndOfLife,
            seed: 42,
            degrading: None,
        }
    }

    /// The same profile with a different master seed.
    pub fn with_seed(mut self, seed: u64) -> FaultConfig {
        self.seed = seed;
        self
    }

    /// The same configuration with one die degrading toward death.
    pub fn with_degrading(mut self, degrading: DegradingDie) -> FaultConfig {
        self.degrading = Some(degrading);
        self
    }
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::none()
    }
}

/// Raw fault-rate parameters behind a [`FaultProfile`].
///
/// Failure probabilities scale linearly with *wear fraction* — the
/// block's erase count over the media's P/E rating — so a fresh device
/// sees only the base rates while a worn one degrades smoothly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultParams {
    /// First-attempt read failure probability on a fresh block.
    pub read_fail_base: f64,
    /// Additional read failure probability at 100 % wear.
    pub read_fail_wear: f64,
    /// Multiplier applied to the read failure probability per retry
    /// step (each tuned re-sense is much more likely to succeed).
    pub retry_decay: f64,
    /// Program failure probability on a fresh block.
    pub program_fail_base: f64,
    /// Additional program failure probability at 100 % wear.
    pub program_fail_wear: f64,
    /// Erase failure probability on a fresh block.
    pub erase_fail_base: f64,
    /// Additional erase failure probability at 100 % wear.
    pub erase_fail_wear: f64,
}

impl FaultParams {
    /// Parameters for `profile`, or `None` for [`FaultProfile::None`].
    pub fn for_profile(profile: FaultProfile) -> Option<FaultParams> {
        match profile {
            FaultProfile::None => None,
            FaultProfile::Nominal => Some(FaultParams {
                read_fail_base: 2e-3,
                read_fail_wear: 0.05,
                retry_decay: 0.1,
                program_fail_base: 1e-5,
                program_fail_wear: 1e-3,
                erase_fail_base: 1e-5,
                erase_fail_wear: 1e-3,
            }),
            FaultProfile::EndOfLife => Some(FaultParams {
                read_fail_base: 0.08,
                read_fail_wear: 0.4,
                retry_decay: 0.25,
                program_fail_base: 0.05,
                program_fail_wear: 0.3,
                erase_fail_base: 0.25,
                erase_fail_wear: 0.5,
            }),
        }
    }
}

/// Silent-data-corruption (SDC) injection: bit flips *below* the ECC
/// model. Unlike the loud RBER faults above, a miscorrection leaves the
/// sense looking successful — the ECC engine "fixed" the page into the
/// wrong codeword — so only an end-to-end payload checksum can catch it.
/// Disabled by default; [`SdcConfig::off`] performs no RNG draws and is
/// bit-identical to a build without the subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdcConfig {
    /// Base probability that a successful array sense returns silently
    /// miscorrected data, before wear/retention scaling. `0.0` disables
    /// the stochastic stream entirely (no draws).
    pub rate: f64,
    /// When `Some(n)`, the page stamped with device program sequence `n`
    /// is deterministically written corrupted (a miscorrected program
    /// verify) — a zero-RNG single-shot for reproducible tests.
    pub sdc_at: Option<u64>,
    /// Master seed; each plane derives its own SDC stream from this,
    /// salted so it never overlaps the RBER streams.
    pub seed: u64,
}

impl SdcConfig {
    /// No silent corruption (the default): zero draws, bit-identical.
    pub fn off() -> SdcConfig {
        SdcConfig {
            rate: 0.0,
            sdc_at: None,
            seed: 42,
        }
    }

    /// Whether any injection mechanism is armed.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0 || self.sdc_at.is_some()
    }
}

impl Default for SdcConfig {
    fn default() -> SdcConfig {
        SdcConfig::off()
    }
}

/// Seed salt separating per-plane SDC streams from the RBER streams, so
/// arming SDC never perturbs the existing fault draws.
const SDC_SEED_SALT: u64 = 0x5dc0_5dc0_5dc0_5dc0;

/// Retention scaling: the age (cycles since program) at which the
/// miscorrection probability has doubled. Charge loss accumulates with
/// time on the shelf, so old pages are likelier to slip past ECC.
pub const SDC_RETENTION_DOUBLING_CYCLES: u64 = 100_000_000;

/// Per-plane silent-corruption state: the armed rate plus a private RNG
/// stream decorrelated from the plane's RBER stream.
#[derive(Debug, Clone)]
pub struct PlaneSdc {
    rate: f64,
    pe_limit: u64,
    rng: SmallRng,
}

impl PlaneSdc {
    /// Builds the SDC state for one plane, or `None` when the rate is
    /// zero (the deterministic `sdc_at` single-shot needs no RNG and is
    /// handled by the device). `plane_tag` must match the plane's RBER
    /// tag; the salt keeps the streams independent.
    pub fn new(cfg: &SdcConfig, plane_tag: u64, pe_limit: u64) -> Option<PlaneSdc> {
        if cfg.rate <= 0.0 {
            return None;
        }
        Some(PlaneSdc {
            rate: cfg.rate,
            pe_limit: pe_limit.max(1),
            rng: seeded(derive_seed(cfg.seed ^ SDC_SEED_SALT, plane_tag)),
        })
    }

    /// Draws whether a *successful* sense of a page with the given block
    /// wear and retention age returns silently miscorrected data. The
    /// probability grows linearly with wear (worn cells have narrower
    /// margins) and with shelf age (charge loss), so cold, old data on a
    /// tired block is the likeliest victim — matching the physics the
    /// patrol scrubber exists to fight.
    pub fn miscorrects(&mut self, erase_count: u64, age_cycles: u64) -> bool {
        self.miscorrects_disturbed(erase_count, age_cycles, 0).0
    }

    /// Like [`PlaneSdc::miscorrects`] with read-disturb amplification:
    /// `disturb_cycles` extra P/E-equivalent cycles of exposure raise the
    /// effective wear. One uniform draw decides both the amplified
    /// outcome and whether wear + retention alone would have miscorrected,
    /// so the second element — "attributable to disturb alone" — is exact
    /// and passing zero is bit-identical to the plain method.
    pub fn miscorrects_disturbed(
        &mut self,
        erase_count: u64,
        age_cycles: u64,
        disturb_cycles: u64,
    ) -> (bool, bool) {
        let retention = 1.0 + age_cycles as f64 / SDC_RETENTION_DOUBLING_CYCLES as f64;
        let p_of = |erase: u64| {
            let wear = (erase as f64 / self.pe_limit as f64).min(1.0);
            (self.rate * (0.25 + 0.75 * wear) * retention).clamp(0.0, 1.0)
        };
        let p_base = p_of(erase_count);
        let p_amp = p_of(erase_count.saturating_add(disturb_cycles));
        let u: f64 = self.rng.gen();
        (u < p_amp, u >= p_base && u < p_amp)
    }
}

/// Read-disturb amplification: every this many array senses against a
/// block add the RBER/SDC exposure of one extra P/E cycle to its pages,
/// until an erase restores the charge. Pass-gate stress from a sense
/// drifts *sibling* pages' thresholds, so hot read-only blocks (GraphBIG
/// re-reads a page ~42× per run, paper Fig. 5) age without ever being
/// written — the failure mode background refresh exists to repair.
pub const DISTURB_READS_PER_CYCLE: u64 = 16;

/// Read-retry ladder depth: attempts beyond the initial sense before a
/// read is declared ECC-uncorrectable.
pub const MAX_READ_RETRIES: u32 = 4;

/// Extra sense cycles charged per retry step (each step re-senses with
/// tighter reference voltages, on top of the nominal read time).
pub const RETRY_STEP_EXTRA_CYCLES: u64 = 900;

/// Per-plane fault state: the profile's rates plus a private RNG stream.
#[derive(Debug, Clone)]
pub struct PlaneFaults {
    params: FaultParams,
    pe_limit: u64,
    rng: SmallRng,
}

impl PlaneFaults {
    /// Builds the fault state for one plane, or `None` when the profile
    /// injects nothing. `plane_tag` must be unique per plane so streams
    /// do not correlate across the device; `pe_limit` is the media's P/E
    /// rating used to convert erase counts into wear fractions.
    pub fn new(cfg: &FaultConfig, plane_tag: u64, pe_limit: u64) -> Option<PlaneFaults> {
        let params = FaultParams::for_profile(cfg.profile)?;
        Some(PlaneFaults {
            params,
            pe_limit: pe_limit.max(1),
            rng: seeded(derive_seed(cfg.seed, plane_tag)),
        })
    }

    /// Wear fraction for a block: erase count over the P/E rating.
    fn wear_fraction(&self, erase_count: u64) -> f64 {
        (erase_count as f64 / self.pe_limit as f64).min(1.0)
    }

    /// Draws whether read-retry `step` (0 = initial sense) fails on a
    /// block with the given wear.
    pub fn read_attempt_fails(&mut self, erase_count: u64, step: u32) -> bool {
        self.read_attempt_fails_disturbed(erase_count, 0, step).0
    }

    /// Like [`PlaneFaults::read_attempt_fails`] with read-disturb
    /// amplification folded in: `disturb_cycles` extra P/E-equivalent
    /// cycles of exposure raise the effective wear. One uniform draw
    /// decides both outcomes, so the second element — "this failure is
    /// attributable to disturb alone" — is exact, and passing zero is
    /// bit-identical (same draw, same stream) to the plain method.
    pub fn read_attempt_fails_disturbed(
        &mut self,
        erase_count: u64,
        disturb_cycles: u64,
        step: u32,
    ) -> (bool, bool) {
        let decay = self.params.retry_decay.powi(step as i32);
        let p_of = |wear: f64| {
            ((self.params.read_fail_base + self.params.read_fail_wear * wear) * decay)
                .clamp(0.0, 1.0)
        };
        let p_base = p_of(self.wear_fraction(erase_count));
        let p_amp = p_of(self.wear_fraction(erase_count.saturating_add(disturb_cycles)));
        let u: f64 = self.rng.gen();
        (u < p_amp, u >= p_base && u < p_amp)
    }

    /// Draws whether a page program fails verification (permanent).
    pub fn program_fails(&mut self, erase_count: u64) -> bool {
        let wear = self.wear_fraction(erase_count);
        let p = self.params.program_fail_base + self.params.program_fail_wear * wear;
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Draws whether a block erase fails verification (permanent).
    pub fn erase_fails(&mut self, erase_count: u64) -> bool {
        let wear = self.wear_fraction(erase_count);
        let p = self.params.erase_fail_base + self.params.erase_fail_wear * wear;
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }
}

/// Seed salt separating the degrading die's draw stream from the
/// per-plane RBER and SDC streams, so arming a degrading die never
/// perturbs the existing fault draws.
const DEGRADE_SEED_SALT: u64 = 0xdeca_1dea_deca_1dea;

/// Runtime state of one degrading die: the configured window plus a
/// private RNG stream and the latched death flag.
///
/// All outcomes scale with [`DegradingDie::severity`] at the operation's
/// cycle, so the die is indistinguishable from healthy before `onset`,
/// increasingly noisy through the window, and dead after `death`.
#[derive(Debug, Clone)]
pub struct DegradeState {
    cfg: DegradingDie,
    rng: SmallRng,
    dead: bool,
}

impl DegradeState {
    /// Builds the state for `cfg.degrading`, or `None` when no die is
    /// degrading (zero draws, bit-identical).
    pub fn new(cfg: &FaultConfig) -> Option<DegradeState> {
        let d = cfg.degrading?;
        let tag = ((d.channel as u64) << 16) | d.die as u64;
        Some(DegradeState {
            cfg: d,
            rng: seeded(derive_seed(cfg.seed ^ DEGRADE_SEED_SALT, tag)),
            dead: false,
        })
    }

    /// The configured degradation window.
    pub fn config(&self) -> DegradingDie {
        self.cfg
    }

    /// Whether this fault targets `(channel, die)`.
    pub fn matches(&self, channel: u16, die: u16) -> bool {
        self.cfg.matches(channel, die)
    }

    /// Whether the death cycle has been latched (see
    /// [`DegradeState::tick`]).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Latches death once `now` reaches the configured death cycle.
    /// Returns `true` exactly once, on the transition, so the caller can
    /// run its die-death bookkeeping a single time.
    pub fn tick(&mut self, now: u64) -> bool {
        if !self.dead && self.cfg.is_dead(now) {
            self.dead = true;
            return true;
        }
        false
    }

    /// Draws the extra read-retry ladder steps a sense on the degrading
    /// die pays at `now`, and whether the ladder is exhausted outright
    /// (uncorrectable). Each successive step clears with probability
    /// `1 - severity`, so a die late in its window burns most of the
    /// ladder on most reads — the retry-depth EWMA signal the health
    /// monitor watches.
    pub fn read_penalty(&mut self, now: u64) -> (u32, bool) {
        let s = self.cfg.severity(now);
        if s <= 0.0 {
            return (0, false);
        }
        let mut steps = 0u32;
        while steps < MAX_READ_RETRIES {
            if self.rng.gen::<f64>() >= s {
                return (steps, false);
            }
            steps += 1;
        }
        (steps, true)
    }

    /// Draws whether a program on the degrading die fails verification
    /// at `now` (probability = severity).
    pub fn program_fails(&mut self, now: u64) -> bool {
        let s = self.cfg.severity(now);
        s > 0.0 && self.rng.gen::<f64>() < s
    }

    /// Draws whether an erase on the degrading die fails verification
    /// at `now` (probability = severity).
    pub fn erase_fails(&mut self, now: u64) -> bool {
        let s = self.cfg.severity(now);
        s > 0.0 && self.rng.gen::<f64>() < s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_profile_has_no_state() {
        assert!(PlaneFaults::new(&FaultConfig::none(), 0, 100_000).is_none());
        assert!(FaultParams::for_profile(FaultProfile::None).is_none());
    }

    #[test]
    fn parse_roundtrips_and_rejects_garbage() {
        for p in [
            FaultProfile::None,
            FaultProfile::Nominal,
            FaultProfile::EndOfLife,
        ] {
            assert_eq!(FaultProfile::parse(&p.to_string()).unwrap(), p);
        }
        assert_eq!(FaultProfile::parse("eol").unwrap(), FaultProfile::EndOfLife);
        assert_eq!(FaultProfile::parse("OFF").unwrap(), FaultProfile::None);
        assert!(FaultProfile::parse("catastrophic").is_err());
    }

    #[test]
    fn same_seed_same_stream() {
        let cfg = FaultConfig::end_of_life().with_seed(7);
        let mut a = PlaneFaults::new(&cfg, 3, 100_000).unwrap();
        let mut b = PlaneFaults::new(&cfg, 3, 100_000).unwrap();
        for step in 0..64 {
            assert_eq!(
                a.read_attempt_fails(50_000, step % 4),
                b.read_attempt_fails(50_000, step % 4)
            );
        }
    }

    #[test]
    fn distinct_planes_get_distinct_streams() {
        let cfg = FaultConfig::end_of_life();
        let mut a = PlaneFaults::new(&cfg, 0, 100_000).unwrap();
        let mut b = PlaneFaults::new(&cfg, 1, 100_000).unwrap();
        let mismatch = (0..256)
            .filter(|_| a.read_attempt_fails(90_000, 0) != b.read_attempt_fails(90_000, 0))
            .count();
        assert!(mismatch > 0, "plane streams should decorrelate");
    }

    #[test]
    fn wear_raises_failure_rates() {
        let cfg = FaultConfig::nominal();
        let trials = 20_000;
        let fresh = {
            let mut f = PlaneFaults::new(&cfg, 0, 100_000).unwrap();
            (0..trials).filter(|_| f.program_fails(0)).count()
        };
        let worn = {
            let mut f = PlaneFaults::new(&cfg, 0, 100_000).unwrap();
            (0..trials).filter(|_| f.program_fails(100_000)).count()
        };
        assert!(worn > fresh, "worn {worn} should exceed fresh {fresh}");
    }

    #[test]
    fn sdc_off_has_no_state_and_zero_rate_draws_nothing() {
        assert!(!SdcConfig::off().is_active());
        assert!(PlaneSdc::new(&SdcConfig::off(), 0, 100_000).is_none());
        // A pure sdc_at single-shot is active but still needs no RNG.
        let one_shot = SdcConfig {
            sdc_at: Some(7),
            ..SdcConfig::off()
        };
        assert!(one_shot.is_active());
        assert!(PlaneSdc::new(&one_shot, 0, 100_000).is_none());
    }

    #[test]
    fn sdc_streams_are_deterministic_and_decorrelated_from_rber() {
        let cfg = SdcConfig {
            rate: 0.3,
            sdc_at: None,
            seed: 42,
        };
        let mut a = PlaneSdc::new(&cfg, 3, 100_000).unwrap();
        let mut b = PlaneSdc::new(&cfg, 3, 100_000).unwrap();
        for _ in 0..64 {
            assert_eq!(a.miscorrects(50_000, 0), b.miscorrects(50_000, 0));
        }
        // Same master seed, same plane: the SDC stream must not replay
        // the RBER stream (the salt separates them).
        let mut sdc = PlaneSdc::new(&cfg, 3, 100_000).unwrap();
        let mut rber = PlaneFaults::new(&FaultConfig::end_of_life(), 3, 100_000).unwrap();
        let mismatch = (0..256)
            .filter(|_| sdc.miscorrects(90_000, 0) != rber.read_attempt_fails(90_000, 0))
            .count();
        assert!(mismatch > 0, "SDC stream must decorrelate from RBER");
    }

    #[test]
    fn sdc_rate_scales_with_wear_and_retention() {
        let cfg = SdcConfig {
            rate: 0.02,
            sdc_at: None,
            seed: 42,
        };
        let trials = 20_000;
        let count = |erase: u64, age: u64| {
            let mut s = PlaneSdc::new(&cfg, 0, 100_000).unwrap();
            (0..trials).filter(|_| s.miscorrects(erase, age)).count()
        };
        let fresh = count(0, 0);
        let worn = count(100_000, 0);
        let aged = count(0, 10 * SDC_RETENTION_DOUBLING_CYCLES);
        assert!(worn > fresh, "wear must raise the rate: {worn} vs {fresh}");
        assert!(aged > fresh, "age must raise the rate: {aged} vs {fresh}");
    }

    #[test]
    fn zero_disturb_is_bit_identical_to_plain_draws() {
        let cfg = FaultConfig::end_of_life().with_seed(9);
        let mut plain = PlaneFaults::new(&cfg, 2, 100_000).unwrap();
        let mut amped = PlaneFaults::new(&cfg, 2, 100_000).unwrap();
        for step in 0..256u32 {
            let want = plain.read_attempt_fails(40_000, step % 4);
            let (got, disturb) = amped.read_attempt_fails_disturbed(40_000, 0, step % 4);
            assert_eq!(got, want, "zero disturb must not perturb the stream");
            assert!(!disturb, "no failure is attributable to zero disturb");
        }
        let sdc = SdcConfig {
            rate: 0.2,
            sdc_at: None,
            seed: 42,
        };
        let mut plain = PlaneSdc::new(&sdc, 2, 100_000).unwrap();
        let mut amped = PlaneSdc::new(&sdc, 2, 100_000).unwrap();
        for _ in 0..256 {
            let want = plain.miscorrects(40_000, 1_000);
            let (got, disturb) = amped.miscorrects_disturbed(40_000, 1_000, 0);
            assert_eq!(got, want);
            assert!(!disturb);
        }
    }

    #[test]
    fn disturb_amplification_raises_failure_rate_and_attributes_it() {
        let cfg = FaultConfig::nominal();
        let trials = 20_000;
        let run = |disturb: u64| {
            let mut f = PlaneFaults::new(&cfg, 0, 100_000).unwrap();
            let mut fails = 0u32;
            let mut attributed = 0u32;
            for _ in 0..trials {
                let (fail, disturb_hit) = f.read_attempt_fails_disturbed(0, disturb, 0);
                fails += fail as u32;
                attributed += disturb_hit as u32;
            }
            (fails, attributed)
        };
        let (base_fails, base_attr) = run(0);
        let (amp_fails, amp_attr) = run(100_000);
        assert_eq!(base_attr, 0);
        assert!(
            amp_fails > base_fails,
            "disturb must raise the rate: {amp_fails} vs {base_fails}"
        );
        assert!(amp_attr > 0, "some failures must be attributed to disturb");
        assert!(amp_attr <= amp_fails);
    }

    #[test]
    fn degrading_none_has_no_state_and_validation_rejects_empty_window() {
        assert!(DegradeState::new(&FaultConfig::none()).is_none());
        assert!(DegradeState::new(&FaultConfig::end_of_life()).is_none());
        let bad = DegradingDie {
            channel: 0,
            die: 0,
            onset: 100,
            death: 100,
        };
        assert!(bad.validate().is_err());
        let good = DegradingDie {
            channel: 0,
            die: 0,
            onset: 100,
            death: 200,
        };
        assert!(good.validate().is_ok());
    }

    #[test]
    fn degrading_severity_ramps_linearly_and_latches_death() {
        let d = DegradingDie {
            channel: 1,
            die: 2,
            onset: 1_000,
            death: 3_000,
        };
        assert_eq!(d.severity(0), 0.0);
        assert_eq!(d.severity(1_000), 0.0);
        assert!((d.severity(2_000) - 0.5).abs() < 1e-12);
        assert_eq!(d.severity(3_000), 1.0);
        assert_eq!(d.severity(10_000), 1.0);
        assert!(!d.is_dead(2_999) && d.is_dead(3_000));
        let cfg = FaultConfig::none().with_degrading(d);
        let mut st = DegradeState::new(&cfg).unwrap();
        assert!(st.matches(1, 2) && !st.matches(1, 3));
        assert!(!st.tick(2_999) && !st.is_dead());
        assert!(st.tick(3_000), "death transition fires once");
        assert!(st.is_dead());
        assert!(!st.tick(4_000), "death is latched, not re-reported");
    }

    #[test]
    fn degrading_penalties_scale_with_severity() {
        let d = DegradingDie {
            channel: 0,
            die: 0,
            onset: 0,
            death: 1_000_000,
        };
        let cfg = FaultConfig::none().with_degrading(d);
        let trials = 5_000;
        let run = |now: u64| {
            let mut st = DegradeState::new(&cfg).unwrap();
            let mut steps = 0u64;
            let mut unc = 0u64;
            let mut prog = 0u64;
            for _ in 0..trials {
                let (s, u) = st.read_penalty(now);
                steps += s as u64;
                unc += u as u64;
                prog += st.program_fails(now) as u64;
            }
            (steps, unc, prog)
        };
        let (s_early, u_early, p_early) = run(1_000);
        let (s_late, u_late, p_late) = run(950_000);
        assert!(
            s_late > s_early * 10,
            "retry depth ramps: {s_late} vs {s_early}"
        );
        assert!(
            u_late > u_early,
            "uncorrectables ramp: {u_late} vs {u_early}"
        );
        assert!(
            p_late > p_early * 10,
            "program failures ramp: {p_late} vs {p_early}"
        );
        // Before onset: perfectly healthy, zero draws consumed.
        let mut quiet = DegradeState::new(&cfg.with_degrading(DegradingDie {
            onset: 500,
            death: 1_000,
            ..d
        }))
        .unwrap();
        assert_eq!(quiet.read_penalty(100), (0, false));
        assert!(!quiet.program_fails(100));
        assert!(!quiet.erase_fails(100));
    }

    #[test]
    fn retry_steps_decay_geometrically() {
        let cfg = FaultConfig::end_of_life();
        let trials = 20_000;
        let rate = |step: u32| {
            let mut f = PlaneFaults::new(&cfg, 0, 100_000).unwrap();
            (0..trials)
                .filter(|_| f.read_attempt_fails(0, step))
                .count() as f64
                / trials as f64
        };
        let (s0, s2) = (rate(0), rate(2));
        assert!(s0 > 4.0 * s2, "step 0 rate {s0} vs step 2 rate {s2}");
    }
}
