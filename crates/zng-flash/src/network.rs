//! The flash network between flash controllers and packages.
//!
//! HybridGPU uses classic ONFI channel *buses* (1 B wide, 800 MT/s),
//! which cannot feed the accumulated Z-NAND array bandwidth. ZnG replaces
//! them with a **mesh** (paper §III-B): 8 B links at core clock, one
//! injection link per channel, XY-routed hops for cross-package traffic
//! (SWnet register migrations).

use zng_sim::{Admission, Link};
use zng_types::{ids::ChannelId, Cycle, Error, Result};

/// The fabric style connecting controllers to packages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkTopology {
    /// Shared ONFI bus per channel (1 B wide).
    Bus,
    /// 2-D mesh with the given side length (Table I: 4×4 for 16 channels),
    /// 8 B links.
    Mesh {
        /// Mesh side length; `side * side >= channels`.
        side: usize,
    },
}

/// The flash network: one injection link per channel plus topology-aware
/// routing costs.
///
/// # Examples
///
/// ```
/// use zng_flash::{FlashNetwork, NetworkTopology};
/// use zng_types::{ids::ChannelId, Cycle};
///
/// let mut mesh = FlashNetwork::mesh(16, 8.0, Cycle(2));
/// let t = mesh.transfer(Cycle(0), ChannelId(3), 4096);
/// assert!(t >= Cycle(512)); // 4 KB at 8 B/cycle
/// ```
#[derive(Debug, Clone)]
pub struct FlashNetwork {
    topology: NetworkTopology,
    links: Vec<Link>,
    hop_latency: Cycle,
    /// A failed injection link (degraded-mode fault model). Traffic for
    /// this channel detours through the next channel's link.
    failed_link: Option<usize>,
    /// Transfers that took the detour around the failed link.
    rerouted: u64,
}

impl FlashNetwork {
    /// An ONFI-style bus network: `bytes_per_cycle` is the channel rate
    /// (Z-NAND: 800 MT/s × 1 B ≈ 0.67 B per 1.2 GHz cycle).
    pub fn bus(channels: usize, bytes_per_cycle: f64) -> FlashNetwork {
        assert!(channels > 0, "network needs at least one channel");
        FlashNetwork {
            topology: NetworkTopology::Bus,
            links: (0..channels)
                .map(|_| Link::new(bytes_per_cycle, Cycle::ZERO))
                .collect(),
            hop_latency: Cycle::ZERO,
            failed_link: None,
            rerouted: 0,
        }
    }

    /// A mesh network with `bytes_per_cycle`-wide links (Table I: 8 B) and
    /// a per-hop latency.
    pub fn mesh(channels: usize, bytes_per_cycle: f64, hop_latency: Cycle) -> FlashNetwork {
        assert!(channels > 0, "network needs at least one channel");
        let side = (channels as f64).sqrt().ceil() as usize;
        FlashNetwork {
            topology: NetworkTopology::Mesh { side },
            links: (0..channels)
                .map(|_| Link::new(bytes_per_cycle, Cycle::ZERO))
                .collect(),
            hop_latency,
            failed_link: None,
            rerouted: 0,
        }
    }

    /// Fails channel `ch`'s injection link: from now on its traffic
    /// detours deterministically through the next channel's link, paying
    /// [`FlashNetwork::DETOUR_EXTRA_HOPS`] extra hops and contending with
    /// that channel's own traffic. No-op on a single-link network (there
    /// is nowhere to detour to).
    pub fn fail_link(&mut self, ch: ChannelId) {
        if self.links.len() > 1 && ch.index() < self.links.len() {
            self.failed_link = Some(ch.index());
        }
    }

    /// The failed injection link, if any.
    pub fn failed_link(&self) -> Option<usize> {
        self.failed_link
    }

    /// Extra hops a detoured transfer pays: one to reach the neighbour
    /// router and one back to the home node on the far side.
    pub const DETOUR_EXTRA_HOPS: u32 = 2;

    /// Resolves channel `ch` to the link its traffic actually uses plus
    /// any extra detour hops, counting reroutes.
    fn route(&mut self, ch: ChannelId) -> (usize, u32) {
        match self.failed_link {
            Some(dead) if dead == ch.index() => {
                self.rerouted += 1;
                ((ch.index() + 1) % self.links.len(), Self::DETOUR_EXTRA_HOPS)
            }
            _ => (ch.index(), 0),
        }
    }

    /// Routing decisions that detoured around the failed link (admitted
    /// or not — the detour was attempted either way).
    pub fn rerouted(&self) -> u64 {
        self.rerouted
    }

    /// The configured topology.
    pub fn topology(&self) -> NetworkTopology {
        self.topology
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.links.len()
    }

    /// Manhattan hop count between two channels' nodes.
    pub fn hops(&self, a: ChannelId, b: ChannelId) -> u32 {
        match self.topology {
            NetworkTopology::Bus => 1,
            NetworkTopology::Mesh { side } => {
                let (ax, ay) = (a.index() % side, a.index() / side);
                let (bx, by) = (b.index() % side, b.index() / side);
                (ax.abs_diff(bx) + ay.abs_diff(by)).max(1) as u32
            }
        }
    }

    /// Transfers `bytes` between channel `ch`'s controller and its
    /// package; returns arrival time. A failed injection link reroutes
    /// the transfer through the neighbouring channel's link.
    pub fn transfer(&mut self, now: Cycle, ch: ChannelId, bytes: usize) -> Cycle {
        let (link, extra) = self.route(ch);
        let hops = self.hops(ch, ch).max(1) + extra;
        self.links[link].transfer(now, bytes) + self.hop_latency * hops as u64
    }

    /// Bounds the number of transfers queued on every injection link
    /// (`None` = unbounded). Only [`FlashNetwork::try_transfer`] enforces
    /// the bound; [`FlashNetwork::transfer`] always succeeds, which keeps
    /// GC and recovery traffic deadlock-free.
    pub fn set_queue_depth(&mut self, depth: Option<usize>) {
        for l in &mut self.links {
            l.set_queue_depth(depth);
        }
    }

    /// Bounded injection: like [`FlashNetwork::transfer`], but fails with
    /// [`Error::Backpressure`] when channel `ch`'s injection link is
    /// saturated. Rejections move no bytes.
    pub fn try_transfer(&mut self, now: Cycle, ch: ChannelId, bytes: usize) -> Result<Cycle> {
        let (link, extra) = self.route(ch);
        let hops = self.hops(ch, ch).max(1) + extra;
        match self.links[link].try_transfer(now, bytes) {
            Admission::Admitted(done) => Ok(done + self.hop_latency * hops as u64),
            Admission::Rejected { retry_at } => Err(Error::Backpressure { retry_at }),
        }
    }

    /// Injections refused across all links.
    pub fn rejections(&self) -> u64 {
        self.links.iter().map(|l| l.rejected()).sum()
    }

    /// Largest queued-transfer population admitted on any link.
    pub fn max_link_occupancy(&self) -> u64 {
        self.links
            .iter()
            .map(|l| l.occupancy_histogram().max())
            .max()
            .unwrap_or(0)
    }

    /// Migrates `bytes` from channel `from`'s package to channel `to`'s
    /// package (SWnet register-to-register copy through the fabric).
    /// Occupies both endpoints' injection links.
    pub fn migrate(&mut self, now: Cycle, from: ChannelId, to: ChannelId, bytes: usize) -> Cycle {
        let (from_link, from_extra) = self.route(from);
        let (to_link, to_extra) = self.route(to);
        let leave = self.links[from_link].transfer(now, bytes);
        let arrive = self.links[to_link].transfer(leave, bytes);
        arrive + self.hop_latency * (self.hops(from, to) + from_extra + to_extra) as u64
    }

    /// Total bytes moved on channel `ch`'s link.
    pub fn bytes_moved(&self, ch: ChannelId) -> u64 {
        self.links[ch.index()].bytes_moved()
    }

    /// Aggregate bytes moved on all links.
    pub fn total_bytes_moved(&self) -> u64 {
        self.links.iter().map(|l| l.bytes_moved()).sum()
    }

    /// Clears all reservations and counters (the failed-link fault, being
    /// configuration rather than state, survives).
    pub fn reset(&mut self) {
        for l in &mut self.links {
            l.reset();
        }
        self.rerouted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_is_8x_faster_than_bus() {
        let mut bus = FlashNetwork::bus(16, 2.0 / 3.0);
        let mut mesh = FlashNetwork::mesh(16, 8.0, Cycle::ZERO);
        let tb = bus.transfer(Cycle(0), ChannelId(0), 4096);
        let tm = mesh.transfer(Cycle(0), ChannelId(0), 4096);
        // 4096 / 0.667 = 6144 cycles vs 4096 / 8 = 512 cycles (12x here
        // because the ONFI clock is slower than core clock; the paper
        // quotes 8x from the width alone).
        assert_eq!(tm, Cycle(512));
        assert_eq!(tb, Cycle(6144));
    }

    #[test]
    fn per_channel_links_are_independent() {
        let mut mesh = FlashNetwork::mesh(4, 8.0, Cycle::ZERO);
        let a = mesh.transfer(Cycle(0), ChannelId(0), 4096);
        let b = mesh.transfer(Cycle(0), ChannelId(1), 4096);
        assert_eq!(a, b); // no contention across channels
        let c = mesh.transfer(Cycle(0), ChannelId(0), 4096);
        assert_eq!(c, a + Cycle(512)); // same channel queues
    }

    #[test]
    fn mesh_hop_distance() {
        let net = FlashNetwork::mesh(16, 8.0, Cycle(2));
        // 4x4 mesh: channel 0 at (0,0), channel 15 at (3,3).
        assert_eq!(net.hops(ChannelId(0), ChannelId(15)), 6);
        assert_eq!(net.hops(ChannelId(0), ChannelId(1)), 1);
        assert_eq!(net.hops(ChannelId(5), ChannelId(5)), 1); // local min 1
        matches!(net.topology(), NetworkTopology::Mesh { side: 4 });
    }

    #[test]
    fn migration_occupies_both_links() {
        let mut net = FlashNetwork::mesh(4, 8.0, Cycle(1));
        let done = net.migrate(Cycle(0), ChannelId(0), ChannelId(1), 4096);
        // Two sequential 512-cycle transfers + hops.
        assert!(done >= Cycle(1024));
        assert_eq!(net.bytes_moved(ChannelId(0)), 4096);
        assert_eq!(net.bytes_moved(ChannelId(1)), 4096);
        assert_eq!(net.total_bytes_moved(), 8192);
    }

    #[test]
    fn bounded_injection_rejects_when_saturated() {
        let mut net = FlashNetwork::mesh(4, 8.0, Cycle(2));
        net.set_queue_depth(Some(0));
        let first = net.try_transfer(Cycle(0), ChannelId(0), 4096).unwrap();
        assert_eq!(first, Cycle(514)); // 512 + 2-cycle hop
        match net.try_transfer(Cycle(0), ChannelId(0), 4096) {
            Err(Error::Backpressure { retry_at }) => assert_eq!(retry_at, Cycle(512)),
            other => panic!("expected backpressure, got {other:?}"),
        }
        assert_eq!(net.rejections(), 1);
        // Other channels are unaffected.
        assert!(net.try_transfer(Cycle(0), ChannelId(1), 4096).is_ok());
        // Unbounded transfer on the saturated channel still succeeds.
        assert!(net.transfer(Cycle(0), ChannelId(0), 4096) > Cycle(1024));
        // Clearing the bound stops rejections.
        net.set_queue_depth(None);
        assert!(net.try_transfer(Cycle(0), ChannelId(0), 64).is_ok());
        assert!(net.max_link_occupancy() >= 1);
    }

    #[test]
    fn reset_clears_counters() {
        let mut net = FlashNetwork::bus(2, 1.0);
        net.transfer(Cycle(0), ChannelId(0), 100);
        net.reset();
        assert_eq!(net.total_bytes_moved(), 0);
    }

    #[test]
    fn failed_link_detours_through_neighbour() {
        let mut net = FlashNetwork::mesh(4, 8.0, Cycle(2));
        let healthy = net.transfer(Cycle(0), ChannelId(0), 4096);
        assert_eq!(healthy, Cycle(512 + 2)); // 512 transfer + 1 hop
        net.fail_link(ChannelId(0));
        assert_eq!(net.failed_link(), Some(0));
        // Detour: neighbour link 1 carries the bytes, 2 extra hops.
        let detoured = net.transfer(Cycle(1_000), ChannelId(0), 4096);
        assert_eq!(detoured, Cycle(1_000 + 512 + 2 + 2 * 2));
        assert_eq!(net.rerouted(), 1);
        assert_eq!(net.bytes_moved(ChannelId(0)), 4096, "pre-failure bytes");
        assert_eq!(net.bytes_moved(ChannelId(1)), 4096, "detoured bytes");
        // The neighbour's own traffic now contends with the detour.
        let neighbour = net.transfer(Cycle(1_000), ChannelId(1), 4096);
        assert!(neighbour > Cycle(1_000 + 512 + 2));
    }

    #[test]
    fn failed_link_detour_is_deterministic_and_wraps() {
        let mut a = FlashNetwork::mesh(4, 8.0, Cycle(2));
        let mut b = FlashNetwork::mesh(4, 8.0, Cycle(2));
        a.fail_link(ChannelId(3));
        b.fail_link(ChannelId(3));
        for i in 0..8u64 {
            let t = Cycle(i * 100);
            assert_eq!(
                a.transfer(t, ChannelId(3), 512),
                b.transfer(t, ChannelId(3), 512)
            );
        }
        assert_eq!(a.rerouted(), 8);
        assert_eq!(a.bytes_moved(ChannelId(0)), 8 * 512, "detour wraps to 0");
    }

    #[test]
    fn single_link_network_ignores_link_failure() {
        let mut net = FlashNetwork::mesh(1, 8.0, Cycle(2));
        net.fail_link(ChannelId(0));
        assert_eq!(net.failed_link(), None);
        net.transfer(Cycle(0), ChannelId(0), 64);
        assert_eq!(net.rerouted(), 0);
    }
}
