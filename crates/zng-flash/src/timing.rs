//! Flash media timing (Z-NAND SLC vs. TLC V-NAND) and ONFI channel rates.

use zng_types::{Cycle, Freq, Nanos};

/// Raw media timing parameters in wall-clock units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashTiming {
    /// Media name for reports.
    pub name: &'static str,
    /// Page read (sense) latency.
    pub read: Nanos,
    /// Page program latency.
    pub program: Nanos,
    /// Block erase latency.
    pub erase: Nanos,
    /// Program/erase endurance cycles.
    pub pe_cycles: u32,
    /// ONFI channel transfer rate in MT/s (1 byte per transfer).
    pub channel_mt_per_s: f64,
}

impl FlashTiming {
    /// Z-NAND (paper §II-B): 3 µs read, 100 µs program, SLC,
    /// 100 000 P/E cycles, 800 MT/s interface.
    pub fn znand() -> FlashTiming {
        FlashTiming {
            name: "Z-NAND",
            read: Nanos::from_micros(3.0),
            program: Nanos::from_micros(100.0),
            erase: Nanos::from_micros(1_000.0),
            pe_cycles: 100_000,
            channel_mt_per_s: 800.0,
        }
    }

    /// State-of-the-art TLC V-NAND reference: 17× slower reads,
    /// 6× slower programs, ~7 000 P/E cycles (paper §II-B).
    pub fn vnand_tlc() -> FlashTiming {
        FlashTiming {
            name: "V-NAND-TLC",
            read: Nanos::from_micros(3.0 * 17.0),
            program: Nanos::from_micros(100.0 * 6.0),
            erase: Nanos::from_micros(3_500.0),
            pe_cycles: 7_000,
            channel_mt_per_s: 800.0,
        }
    }

    /// Converts to GPU-cycle units under clock `freq`.
    pub fn to_cycles(&self, freq: Freq) -> FlashCycles {
        FlashCycles {
            read: self.read.to_cycles(freq),
            program: self.program.to_cycles(freq),
            erase: self.erase.to_cycles(freq),
            channel_bytes_per_cycle: self.channel_mt_per_s * 1e6 / freq.hz(),
        }
    }
}

impl Default for FlashTiming {
    fn default() -> FlashTiming {
        FlashTiming::znand()
    }
}

/// Media timing converted to GPU cycles, ready for the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCycles {
    /// Page read (sense) time.
    pub read: Cycle,
    /// Page program time.
    pub program: Cycle,
    /// Block erase time.
    pub erase: Cycle,
    /// ONFI channel bandwidth in bytes per GPU cycle (1 B bus).
    pub channel_bytes_per_cycle: f64,
}

impl Default for FlashCycles {
    fn default() -> FlashCycles {
        FlashTiming::znand().to_cycles(Freq::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn znand_cycles_at_default_clock() {
        let c = FlashTiming::znand().to_cycles(Freq::default());
        assert_eq!(c.read, Cycle(3_600)); // 3 us * 1.2 GHz
        assert_eq!(c.program, Cycle(120_000)); // 100 us
        assert_eq!(c.erase, Cycle(1_200_000)); // 1 ms
                                               // 800 MB/s over a 1.2 GHz clock = 2/3 B per cycle.
        assert!((c.channel_bytes_per_cycle - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn znand_vs_vnand_ratios_match_paper() {
        let z = FlashTiming::znand();
        let v = FlashTiming::vnand_tlc();
        assert!((v.read.0 / z.read.0 - 17.0).abs() < 1e-9);
        assert!((v.program.0 / z.program.0 - 6.0).abs() < 1e-9);
        // Z-NAND endures ~14x more P/E cycles.
        assert!(z.pe_cycles as f64 / v.pe_cycles as f64 > 14.0);
    }

    #[test]
    fn program_is_33x_read() {
        // Paper §V-B: "Z-NAND's write latency is 33x longer than its read".
        let z = FlashTiming::znand();
        let ratio = z.program.0 / z.read.0;
        assert!((33.0 - ratio).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn default_is_znand() {
        assert_eq!(FlashTiming::default().name, "Z-NAND");
        let d = FlashCycles::default();
        assert_eq!(d.read, Cycle(3_600));
    }
}
