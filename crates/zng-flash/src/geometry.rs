//! Flash topology (Table I) and address decomposition.

use zng_types::{
    ids::{ChannelId, DieId, PlaneId},
    BlockAddr, Error, Result,
};

/// The physical organisation of the Z-NAND array.
///
/// Defaults follow Table I of the paper: 16 channels with one package
/// each, 8 dies × 8 planes per package, 1024 blocks per plane,
/// 384 pages per block, 4 KB pages, 8 registers per plane and 2 I/O
/// ports per package.
///
/// # Examples
///
/// ```
/// use zng_flash::FlashGeometry;
/// let g = FlashGeometry::table1();
/// assert_eq!(g.total_planes(), 16 * 8 * 8);
/// // 16 * 8 * 8 * 1024 blocks * 384 pages * 4 KiB = 1.5 TiB.
/// assert_eq!(g.capacity_bytes(), 1_649_267_441_664);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashGeometry {
    /// Flash channels (each with its own controller in ZnG).
    pub channels: usize,
    /// Packages per channel (Table I: 1).
    pub packages_per_channel: usize,
    /// Dies per package.
    pub dies_per_package: usize,
    /// Planes per die.
    pub planes_per_die: usize,
    /// Blocks per plane.
    pub blocks_per_plane: usize,
    /// Pages per block.
    pub pages_per_block: usize,
    /// Page size in bytes.
    pub page_bytes: usize,
    /// Flash registers per plane (paper §III-C: 8).
    pub registers_per_plane: usize,
    /// I/O ports per package (Table I: 2).
    pub io_ports_per_package: usize,
}

impl FlashGeometry {
    /// The paper's Table I configuration.
    pub fn table1() -> FlashGeometry {
        FlashGeometry {
            channels: 16,
            packages_per_channel: 1,
            dies_per_package: 8,
            planes_per_die: 8,
            blocks_per_plane: 1024,
            pages_per_block: 384,
            page_bytes: 4096,
            registers_per_plane: 8,
            io_ports_per_package: 2,
        }
    }

    /// A small geometry for unit tests and quick experiments: 4 channels,
    /// 2 dies × 2 planes, 64 blocks of 16 pages.
    pub fn tiny() -> FlashGeometry {
        FlashGeometry {
            channels: 4,
            packages_per_channel: 1,
            dies_per_package: 2,
            planes_per_die: 2,
            blocks_per_plane: 64,
            pages_per_block: 16,
            page_bytes: 4096,
            registers_per_plane: 4,
            io_ports_per_package: 2,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any dimension is zero.
    pub fn validate(&self) -> Result<()> {
        let dims = [
            ("channels", self.channels),
            ("packages_per_channel", self.packages_per_channel),
            ("dies_per_package", self.dies_per_package),
            ("planes_per_die", self.planes_per_die),
            ("blocks_per_plane", self.blocks_per_plane),
            ("pages_per_block", self.pages_per_block),
            ("page_bytes", self.page_bytes),
            ("registers_per_plane", self.registers_per_plane),
            ("io_ports_per_package", self.io_ports_per_package),
        ];
        for (name, v) in dims {
            if v == 0 {
                return Err(Error::invalid_config(name, "must be non-zero"));
            }
        }
        Ok(())
    }

    /// Planes in the whole device.
    pub fn total_planes(&self) -> usize {
        self.channels * self.packages_per_channel * self.dies_per_package * self.planes_per_die
    }

    /// Planes in one package.
    pub fn planes_per_package(&self) -> usize {
        self.dies_per_package * self.planes_per_die
    }

    /// Blocks in the whole device.
    pub fn total_blocks(&self) -> usize {
        self.total_planes() * self.blocks_per_plane
    }

    /// Device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_blocks() as u64 * self.pages_per_block as u64 * self.page_bytes as u64
    }

    /// Bytes held by one block.
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_bytes as u64
    }

    /// Maps a device-wide *block index* to its physical coordinates,
    /// striping consecutive indices across channels, then dies, then
    /// planes so that consecutive data blocks exploit maximum
    /// parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] when `index` exceeds
    /// [`FlashGeometry::total_blocks`].
    pub fn block_for_index(&self, index: u64) -> Result<BlockAddr> {
        if index >= self.total_blocks() as u64 {
            return Err(Error::AddressOutOfRange {
                addr: index,
                capacity: self.total_blocks() as u64,
            });
        }
        let channel = index % self.channels as u64;
        let rest = index / self.channels as u64;
        let die = rest % self.dies_per_package as u64;
        let rest = rest / self.dies_per_package as u64;
        let plane = rest % self.planes_per_die as u64;
        let block = rest / self.planes_per_die as u64;
        Ok(BlockAddr::new(
            ChannelId(channel as u16),
            DieId(die as u16),
            PlaneId(plane as u16),
            block as u32,
        ))
    }

    /// Inverse of [`FlashGeometry::block_for_index`].
    pub fn index_for_block(&self, addr: BlockAddr) -> u64 {
        let c = addr.channel.raw() as u64;
        let d = addr.die.raw() as u64;
        let p = addr.plane.raw() as u64;
        let b = addr.block as u64;
        ((b * self.planes_per_die as u64 + p) * self.dies_per_package as u64 + d)
            * self.channels as u64
            + c
    }

    /// Total registers in one package (grouped write-cache capacity).
    pub fn registers_per_package(&self) -> usize {
        self.registers_per_plane * self.planes_per_package()
    }
}

impl Default for FlashGeometry {
    fn default() -> FlashGeometry {
        FlashGeometry::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let g = FlashGeometry::table1();
        assert_eq!(g.channels, 16);
        assert_eq!(g.dies_per_package, 8);
        assert_eq!(g.planes_per_die, 8);
        assert_eq!(g.blocks_per_plane, 1024);
        assert_eq!(g.pages_per_block, 384);
        assert_eq!(g.registers_per_package(), 8 * 64);
        g.validate().unwrap();
    }

    #[test]
    fn consecutive_blocks_stripe_channels_first() {
        let g = FlashGeometry::table1();
        let b0 = g.block_for_index(0).unwrap();
        let b1 = g.block_for_index(1).unwrap();
        assert_eq!(b0.channel, ChannelId(0));
        assert_eq!(b1.channel, ChannelId(1));
        assert_eq!(b0.die, b1.die);
        // After all 16 channels, the die advances.
        let b16 = g.block_for_index(16).unwrap();
        assert_eq!(b16.channel, ChannelId(0));
        assert_eq!(b16.die, DieId(1));
    }

    #[test]
    fn block_index_roundtrip() {
        let g = FlashGeometry::tiny();
        for i in (0..g.total_blocks() as u64).step_by(7) {
            let addr = g.block_for_index(i).unwrap();
            assert_eq!(g.index_for_block(addr), i, "index {i}");
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let g = FlashGeometry::tiny();
        let too_big = g.total_blocks() as u64;
        assert!(matches!(
            g.block_for_index(too_big),
            Err(Error::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_dimension_rejected() {
        let mut g = FlashGeometry::tiny();
        g.planes_per_die = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn capacity_math() {
        let g = FlashGeometry::tiny();
        assert_eq!(g.capacity_bytes(), (4 * 2 * 2 * 64) as u64 * 16 * 4096);
        assert_eq!(g.block_bytes(), 16 * 4096);
    }
}
