//! Z-NAND flash device model for the ZnG simulator.
//!
//! This crate rebuilds the SSD *media* layer the paper gets from
//! SimpleSSD, plus the ZnG-specific hardware the paper adds:
//!
//! * [`FlashGeometry`] — Table I topology: 16 channels × 1 package ×
//!   8 dies × 8 planes, 1024 blocks/plane, 384 pages/block, 4 KB pages.
//! * [`FlashTiming`] — Z-NAND SLC timing (3 µs read, 100 µs program) and
//!   the TLC V-NAND reference point.
//! * [`Plane`]/[`Block`] — state machines enforcing the flash protocol:
//!   erase-before-write and strictly in-order page programming.
//! * [`RegisterCache`] — per-package flash registers, optionally grouped
//!   into a fully-associative write cache (paper §III-C), with a
//!   thrashing checker.
//! * [`RowDecoder`] — the programmable row decoder holding a log block's
//!   LPMT as a CAM (paper §IV-A).
//! * [`FlashNetwork`] — ONFI bus vs. 8 B mesh flash network.
//! * [`RegisterTopology`] — Baseline / SWnet / HW-FCnet / HW-NiF register
//!   interconnects (paper §IV-C, Fig. 14).
//! * [`FlashDevice`] — the facade tying packages, network and statistics
//!   together; platforms drive this.

pub mod block;
pub mod decoder;
pub mod device;
pub mod fault;
pub mod geometry;
pub mod network;
pub mod package;
pub mod plane;
pub mod registers;
pub mod stats;
pub mod timing;

pub use block::{Block, BlockKind, OobMeta, PageOob};
pub use decoder::{RowDecoder, CAM_SEARCH_CYCLES};
pub use device::{EnduranceReport, FlashDevice, PageKey, PowerLossReport};
pub use fault::{
    DegradeState, DegradingDie, FaultConfig, FaultParams, FaultProfile, PlaneFaults, PlaneSdc,
    SdcConfig, DISTURB_READS_PER_CYCLE, MAX_READ_RETRIES, SDC_RETENTION_DOUBLING_CYCLES,
};
pub use geometry::FlashGeometry;
pub use network::{FlashNetwork, NetworkTopology};
pub use package::{FlashPackage, RegisterTopology};
pub use plane::{EraseReport, Plane, ProgramReport, ReadReport};
pub use registers::{RegisterCache, WriteOutcome};
pub use stats::{DieHealth, FlashStats, RETRY_DEPTH_BUCKETS, RETRY_EWMA_ALPHA};
pub use timing::{FlashCycles, FlashTiming};
