//! Device-level flash statistics behind Figures 5b/5c, 11, 12 and 13.

use fxhash::FxHashMap;
use zng_types::{Cycle, Freq};

use crate::fault::MAX_READ_RETRIES;

/// Buckets in the read-retry depth histogram: one per possible depth of a
/// *successful* sense (0 retries through [`MAX_READ_RETRIES`] retries).
/// Reads that exhaust the ladder are counted by
/// [`FlashStats::uncorrectable_reads`] instead.
pub const RETRY_DEPTH_BUCKETS: usize = MAX_READ_RETRIES as usize + 1;

/// Smoothing factor for the per-die retry-depth EWMA: each sense folds
/// its ladder depth in with weight 1/16, so the average tracks the last
/// few dozen senses — fast enough to catch a degrading die inside its
/// window, slow enough to ride out single noisy reads.
pub const RETRY_EWMA_ALPHA: f64 = 1.0 / 16.0;

/// Per-die health telemetry: the SMART-style rollup a predictive health
/// monitor scores. Collected unconditionally (pure counters — no timing
/// or RNG effect), surfaced only when the health subsystem asks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DieHealth {
    /// Array senses served by this die.
    pub reads: u64,
    /// Total read-retry ladder steps burned by this die's senses.
    pub retry_steps: u64,
    /// Exponentially weighted moving average of retry depth per sense
    /// (see [`RETRY_EWMA_ALPHA`]).
    pub retry_ewma: f64,
    /// Senses that stayed uncorrectable through the whole ladder.
    pub uncorrectable_reads: u64,
    /// Page programs attempted on this die.
    pub programs: u64,
    /// Programs that failed verification.
    pub program_failures: u64,
    /// Block erases completed on this die (the wear rollup).
    pub erases: u64,
    /// Erases that failed verification.
    pub erase_failures: u64,
    /// Senses charged against disturb counters on this die.
    pub disturb_reads: u64,
}

impl DieHealth {
    /// Fraction of programs that failed verification (0 when none ran).
    pub fn program_failure_rate(&self) -> f64 {
        if self.programs == 0 {
            return 0.0;
        }
        self.program_failures as f64 / self.programs as f64
    }

    /// Fraction of senses that ended uncorrectable (0 when none ran).
    pub fn uncorrectable_rate(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.uncorrectable_reads as f64 / self.reads as f64
    }
}

/// Per-logical-page access accounting plus aggregate byte counters.
///
/// * **read re-access** (Fig. 5b / Fig. 12) — average number of array
///   reads per distinct logical page; buffering (L2, registers) reduces
///   it.
/// * **write redundancy** (Fig. 5c / Fig. 13) — average number of array
///   programs per distinct logical page; register merging reduces it.
/// * **array bandwidth** (Fig. 11) — bytes sensed/programmed over time.
///
/// The per-page maps are on the device's hottest path (one update per
/// array sense/program); they use the deterministic Fx hasher, and all
/// consumers are either order-independent aggregates (sums, lens) or
/// explicitly sorted ([`FlashStats::die_health_sorted`]).
#[derive(Debug, Clone, Default)]
pub struct FlashStats {
    page_reads: FxHashMap<u64, u32>,
    page_programs: FxHashMap<u64, u32>,
    bytes_read: u64,
    bytes_programmed: u64,
    read_retries: u64,
    retry_depth: [u64; RETRY_DEPTH_BUCKETS],
    uncorrectable_reads: u64,
    program_failures: u64,
    erase_failures: u64,
    power_losses: u64,
    pages_torn: u64,
    silent_corruptions: u64,
    disturb_reads: u64,
    disturb_triggered_errors: u64,
    die_health: FxHashMap<(u16, u16), DieHealth>,
}

impl FlashStats {
    /// Creates empty statistics.
    pub fn new() -> FlashStats {
        FlashStats::default()
    }

    /// Records one array read of logical page `key` moving `bytes`.
    pub fn record_read(&mut self, key: u64, bytes: usize) {
        *self.page_reads.entry(key).or_insert(0) += 1;
        self.bytes_read += bytes as u64;
    }

    /// Records one array program of logical page `key` moving `bytes`.
    pub fn record_program(&mut self, key: u64, bytes: usize) {
        *self.page_programs.entry(key).or_insert(0) += 1;
        self.bytes_programmed += bytes as u64;
    }

    /// Records a GC-migration program: it consumes array bandwidth but is
    /// not *demand* write redundancy (the paper's Fig. 13 metric counts
    /// how often the same page is written by the workload).
    pub fn record_migration_program(&mut self, bytes: usize) {
        self.bytes_programmed += bytes as u64;
    }

    /// Records `n` read-retry ladder steps taken by one *successful*
    /// sense: `n` total steps are tallied and the sense lands in depth
    /// bucket `n` of the retry-depth histogram.
    pub fn record_read_retries(&mut self, n: u64) {
        self.read_retries += n;
        let bucket = (n as usize).min(RETRY_DEPTH_BUCKETS - 1);
        self.retry_depth[bucket] += 1;
    }

    /// Records a read that stayed uncorrectable through the whole retry
    /// ladder.
    pub fn record_uncorrectable_read(&mut self) {
        self.uncorrectable_reads += 1;
    }

    /// Records a program that failed verification.
    pub fn record_program_failure(&mut self) {
        self.program_failures += 1;
    }

    /// Records an erase that failed verification.
    pub fn record_erase_failure(&mut self) {
        self.erase_failures += 1;
    }

    /// Records a device-wide power loss that tore `pages_torn` pages.
    pub fn record_power_loss(&mut self, pages_torn: u64) {
        self.power_losses += 1;
        self.pages_torn += pages_torn;
    }

    /// Records a silent corruption: ECC reported success but the payload
    /// it delivered (or stored) is wrong. Invisible to the device; only
    /// the FTL's end-to-end checksum can catch it.
    pub fn record_silent_corruption(&mut self) {
        self.silent_corruptions += 1;
    }

    /// Records one read-disturb exposure: an array sense charged against
    /// a block's disturb counter (endurance tracking enabled only).
    pub fn record_disturb_read(&mut self) {
        self.disturb_reads += 1;
    }

    /// Records a read-error draw (retry step or miscorrection) that only
    /// failed because read-disturb amplification raised the block's error
    /// probability past what wear + retention alone justify.
    pub fn record_disturb_triggered_error(&mut self) {
        self.disturb_triggered_errors += 1;
    }

    /// Records one successful sense on a die: `retry_steps` ladder steps
    /// taken, folded into the die's retry-depth EWMA.
    pub fn record_die_read(&mut self, channel: u16, die: u16, retry_steps: u64) {
        let h = self.die_health.entry((channel, die)).or_default();
        h.reads += 1;
        h.retry_steps += retry_steps;
        h.retry_ewma += RETRY_EWMA_ALPHA * (retry_steps as f64 - h.retry_ewma);
    }

    /// Records an uncorrectable sense on a die: the whole ladder burned
    /// with nothing to show (the EWMA saturates toward the ladder depth).
    pub fn record_die_uncorrectable(&mut self, channel: u16, die: u16) {
        let h = self.die_health.entry((channel, die)).or_default();
        h.reads += 1;
        h.retry_steps += MAX_READ_RETRIES as u64;
        h.uncorrectable_reads += 1;
        h.retry_ewma += RETRY_EWMA_ALPHA * (MAX_READ_RETRIES as f64 - h.retry_ewma);
    }

    /// Records a page program attempted on a die and whether it failed
    /// verification.
    pub fn record_die_program(&mut self, channel: u16, die: u16, failed: bool) {
        let h = self.die_health.entry((channel, die)).or_default();
        h.programs += 1;
        h.program_failures += failed as u64;
    }

    /// Records a block erase attempted on a die and whether it failed
    /// verification (successful erases are the die's wear rollup).
    pub fn record_die_erase(&mut self, channel: u16, die: u16, failed: bool) {
        let h = self.die_health.entry((channel, die)).or_default();
        h.erases += !failed as u64;
        h.erase_failures += failed as u64;
    }

    /// Records a disturb-charged sense against a die.
    pub fn record_die_disturb(&mut self, channel: u16, die: u16) {
        self.die_health
            .entry((channel, die))
            .or_default()
            .disturb_reads += 1;
    }

    /// Health telemetry for one die (zeros if it never saw traffic).
    pub fn die_health(&self, channel: u16, die: u16) -> DieHealth {
        self.die_health
            .get(&(channel, die))
            .copied()
            .unwrap_or_default()
    }

    /// Every die with recorded telemetry, sorted by `(channel, die)` for
    /// deterministic output.
    pub fn die_health_sorted(&self) -> Vec<((u16, u16), DieHealth)> {
        let mut v: Vec<_> = self.die_health.iter().map(|(&k, &h)| (k, h)).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Total read-retry ladder steps across all senses.
    pub fn read_retries(&self) -> u64 {
        self.read_retries
    }

    /// Read-retry depth histogram: `[d]` counts the successful senses
    /// that needed exactly `d` ladder steps. Deep-but-successful reads
    /// are the patrol scrubber's input signal — a page repeatedly landing
    /// in the high buckets is drifting toward uncorrectable.
    pub fn retry_depth_histogram(&self) -> [u64; RETRY_DEPTH_BUCKETS] {
        self.retry_depth
    }

    /// Reads declared ECC-uncorrectable after exhausting the ladder.
    pub fn uncorrectable_reads(&self) -> u64 {
        self.uncorrectable_reads
    }

    /// Programs that failed verification.
    pub fn program_failures(&self) -> u64 {
        self.program_failures
    }

    /// Erases that failed verification.
    pub fn erase_failures(&self) -> u64 {
        self.erase_failures
    }

    /// Power losses injected over the device's lifetime.
    pub fn power_losses(&self) -> u64 {
        self.power_losses
    }

    /// Pages torn by power losses over the device's lifetime.
    pub fn pages_torn(&self) -> u64 {
        self.pages_torn
    }

    /// Pages silently corrupted (ECC miscorrections) over the device's
    /// lifetime.
    pub fn silent_corruptions(&self) -> u64 {
        self.silent_corruptions
    }

    /// Array senses charged against per-block disturb counters.
    pub fn disturb_reads(&self) -> u64 {
        self.disturb_reads
    }

    /// Read errors attributable to disturb amplification alone.
    pub fn disturb_triggered_errors(&self) -> u64 {
        self.disturb_triggered_errors
    }

    /// Average array reads per distinct page (paper's "read re-access").
    pub fn mean_reads_per_page(&self) -> f64 {
        if self.page_reads.is_empty() {
            return 0.0;
        }
        let total: u64 = self.page_reads.values().map(|&c| c as u64).sum();
        total as f64 / self.page_reads.len() as f64
    }

    /// Average array programs per distinct page ("write redundancy").
    pub fn mean_programs_per_page(&self) -> f64 {
        if self.page_programs.is_empty() {
            return 0.0;
        }
        let total: u64 = self.page_programs.values().map(|&c| c as u64).sum();
        total as f64 / self.page_programs.len() as f64
    }

    /// Total array reads.
    pub fn total_reads(&self) -> u64 {
        self.page_reads.values().map(|&c| c as u64).sum()
    }

    /// Total array programs.
    pub fn total_programs(&self) -> u64 {
        self.page_programs.values().map(|&c| c as u64).sum()
    }

    /// Distinct pages read at least once.
    pub fn distinct_pages_read(&self) -> usize {
        self.page_reads.len()
    }

    /// Distinct pages programmed at least once.
    pub fn distinct_pages_programmed(&self) -> usize {
        self.page_programs.len()
    }

    /// Bytes sensed from flash arrays.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Bytes programmed into flash arrays.
    pub fn bytes_programmed(&self) -> u64 {
        self.bytes_programmed
    }

    /// Flash-array bandwidth achieved over the window `[0, now]` in GB/s
    /// (the Fig. 11 metric).
    pub fn array_gbps(&self, now: Cycle, freq: Freq) -> f64 {
        if now == Cycle::ZERO {
            return 0.0;
        }
        let secs = now.raw() as f64 / freq.hz();
        (self.bytes_read + self.bytes_programmed) as f64 / 1e9 / secs
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.page_reads.clear();
        self.page_programs.clear();
        self.bytes_read = 0;
        self.bytes_programmed = 0;
        self.read_retries = 0;
        self.retry_depth = [0; RETRY_DEPTH_BUCKETS];
        self.uncorrectable_reads = 0;
        self.program_failures = 0;
        self.erase_failures = 0;
        self.power_losses = 0;
        self.pages_torn = 0;
        self.silent_corruptions = 0;
        self.disturb_reads = 0;
        self.disturb_triggered_errors = 0;
        self.die_health.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = FlashStats::new();
        assert_eq!(s.mean_reads_per_page(), 0.0);
        assert_eq!(s.mean_programs_per_page(), 0.0);
        assert_eq!(s.array_gbps(Cycle::ZERO, Freq::default()), 0.0);
    }

    #[test]
    fn reaccess_is_mean_reads_per_distinct_page() {
        let mut s = FlashStats::new();
        for _ in 0..10 {
            s.record_read(1, 4096);
        }
        s.record_read(2, 4096);
        s.record_read(3, 4096);
        // 12 reads over 3 pages = 4.0 mean.
        assert!((s.mean_reads_per_page() - 4.0).abs() < 1e-12);
        assert_eq!(s.total_reads(), 12);
        assert_eq!(s.distinct_pages_read(), 3);
        assert_eq!(s.bytes_read(), 12 * 4096);
    }

    #[test]
    fn write_redundancy_counts_programs() {
        let mut s = FlashStats::new();
        for _ in 0..5 {
            s.record_program(7, 4096);
        }
        assert!((s.mean_programs_per_page() - 5.0).abs() < 1e-12);
        assert_eq!(s.distinct_pages_programmed(), 1);
    }

    #[test]
    fn bandwidth_math() {
        let mut s = FlashStats::new();
        s.record_read(1, 1_000_000_000); // 1 GB
        let f = Freq::ghz(1.0);
        // 1 GB in 1e9 cycles at 1 GHz = 1 second -> 1 GB/s.
        assert!((s.array_gbps(Cycle(1_000_000_000), f) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let mut s = FlashStats::new();
        s.record_read(1, 10);
        s.record_program(1, 10);
        s.record_read_retries(3);
        s.record_uncorrectable_read();
        s.record_program_failure();
        s.record_erase_failure();
        assert_eq!(s.read_retries(), 3);
        assert_eq!(s.uncorrectable_reads(), 1);
        assert_eq!(s.program_failures(), 1);
        assert_eq!(s.erase_failures(), 1);
        s.reset();
        assert_eq!(s.total_reads(), 0);
        assert_eq!(s.total_programs(), 0);
        assert_eq!(s.bytes_programmed(), 0);
        assert_eq!(s.read_retries(), 0);
        assert_eq!(s.retry_depth_histogram(), [0; RETRY_DEPTH_BUCKETS]);
        assert_eq!(s.uncorrectable_reads(), 0);
        assert_eq!(s.program_failures(), 0);
        assert_eq!(s.erase_failures(), 0);
    }

    #[test]
    fn disturb_counters_accumulate_and_reset() {
        let mut s = FlashStats::new();
        assert_eq!(s.disturb_reads(), 0);
        assert_eq!(s.disturb_triggered_errors(), 0);
        s.record_disturb_read();
        s.record_disturb_read();
        s.record_disturb_triggered_error();
        assert_eq!(s.disturb_reads(), 2);
        assert_eq!(s.disturb_triggered_errors(), 1);
        s.reset();
        assert_eq!(s.disturb_reads(), 0);
        assert_eq!(s.disturb_triggered_errors(), 0);
    }

    #[test]
    fn die_health_tracks_per_die_counters_and_ewma() {
        let mut s = FlashStats::new();
        assert_eq!(s.die_health(0, 0), DieHealth::default());
        s.record_die_read(0, 0, 0);
        s.record_die_read(0, 0, 4);
        s.record_die_uncorrectable(0, 0);
        s.record_die_program(0, 0, false);
        s.record_die_program(0, 0, true);
        s.record_die_erase(0, 0, false);
        s.record_die_erase(0, 0, true);
        s.record_die_disturb(0, 0);
        s.record_die_read(1, 3, 0);
        let h = s.die_health(0, 0);
        assert_eq!(h.reads, 3);
        assert_eq!(h.retry_steps, 4 + MAX_READ_RETRIES as u64);
        assert_eq!(h.uncorrectable_reads, 1);
        assert_eq!(h.programs, 2);
        assert_eq!(h.program_failures, 1);
        assert_eq!(h.erases, 1);
        assert_eq!(h.erase_failures, 1);
        assert_eq!(h.disturb_reads, 1);
        assert!(h.retry_ewma > 0.0, "retries must move the EWMA");
        assert!((h.program_failure_rate() - 0.5).abs() < 1e-12);
        assert!((h.uncorrectable_rate() - 1.0 / 3.0).abs() < 1e-12);
        // Quiet dies stay untracked; sorted view is deterministic.
        let sorted = s.die_health_sorted();
        assert_eq!(sorted.len(), 2);
        assert_eq!(sorted[0].0, (0, 0));
        assert_eq!(sorted[1].0, (1, 3));
        s.reset();
        assert!(s.die_health_sorted().is_empty());
        assert_eq!(s.die_health(0, 0), DieHealth::default());
    }

    #[test]
    fn die_retry_ewma_converges_toward_sustained_depth() {
        let mut s = FlashStats::new();
        for _ in 0..200 {
            s.record_die_read(2, 1, 3);
        }
        let h = s.die_health(2, 1);
        assert!((h.retry_ewma - 3.0).abs() < 1e-3, "ewma {}", h.retry_ewma);
    }

    #[test]
    fn retry_depth_histogram_buckets_by_depth() {
        let mut s = FlashStats::new();
        s.record_read_retries(0);
        s.record_read_retries(0);
        s.record_read_retries(2);
        s.record_read_retries(99); // clamps into the deepest bucket
        let h = s.retry_depth_histogram();
        assert_eq!(h[0], 2);
        assert_eq!(h[2], 1);
        assert_eq!(h[RETRY_DEPTH_BUCKETS - 1], 1);
        assert_eq!(s.read_retries(), 101);
    }
}
