//! The flash-device facade: packages + network + statistics.
//!
//! [`FlashDevice`] is what FTLs and platforms drive. It owns one package
//! per channel (Table I), the flash network, and the per-page statistics
//! behind Figures 11–13. Two canonical configurations:
//!
//! * [`FlashDevice::hybrid_config`] — ONFI bus network, private per-plane
//!   registers (the HybridGPU SSD module).
//! * [`FlashDevice::zng_config`] — 8 B mesh network, grouped registers
//!   with a selectable interconnect (ZnG).

use zng_sim::AdmissionQueue;
use zng_types::{
    ids::{ChannelId, DieId},
    BlockAddr, Cycle, Error, FlashAddr, Freq, Result,
};

use crate::block::{Block, OobMeta, PageOob};
use crate::fault::{
    DegradeState, DegradingDie, FaultConfig, PlaneFaults, PlaneSdc, SdcConfig,
    RETRY_STEP_EXTRA_CYCLES,
};
use crate::geometry::FlashGeometry;
use crate::network::FlashNetwork;
use crate::package::{BufferedWrite, FlashPackage, PendingProgram, RegisterTopology};
use crate::plane::{EraseReport, ProgramReport};
use crate::stats::FlashStats;
use crate::timing::{FlashCycles, FlashTiming};

/// Z-NAND program/erase endurance (paper §II-B).
pub const PE_LIMIT: u32 = 100_000;

/// A device-global logical page identity used for register lookups and
/// re-access/redundancy statistics.
pub type PageKey = u64;

/// Device-wide wear/endurance summary (paper §VI, Z-NAND lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnduranceReport {
    /// Erase operations across the whole device.
    pub total_erases: u64,
    /// Erases endured by the worst-worn block.
    pub max_block_erases: u32,
    /// Erases endured by the least-worn block (zero while any block has
    /// never been erased).
    pub min_block_erases: u32,
    /// Blocks erased at least once.
    pub worn_blocks: u64,
    /// Total blocks in the device geometry.
    pub total_blocks: u64,
    /// The media's program/erase endurance (Z-NAND: 100 000).
    pub pe_limit: u32,
}

impl EnduranceReport {
    /// Fraction of the worst block's endurance consumed (0.0-1.0).
    pub fn worst_wear_fraction(&self) -> f64 {
        self.max_block_erases as f64 / self.pe_limit as f64
    }

    /// Fraction of the least-worn block's endurance consumed (0.0-1.0).
    pub fn min_wear_fraction(&self) -> f64 {
        self.min_block_erases as f64 / self.pe_limit as f64
    }

    /// Mean erase fraction across *all* blocks (untouched ones included).
    pub fn mean_wear_fraction(&self) -> f64 {
        if self.total_blocks == 0 {
            return 0.0;
        }
        self.total_erases as f64 / self.total_blocks as f64 / self.pe_limit as f64
    }

    /// Wear spread: the worst block's erase fraction over the device
    /// mean (1.0 = perfectly even; the static wear leveler's trigger
    /// metric). Defined as 1.0 on an unworn device.
    pub fn wear_spread(&self) -> f64 {
        let mean = self.mean_wear_fraction();
        if mean <= 0.0 {
            return 1.0;
        }
        self.worst_wear_fraction() / mean
    }

    /// Wear-levelling quality: mean erases per worn block divided by the
    /// worst block's erases (1.0 = perfectly even).
    pub fn evenness(&self) -> f64 {
        if self.max_block_erases == 0 || self.worn_blocks == 0 {
            return 1.0;
        }
        (self.total_erases as f64 / self.worn_blocks as f64) / self.max_block_erases as f64
    }
}

/// What a sudden power loss destroyed (returned by
/// [`FlashDevice::power_loss`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerLossReport {
    /// Demand programs that were in flight when power was cut; their
    /// pages are now detectably torn.
    pub pages_torn: u64,
    /// Pages that lived only in the volatile register write cache and
    /// were lost outright (never durable, never acknowledged as such).
    pub register_pages_lost: u64,
}

/// The assembled Z-NAND device.
#[derive(Debug, Clone)]
pub struct FlashDevice {
    geometry: FlashGeometry,
    cycles: FlashCycles,
    packages: Vec<FlashPackage>,
    network: FlashNetwork,
    stats: FlashStats,
    /// Monotonic program sequence, stamped onto successfully programmed
    /// pages for write-loss verification (pure metadata, no timing).
    program_seq: u64,
    /// Erase barrier: the program sequence at the most recent erase.
    /// The controller only issues an erase once the programs whose
    /// invalidations justified it have verified, so at a power loss every
    /// program sequenced at or before this watermark has completed.
    fenced_seq: u64,
    /// One finite request queue per channel controller. Unbounded (and
    /// untracked) by default; FTL demand traffic asks for admission here
    /// while GC/recovery traffic bypasses it, so reclamation can always
    /// make progress.
    admission: Vec<AdmissionQueue>,
    /// Dies that failed outright, as `(channel, die)` pairs. Every array
    /// access under a dead die errors; the package's registers and I/O
    /// ports survive (the failure domain is the die, not the chip).
    dead_dies: Vec<(u16, u16)>,
    /// Array reads refused because their die is dead.
    dead_die_reads: u64,
    /// Per-plane silent-corruption streams, indexed by the same
    /// device-global plane tag as the RBER streams. Empty (no RNG state
    /// at all) unless a non-zero SDC rate was configured.
    sdc: Vec<Option<PlaneSdc>>,
    /// One-shot deterministic corruption: the program whose sequence
    /// number equals this value lands silently corrupted.
    sdc_at: Option<u64>,
    /// Read-disturb tracking unit (senses per P/E-equivalent cycle of
    /// exposure); `None` disables endurance accounting entirely.
    disturb_unit: Option<u64>,
    /// Degrading-die fault state ([`FaultConfig::degrading`]): escalating
    /// read/program penalties through a cycle window, death at its end.
    /// `None` (the default) performs no draws at all.
    degrade: Option<DegradeState>,
}

impl FlashDevice {
    /// Builds a device with an explicit network and register topology.
    pub fn new(
        geometry: FlashGeometry,
        timing: FlashTiming,
        freq: Freq,
        network: FlashNetwork,
        registers: RegisterTopology,
    ) -> Result<FlashDevice> {
        geometry.validate()?;
        let cycles = timing.to_cycles(freq);
        let packages = (0..geometry.channels)
            .map(|ch| {
                FlashPackage::new(
                    ChannelId(ch as u16),
                    geometry.dies_per_package,
                    geometry.planes_per_die,
                    geometry.blocks_per_plane as u32,
                    geometry.pages_per_block as u32,
                    geometry.page_bytes,
                    geometry.registers_per_plane,
                    geometry.io_ports_per_package,
                    cycles,
                    registers,
                )
            })
            .collect();
        let channels = geometry.channels;
        Ok(FlashDevice {
            geometry,
            cycles,
            packages,
            network,
            stats: FlashStats::new(),
            program_seq: 0,
            fenced_seq: 0,
            admission: vec![AdmissionQueue::new(); channels],
            dead_dies: Vec::new(),
            dead_die_reads: 0,
            sdc: Vec::new(),
            sdc_at: None,
            disturb_unit: None,
            degrade: None,
        })
    }

    /// Enables (or disables, with `None`) read-disturb endurance
    /// tracking: every array sense charges its block's disturb counter
    /// and every `unit` senses amplify the block's effective RBER/SDC
    /// wear by one P/E cycle until the block is erased. Off by default;
    /// the off state performs no counter updates and leaves every fault
    /// draw bit-identical.
    pub fn set_endurance_tracking(&mut self, unit: Option<u64>) {
        self.disturb_unit = unit.map(|u| u.max(1));
        for pkg in &mut self.packages {
            for idx in 0..pkg.plane_count() {
                pkg.plane_mut(idx).set_disturb_unit(self.disturb_unit);
            }
        }
    }

    /// Whether read-disturb endurance tracking is enabled.
    pub fn endurance_tracking(&self) -> bool {
        self.disturb_unit.is_some()
    }

    /// `block`'s disturb exposure in P/E-equivalent cycles (zero when
    /// tracking is off).
    pub fn disturb_cycles(&self, block: BlockAddr) -> u64 {
        let plane_idx = self.plane_idx(block);
        self.packages[block.channel.index()]
            .plane(plane_idx)
            .disturb_cycles(block.block)
    }

    /// Fails the die at `(ch, die)`: from now on every array read,
    /// program or erase under it errors. The fault is permanent for the
    /// rest of the run; redundancy-aware FTLs fence the die's blocks and
    /// reconstruct its data from surviving stripe members. Idempotent.
    pub fn fail_die(&mut self, ch: ChannelId, die: DieId) {
        let key = (ch.index() as u16, die.index() as u16);
        if !self.dead_dies.contains(&key) {
            self.dead_dies.push(key);
        }
    }

    /// Whether the die at `(ch, die)` has failed.
    pub fn die_is_dead(&self, ch: ChannelId, die: DieId) -> bool {
        self.dead_dies
            .contains(&(ch.index() as u16, die.index() as u16))
    }

    /// The configured degrading die, if any.
    pub fn degrading_die(&self) -> Option<DegradingDie> {
        self.degrade.as_ref().map(|st| st.config())
    }

    /// Advances the degrading-die clock to `now`: once the configured
    /// death cycle is reached the die joins [`FlashDevice::dead_dies`]
    /// (reads behave exactly like an instant die failure). Called lazily
    /// by every timed array operation; maintenance loops may also call it
    /// so a quiet device still notices the death. Idempotent.
    pub fn degrade_tick(&mut self, now: Cycle) {
        let Some(st) = self.degrade.as_mut() else {
            return;
        };
        if st.tick(now.raw()) {
            let d = st.config();
            let key = (d.channel, d.die);
            if !self.dead_dies.contains(&key) {
                self.dead_dies.push(key);
            }
        }
    }

    /// Whether `(ch, die)` died by *degradation* rather than an instant
    /// `fail_die`. A degraded-dead die still accepts program/erase
    /// commands — they all fail verification (dead silicon verifies
    /// nothing) — so an FTL that never fenced it keeps limping along on
    /// its redrive machinery instead of hard-erroring.
    fn die_is_soft_dead(&self, ch: ChannelId, die: DieId) -> bool {
        self.degrade
            .as_ref()
            .is_some_and(|st| st.is_dead() && st.matches(ch.index() as u16, die.index() as u16))
    }

    /// Failed dies as `(channel, die)` pairs, in failure order.
    pub fn dead_dies(&self) -> &[(u16, u16)] {
        &self.dead_dies
    }

    /// Array reads refused because their die is dead (each one is a
    /// reconstruction opportunity for a redundant FTL).
    pub fn dead_die_reads(&self) -> u64 {
        self.dead_die_reads
    }

    /// Fails channel `ch`'s flash-network injection link; its traffic
    /// detours deterministically through the neighbouring channel (see
    /// [`FlashNetwork::fail_link`]).
    pub fn fail_link(&mut self, ch: ChannelId) {
        self.network.fail_link(ch);
    }

    fn check_die_alive(&self, block: BlockAddr) -> Result<()> {
        if self.die_is_dead(block.channel, block.die)
            && !self.die_is_soft_dead(block.channel, block.die)
        {
            return Err(Error::FlashProtocol(format!(
                "array access on dead die {}:{}",
                block.channel.index(),
                block.die.index()
            )));
        }
        Ok(())
    }

    /// Bounds every channel controller's request queue and the network's
    /// injection links (`None` = unbounded, the default). Only the
    /// explicit admission API ([`FlashDevice::try_admit`]) and
    /// [`FlashNetwork::try_transfer`] enforce the bound, so internal
    /// GC/recovery traffic keeps flowing under overload.
    pub fn set_queue_depth(&mut self, depth: Option<usize>) {
        for q in &mut self.admission {
            q.set_depth(depth);
        }
        self.network.set_queue_depth(depth);
    }

    /// Asks channel `ch`'s controller to admit one demand request at
    /// `now`. Fails with [`Error::Backpressure`] when the channel queue is
    /// full; no-op (always admitted) in unbounded mode.
    pub fn try_admit(&mut self, now: Cycle, ch: ChannelId) -> Result<()> {
        self.admission[ch.index()]
            .try_admit(now)
            .map_err(|retry_at| Error::Backpressure { retry_at })
    }

    /// Reports the completion time of the demand request most recently
    /// admitted on channel `ch` (releases its queue slot at `done`).
    pub fn note_inflight(&mut self, ch: ChannelId, done: Cycle) {
        self.admission[ch.index()].note_inflight(done);
    }

    /// Demand requests refused by channel admission plus injections
    /// refused by the network.
    pub fn qos_rejections(&self) -> u64 {
        self.admission.iter().map(|q| q.rejected()).sum::<u64>() + self.network.rejections()
    }

    /// Demand requests admitted under a bounded configuration.
    pub fn qos_admitted(&self) -> u64 {
        self.admission.iter().map(|q| q.admitted()).sum()
    }

    /// Largest in-flight population admitted on any channel queue or
    /// network link.
    pub fn qos_max_occupancy(&self) -> u64 {
        self.admission
            .iter()
            .map(|q| q.max_occupancy())
            .max()
            .unwrap_or(0)
            .max(self.network.max_link_occupancy())
    }

    /// Installs fault injection on every plane. Each plane gets its own
    /// RNG stream derived from `cfg.seed` and its device-global index, so
    /// runs are deterministic per seed; the `none` profile clears all
    /// fault state and performs no RNG draws at all.
    pub fn set_fault_config(&mut self, cfg: &FaultConfig) {
        let planes_per_package =
            (self.geometry.dies_per_package * self.geometry.planes_per_die) as u64;
        for (ch, pkg) in self.packages.iter_mut().enumerate() {
            for idx in 0..pkg.plane_count() {
                let tag = ch as u64 * planes_per_package + idx as u64;
                pkg.plane_mut(idx)
                    .set_faults(PlaneFaults::new(cfg, tag, PE_LIMIT as u64));
            }
        }
        self.degrade = DegradeState::new(cfg);
    }

    /// Installs silent-corruption (SDC) injection. A non-zero rate gives
    /// every plane its own RNG stream, seeded from `cfg.seed` and the
    /// device-global plane tag but salted so it never correlates with the
    /// RBER fault streams; a zero rate clears all SDC RNG state. The
    /// deterministic `sdc_at` one-shot needs no RNG either way.
    pub fn set_integrity_config(&mut self, cfg: &SdcConfig) {
        self.sdc_at = cfg.sdc_at;
        if cfg.rate > 0.0 {
            let planes_per_package = self.geometry.dies_per_package * self.geometry.planes_per_die;
            let total = self.geometry.channels * planes_per_package;
            self.sdc = (0..total)
                .map(|tag| PlaneSdc::new(cfg, tag as u64, PE_LIMIT as u64))
                .collect();
        } else {
            self.sdc = Vec::new();
        }
    }

    /// The HybridGPU-style device: 1 B ONFI bus, private registers.
    pub fn hybrid_config(geometry: FlashGeometry, freq: Freq) -> Result<FlashDevice> {
        geometry.validate()?;
        let timing = FlashTiming::znand();
        let net = FlashNetwork::bus(
            geometry.channels,
            timing.to_cycles(freq).channel_bytes_per_cycle,
        );
        FlashDevice::new(geometry, timing, freq, net, RegisterTopology::Private)
    }

    /// The ZnG device: 8 B mesh, grouped registers with interconnect
    /// `registers` (Table I: HW-NiF, 8 B width).
    pub fn zng_config(
        geometry: FlashGeometry,
        freq: Freq,
        registers: RegisterTopology,
    ) -> Result<FlashDevice> {
        geometry.validate()?;
        let net = FlashNetwork::mesh(geometry.channels, 8.0, Cycle(2));
        FlashDevice::new(geometry, FlashTiming::znand(), freq, net, registers)
    }

    fn plane_idx(&self, addr: BlockAddr) -> usize {
        self.packages[addr.channel.index()].plane_index(addr.die.index(), addr.plane.index())
    }

    /// Reads logical page `key` stored at `addr`, delivering
    /// `transfer_bytes` to the requesting controller.
    ///
    /// The whole 4 KB page is always sensed from the array (the
    /// granularity mismatch of §III-A); `transfer_bytes` controls how much
    /// crosses the flash network — 128 B for an unbuffered sector read,
    /// 4 KB when the L2 buffers the page (rdopt).
    ///
    /// If a flash register already holds `key` (a recently written page),
    /// the read is served from the register without an array access.
    ///
    /// # Errors
    ///
    /// Flash protocol errors (unprogrammed page, bad address), or
    /// [`Error::UncorrectableRead`] when fault injection exhausts the
    /// read-retry ladder (transient: a later attempt may succeed).
    pub fn read(
        &mut self,
        now: Cycle,
        addr: FlashAddr,
        key: PageKey,
        transfer_bytes: usize,
    ) -> Result<Cycle> {
        self.degrade_tick(now);
        let ch = addr.block.channel;
        let die = addr.block.die.index() as u16;
        let pkg = &mut self.packages[ch.index()];
        if pkg.register_holds(key) {
            let at_pins = pkg.read_from_register(now, transfer_bytes);
            return Ok(self.network.transfer(at_pins, ch, transfer_bytes));
        }
        if self.die_is_dead(ch, addr.block.die) {
            // Surfaced as an uncorrectable read so the FTL's existing
            // retry/reconstruction machinery handles both failure classes
            // through one path; retries are pointless on dead silicon, so
            // the ladder depth is reported as zero.
            self.dead_die_reads += 1;
            self.stats.record_die_uncorrectable(ch.index() as u16, die);
            return Err(Error::UncorrectableRead {
                block: addr.block.block as u64,
                page: addr.page,
                retries: 0,
            });
        }
        let plane_idx = self.plane_idx(addr.block);
        let track = self.disturb_unit.is_some();
        let (pre_noted, pre_errors) = if track {
            let p = self.packages[ch.index()].plane(plane_idx);
            (p.disturb_noted(), p.disturb_errors())
        } else {
            (0, 0)
        };
        let pkg = &mut self.packages[ch.index()];
        let result = pkg.read_page_from_array(now, plane_idx, addr.block.block, addr.page);
        if track {
            let p = self.packages[ch.index()].plane(plane_idx);
            for _ in pre_noted..p.disturb_noted() {
                self.stats.record_disturb_read();
                self.stats.record_die_disturb(ch.index() as u16, die);
            }
            for _ in pre_errors..p.disturb_errors() {
                self.stats.record_disturb_triggered_error();
            }
        }
        let r = match result {
            Ok(r) => r,
            Err(e) => {
                if matches!(e, Error::UncorrectableRead { .. }) {
                    self.stats.record_uncorrectable_read();
                    self.stats.record_die_uncorrectable(ch.index() as u16, die);
                }
                return Err(e);
            }
        };
        // Degrading-die penalty: a sense inside the window burns extra
        // retry-ladder steps (charged like organic retries), and can
        // exhaust the ladder outright.
        let mut extra = 0u32;
        if r.sensed {
            if let Some(st) = self.degrade.as_mut() {
                if !st.is_dead() && st.matches(ch.index() as u16, die) {
                    let (steps, exhausted) = st.read_penalty(now.raw());
                    extra = steps;
                    if exhausted {
                        // A failed sense never latches in the register.
                        self.packages[ch.index()].plane_mut(plane_idx).evict_latch();
                        self.stats.record_uncorrectable_read();
                        self.stats.record_die_uncorrectable(ch.index() as u16, die);
                        return Err(Error::UncorrectableRead {
                            block: addr.block.block as u64,
                            page: addr.page,
                            retries: extra,
                        });
                    }
                }
            }
        }
        let steps = r.retries as u64 + extra as u64;
        self.stats.record_read_retries(steps);
        let mut done = r.done;
        if r.sensed {
            self.stats.record_die_read(ch.index() as u16, die, steps);
            self.stats.record_read(key, self.geometry.page_bytes);
            self.maybe_miscorrect(now, addr);
            done += Cycle(extra as u64 * (self.cycles.read.raw() + RETRY_STEP_EXTRA_CYCLES));
        }
        Ok(self.network.transfer(done, ch, transfer_bytes))
    }

    /// Draws from the plane's SDC stream on a fresh array sense: with
    /// probability scaled by block wear and page retention age, the ECC
    /// engine miscorrects the payload and the page is silently corrupted
    /// from here on (the flag is in the array, so it persists across
    /// power loss until the block is erased). No-op — and no RNG draw —
    /// when SDC injection is off or the page is already corrupt.
    fn maybe_miscorrect(&mut self, now: Cycle, addr: FlashAddr) {
        if self.sdc.is_empty() {
            return;
        }
        let planes_per_package = self.geometry.dies_per_package * self.geometry.planes_per_die;
        let tag = addr.block.channel.index() * planes_per_package + self.plane_idx(addr.block);
        let (erase_count, age) = match self.block(addr.block) {
            Some(b) if !b.is_corrupt(addr.page) => {
                let age = match b.oob(addr.page) {
                    PageOob::Written(m) => now.raw().saturating_sub(m.programmed_at.raw()),
                    _ => now.raw(),
                };
                (b.erase_count() as u64, age)
            }
            _ => return,
        };
        let disturb = if self.disturb_unit.is_some() {
            self.packages[addr.block.channel.index()]
                .plane(self.plane_idx(addr.block))
                .disturb_cycles(addr.block.block)
        } else {
            0
        };
        let (hit, disturb_hit) = match self.sdc.get_mut(tag).and_then(|s| s.as_mut()) {
            Some(stream) => stream.miscorrects_disturbed(erase_count, age, disturb),
            None => return,
        };
        if disturb_hit {
            self.stats.record_disturb_triggered_error();
        }
        if hit {
            if let Ok(b) = self.block_mut(addr.block) {
                b.mark_corrupt(addr.page);
            }
            self.stats.record_silent_corruption();
        }
    }

    /// Serves `transfer_bytes` of logical page `key` from channel `ch`'s
    /// flash registers, if a register currently holds it.
    pub fn read_from_register_if_held(
        &mut self,
        now: Cycle,
        ch: ChannelId,
        key: PageKey,
        transfer_bytes: usize,
    ) -> Option<Cycle> {
        let pkg = &mut self.packages[ch.index()];
        if !pkg.register_holds(key) {
            return None;
        }
        let at_pins = pkg.read_from_register(now, transfer_bytes);
        Some(self.network.transfer(at_pins, ch, transfer_bytes))
    }

    /// Writes the OOB record of a successfully programmed page (stamp +
    /// LPN + block tag, atomically with the data) and bumps the sequence;
    /// failed programs count into the failure statistics instead.
    /// `demand` marks writes that tear if power is cut before
    /// `report.done`; GC migrations and preloads pass `false` (see
    /// [`OobMeta::demand`]).
    fn finish_program(
        &mut self,
        block: BlockAddr,
        key: PageKey,
        report: &ProgramReport,
        demand: bool,
    ) {
        self.stats.record_die_program(
            block.channel.index() as u16,
            block.die.index() as u16,
            report.failed,
        );
        if report.failed {
            self.stats.record_program_failure();
            return;
        }
        self.program_seq += 1;
        let seq = self.program_seq;
        let done = report.done;
        let sdc_hit = self.sdc_at == Some(seq);
        if let Ok(b) = self.block_mut(block) {
            let tag = b.kind();
            b.record_oob(
                report.page,
                OobMeta {
                    lpn: key,
                    seq,
                    tag,
                    programmed_at: done,
                    demand,
                },
            );
            if sdc_hit {
                b.mark_corrupt(report.page);
            }
        }
        if sdc_hit {
            self.stats.record_silent_corruption();
        }
    }

    /// Programs a full page of logical page `key` into the next in-order
    /// page of `block`, streaming the data across the network first.
    ///
    /// A report with [`ProgramReport::failed`] set means verification
    /// failed: the page holds garbage, the block is marked failed, and
    /// the FTL must re-drive the write into another block.
    ///
    /// # Errors
    ///
    /// Flash protocol errors (full block).
    pub fn program(&mut self, now: Cycle, block: BlockAddr, key: PageKey) -> Result<ProgramReport> {
        self.degrade_tick(now);
        self.check_die_alive(block)?;
        let ch = block.channel;
        let arrived = self.network.transfer(now, ch, self.geometry.page_bytes);
        let plane_idx = self.plane_idx(block);
        let pkg = &mut self.packages[ch.index()];
        let report = pkg.program_page(arrived, plane_idx, block.block)?;
        let report = self.degrade_program(now, block, report);
        self.stats.record_program(key, self.geometry.page_bytes);
        self.finish_program(block, key, &report, true);
        Ok(report)
    }

    /// Applies the degrading-die program penalty: inside the window a
    /// program on the degrading die fails verification with probability
    /// equal to the severity; past death every program on it fails (dead
    /// silicon verifies nothing). The burned page and failed block end
    /// up exactly as an organically drawn failure would, so the FTL's
    /// redrive/retire machinery absorbs both identically.
    fn degrade_program(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        mut report: ProgramReport,
    ) -> ProgramReport {
        if report.failed {
            return report;
        }
        let Some(st) = self.degrade.as_mut() else {
            return report;
        };
        if !st.matches(block.channel.index() as u16, block.die.index() as u16) {
            return report;
        }
        if st.is_dead() || st.program_fails(now.raw()) {
            report.failed = true;
            if let Ok(b) = self.block_mut(block) {
                b.mark_failed();
                b.invalidate(report.page);
            }
        }
        report
    }

    /// Programs a page as part of a GC migration: same mechanics as
    /// [`FlashDevice::program`], but counted as migration traffic rather
    /// than demand write redundancy.
    ///
    /// # Errors
    ///
    /// Flash protocol errors (full block).
    pub fn program_migrate(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        key: PageKey,
    ) -> Result<ProgramReport> {
        self.degrade_tick(now);
        self.check_die_alive(block)?;
        let ch = block.channel;
        let arrived = self.network.transfer(now, ch, self.geometry.page_bytes);
        let plane_idx = self.plane_idx(block);
        let pkg = &mut self.packages[ch.index()];
        let report = pkg.program_page(arrived, plane_idx, block.block)?;
        let report = self.degrade_program(now, block, report);
        self.stats
            .record_migration_program(self.geometry.page_bytes);
        self.finish_program(block, key, &report, false);
        Ok(report)
    }

    /// Programs a register-evicted page (data already inside the package).
    ///
    /// # Errors
    ///
    /// Flash protocol errors (full block).
    pub fn program_evicted(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        key: PageKey,
    ) -> Result<ProgramReport> {
        self.degrade_tick(now);
        self.check_die_alive(block)?;
        let plane_idx = self.plane_idx(block);
        let pkg = &mut self.packages[block.channel.index()];
        let report = pkg.program_page_internal(now, plane_idx, block.block)?;
        let report = self.degrade_program(now, block, report);
        self.stats.record_program(key, self.geometry.page_bytes);
        self.finish_program(block, key, &report, true);
        Ok(report)
    }

    /// Installs logical page `lpn` into the next in-order page of `block`
    /// with a full OOB record, **outside** the timing model: this is how
    /// FTLs pre-load a dataset that logically resided on the device at
    /// kernel launch. The stamp sequence still advances so later demand
    /// writes of the same LPN outrank the preload during recovery.
    ///
    /// # Errors
    ///
    /// Flash protocol errors (full block, bad address).
    pub fn preload_page(&mut self, block: BlockAddr, lpn: u64) -> Result<u32> {
        self.program_seq += 1;
        let seq = self.program_seq;
        let sdc_hit = self.sdc_at == Some(seq);
        let b = self.block_mut(block)?;
        let tag = b.kind();
        let page = b.program_next()?;
        b.record_oob(
            page,
            OobMeta {
                lpn,
                seq,
                tag,
                programmed_at: Cycle::ZERO,
                demand: false,
            },
        );
        if sdc_hit {
            b.mark_corrupt(page);
            self.stats.record_silent_corruption();
        }
        Ok(page)
    }

    /// Submits a 128 B sector write of `key` (homed at `home`) to the
    /// flash registers of the home package (wropt write path).
    pub fn buffered_write(&mut self, now: Cycle, key: PageKey, home: BlockAddr) -> BufferedWrite {
        let ch = home.channel;
        let arrived = self.network.transfer(now, ch, 128);
        let plane_idx = self.plane_idx(home);
        let pkg = &mut self.packages[ch.index()];
        pkg.buffered_write(arrived, key, plane_idx, 128, &mut self.network)
    }

    /// Erases `block`. A report with [`EraseReport::failed`] set means
    /// the block failed erase verification and must be retired.
    ///
    /// # Errors
    ///
    /// Flash protocol errors (valid pages remain).
    pub fn erase(&mut self, now: Cycle, block: BlockAddr) -> Result<EraseReport> {
        self.degrade_tick(now);
        self.check_die_alive(block)?;
        let plane_idx = self.plane_idx(block);
        // Erase barrier: all programs issued so far are ordered before
        // this erase (see the `fenced_seq` field).
        self.fenced_seq = self.program_seq;
        let mut report =
            self.packages[block.channel.index()].erase_block(now, plane_idx, block.block)?;
        // Degrading-die erase penalty, mirroring the program penalty.
        if !report.failed {
            if let Some(st) = self.degrade.as_mut() {
                if st.matches(block.channel.index() as u16, block.die.index() as u16)
                    && (st.is_dead() || st.erase_fails(now.raw()))
                {
                    report.failed = true;
                    if let Ok(b) = self.block_mut(block) {
                        b.mark_failed();
                    }
                }
            }
        }
        if report.failed {
            self.stats.record_erase_failure();
        }
        self.stats.record_die_erase(
            block.channel.index() as u16,
            block.die.index() as u16,
            report.failed,
        );
        Ok(report)
    }

    /// The `(key, sequence)` stamped by the last successful program of
    /// the page at `addr` (verification metadata, no timing impact).
    pub fn page_stamp(&self, addr: FlashAddr) -> Option<(u64, u64)> {
        self.block(addr.block).and_then(|b| b.stamp(addr.page))
    }

    /// The full OOB record of the page at `addr`, if it was programmed
    /// with one and not torn.
    pub fn page_oob(&self, addr: FlashAddr) -> Option<OobMeta> {
        match self.block(addr.block).map(|b| b.oob(addr.page)) {
            Some(PageOob::Written(m)) => Some(m),
            _ => None,
        }
    }

    /// Whether the page at `addr` was torn by a power loss.
    pub fn page_is_torn(&self, addr: FlashAddr) -> bool {
        self.block(addr.block).is_some_and(|b| b.is_torn(addr.page))
    }

    /// Whether the page at `addr` holds a silently corrupted payload (its
    /// end-to-end checksum would fail even though ECC reported success).
    pub fn page_is_corrupt(&self, addr: FlashAddr) -> bool {
        self.block(addr.block)
            .is_some_and(|b| b.is_corrupt(addr.page))
    }

    /// Marks the page at `addr` silently corrupted (test/fault-injection
    /// aid; the organic paths are the SDC streams and `sdc_at`).
    ///
    /// # Errors
    ///
    /// Returns an address error for an invalid block index.
    pub fn mark_page_corrupt(&mut self, addr: FlashAddr) -> Result<()> {
        self.block_mut(addr.block)?.mark_corrupt(addr.page);
        self.stats.record_silent_corruption();
        Ok(())
    }

    /// Cuts power to the whole device at `now`.
    ///
    /// Everything volatile is lost: the register write caches of every
    /// package (unwritten pages are gone), the plane cache-register
    /// latches, and the per-block validity/role bookkeeping that mirrors
    /// FTL state. In-flight demand programs (`programmed_at > now`) are
    /// torn. Only the flash arrays — programmed pages, OOB records, wear
    /// counters, sticky failure flags — survive, which is exactly what an
    /// FTL `recover()` scan starts from.
    pub fn power_loss(&mut self, now: Cycle) -> PowerLossReport {
        let mut report = PowerLossReport {
            pages_torn: 0,
            register_pages_lost: 0,
        };
        for pkg in &mut self.packages {
            let (torn, dropped) = pkg.power_loss(now, self.fenced_seq);
            report.pages_torn += torn;
            report.register_pages_lost += dropped;
        }
        self.stats.record_power_loss(report.pages_torn);
        report
    }

    /// Marks a page stale (superseded by a newer program elsewhere).
    pub fn invalidate(&mut self, addr: FlashAddr) {
        let plane_idx = self.plane_idx(addr.block);
        if let Ok(b) = self.packages[addr.block.channel.index()]
            .plane_mut(plane_idx)
            .block_mut(addr.block.block)
        {
            b.invalidate(addr.page);
        }
    }

    /// Shared access to a block's state, if it was ever touched.
    pub fn block(&self, addr: BlockAddr) -> Option<&Block> {
        let plane_idx = self.plane_idx(addr);
        self.packages[addr.channel.index()]
            .plane(plane_idx)
            .block(addr.block)
    }

    /// Mutable access to a block's state (creates it erased).
    ///
    /// # Errors
    ///
    /// Returns an address error for an invalid block index.
    pub fn block_mut(&mut self, addr: BlockAddr) -> Result<&mut Block> {
        let plane_idx = self.plane_idx(addr);
        self.packages[addr.channel.index()]
            .plane_mut(plane_idx)
            .block_mut(addr.block)
    }

    /// Drains the registers of `channel`'s package (GC flush).
    pub fn flush_registers(&mut self, now: Cycle, channel: ChannelId) -> Vec<PendingProgram> {
        let pkg = &mut self.packages[channel.index()];
        pkg.flush_registers(now, &mut self.network)
    }

    /// Drops a stale register entry anywhere in the device.
    pub fn discard_register(&mut self, channel: ChannelId, key: PageKey) -> bool {
        self.packages[channel.index()].discard_register(key)
    }

    /// The device geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Media timing in cycles.
    pub fn cycles(&self) -> FlashCycles {
        self.cycles
    }

    /// Access statistics.
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    /// The flash network (for utilization inspection).
    pub fn network(&self) -> &FlashNetwork {
        &self.network
    }

    /// One package by channel.
    pub fn package(&self, ch: ChannelId) -> &FlashPackage {
        &self.packages[ch.index()]
    }

    /// Cross-plane register migrations across all packages (Fig. 14
    /// accounting).
    pub fn total_migrations(&self) -> u64 {
        self.packages.iter().map(|p| p.migrations()).sum()
    }

    /// Resets statistics (not media state).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Endurance summary across every block ever touched (paper §VI's
    /// lifetime discussion): total erases, the worst-worn block, and how
    /// evenly wear is spread.
    pub fn endurance(&self) -> EnduranceReport {
        let mut total = 0u64;
        let mut max = 0u32;
        let mut min = u32::MAX;
        let mut worn_blocks = 0u64;
        let total_blocks = self.geometry.total_blocks() as u64;
        for idx in 0..total_blocks {
            let addr = match self.geometry.block_for_index(idx) {
                Ok(a) => a,
                Err(_) => continue,
            };
            let e = self.block(addr).map(|b| b.erase_count()).unwrap_or(0);
            min = min.min(e);
            if e > 0 {
                worn_blocks += 1;
                total += e as u64;
                max = max.max(e);
            }
        }
        EnduranceReport {
            total_erases: total,
            max_block_erases: max,
            min_block_erases: if min == u32::MAX { 0 } else { min },
            worn_blocks,
            total_blocks,
            pe_limit: PE_LIMIT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zng_types::ids::{DieId, PlaneId};

    fn device() -> FlashDevice {
        FlashDevice::zng_config(
            FlashGeometry::tiny(),
            Freq::default(),
            RegisterTopology::NiF,
        )
        .unwrap()
    }

    fn block0() -> BlockAddr {
        BlockAddr::new(ChannelId(0), DieId(0), PlaneId(0), 0)
    }

    #[test]
    fn program_then_read_roundtrip() {
        let mut d = device();
        let r = d.program(Cycle(0), block0(), 1).unwrap();
        assert_eq!(r.page, 0);
        assert!(!r.failed);
        assert!(r.done >= Cycle(120_000));
        let t_read = d.read(r.done, block0().page(0), 1, 128).unwrap();
        assert!(t_read > r.done);
        assert_eq!(d.stats().total_reads(), 1);
        assert_eq!(d.stats().total_programs(), 1);
    }

    #[test]
    fn read_unprogrammed_page_fails() {
        let mut d = device();
        assert!(d.read(Cycle(0), block0().page(3), 9, 128).is_err());
    }

    #[test]
    fn register_hit_avoids_array_read() {
        let mut d = device();
        // Write key 77 into the registers of block0's home package.
        d.buffered_write(Cycle(0), 77, block0());
        let before = d.stats().total_reads();
        // Read it back: register-served, page need not even exist on
        // flash yet.
        let t = d.read(Cycle(0), block0().page(0), 77, 128).unwrap();
        assert!(t > Cycle(0));
        assert_eq!(d.stats().total_reads(), before, "no array read");
    }

    #[test]
    fn sector_vs_page_transfer_cost() {
        let mut d = device();
        d.program(Cycle(0), block0(), 1).unwrap();
        let t_sector = d.read(Cycle(1_000_000), block0().page(0), 1, 128).unwrap();
        let mut d2 = device();
        d2.program(Cycle(0), block0(), 1).unwrap();
        let t_page = d2
            .read(Cycle(1_000_000), block0().page(0), 1, 4096)
            .unwrap();
        assert!(t_page > t_sector, "4 KB network transfer costs more");
    }

    #[test]
    fn erase_requires_dead_pages() {
        let mut d = device();
        d.program(Cycle(0), block0(), 5).unwrap();
        assert!(d.erase(Cycle(0), block0()).is_err());
        d.invalidate(block0().page(0));
        assert!(d.erase(Cycle(0), block0()).is_ok());
    }

    #[test]
    fn buffered_write_eventually_evicts() {
        let mut d = device();
        // tiny geometry: 2x2 planes, 4 regs/plane = 16 registers/package.
        let mut evicted = 0;
        for k in 0..40u64 {
            let r = d.buffered_write(Cycle(0), k, block0());
            if r.eviction.is_some() {
                evicted += 1;
            }
        }
        assert!(evicted > 0);
    }

    #[test]
    fn register_if_held_serves_without_array() {
        let mut d = device();
        assert!(d
            .read_from_register_if_held(Cycle(0), ChannelId(0), 42, 128)
            .is_none());
        d.buffered_write(Cycle(0), 42, block0());
        let t = d
            .read_from_register_if_held(Cycle(10), ChannelId(0), 42, 128)
            .expect("register-held");
        assert!(t > Cycle(10));
        assert_eq!(d.stats().total_reads(), 0, "no array sense");
    }

    #[test]
    fn migration_programs_do_not_count_as_demand_redundancy() {
        let mut d = device();
        d.program(Cycle(0), block0(), 7).unwrap();
        let before_pages = d.stats().mean_programs_per_page();
        let b1 = BlockAddr::new(ChannelId(1), DieId(0), PlaneId(0), 0);
        d.program_migrate(Cycle(0), b1, 7).unwrap();
        assert_eq!(d.stats().mean_programs_per_page(), before_pages);
        assert!(d.stats().bytes_programmed() >= 2 * 4096);
    }

    #[test]
    fn stamps_record_successful_programs() {
        let mut d = device();
        let r1 = d.program(Cycle(0), block0(), 10).unwrap();
        let r2 = d.program(Cycle(0), block0(), 11).unwrap();
        let a1 = block0().page(r1.page);
        let a2 = block0().page(r2.page);
        let (k1, s1) = d.page_stamp(a1).unwrap();
        let (k2, s2) = d.page_stamp(a2).unwrap();
        assert_eq!((k1, k2), (10, 11));
        assert!(s2 > s1, "sequence is monotonic");
        assert!(d.page_stamp(block0().page(99)).is_none());
    }

    #[test]
    fn power_loss_tears_inflight_and_drops_registers() {
        let mut d = device();
        // A completed program (cut happens long after done).
        let r0 = d.program(Cycle(0), block0(), 10).unwrap();
        // An in-flight demand program: cut at its issue time.
        let r1 = d.program(r0.done, block0(), 11).unwrap();
        // A register-resident page that never reached the array.
        d.buffered_write(r0.done, 99, block0());
        let rep = d.power_loss(r0.done + Cycle(1));
        assert_eq!(rep.pages_torn, 1);
        assert_eq!(rep.register_pages_lost, 1);
        // The durable page survives with its OOB intact.
        let m = d.page_oob(block0().page(r0.page)).unwrap();
        assert_eq!(m.lpn, 10);
        assert!(d.page_is_torn(block0().page(r1.page)));
        assert!(d.page_oob(block0().page(r1.page)).is_none());
        // Torn pages are refused at the device level too.
        assert!(matches!(
            d.read(Cycle(10_000_000), block0().page(r1.page), 11, 128),
            Err(Error::TornPage { .. })
        ));
        assert_eq!(d.stats().power_losses(), 1);
        assert_eq!(d.stats().pages_torn(), 1);
    }

    #[test]
    fn erase_fences_earlier_programs_from_tearing() {
        let mut d = device();
        // An in-flight demand program (done far in the future)…
        let r = d.program(Cycle(0), block0(), 5).unwrap();
        assert!(r.done > Cycle(1));
        // …followed by an erase elsewhere: the controller only issues an
        // erase after the programs ordered before it have verified.
        let other = BlockAddr::new(ChannelId(1), DieId(0), PlaneId(0), 0);
        let rp = d.program(Cycle(0), other, 6).unwrap();
        d.invalidate(other.page(rp.page));
        d.erase(Cycle(0), other).unwrap();
        let rep = d.power_loss(Cycle(1));
        assert_eq!(rep.pages_torn, 0, "the erase barrier covers the program");
        assert!(d.page_oob(block0().page(r.page)).is_some());
    }

    #[test]
    fn preload_stamps_oob_outside_timing() {
        let mut d = device();
        let page = d.preload_page(block0(), 42).unwrap();
        let m = d.page_oob(block0().page(page)).unwrap();
        assert_eq!(m.lpn, 42);
        assert!(!m.demand);
        assert_eq!(m.programmed_at, Cycle::ZERO);
        assert_eq!(d.stats().total_programs(), 0, "no timing, no stats");
        // A later demand program outranks the preload.
        let r = d.program(Cycle(0), block0(), 42).unwrap();
        let m2 = d.page_oob(block0().page(r.page)).unwrap();
        assert!(m2.seq > m.seq);
    }

    #[test]
    fn fault_config_streams_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut d = device();
            d.set_fault_config(&crate::fault::FaultConfig::end_of_life().with_seed(seed));
            let mut log = Vec::new();
            for k in 0..32u64 {
                let r = d.program(Cycle(0), block0(), k);
                log.push(match r {
                    Ok(rep) => (rep.failed, rep.page),
                    Err(_) => (true, u32::MAX),
                });
            }
            (log, d.stats().program_failures())
        };
        assert_eq!(run(9), run(9), "same seed, same fault sequence");
    }

    #[test]
    fn none_profile_draws_nothing() {
        let mut d = device();
        d.set_fault_config(&crate::fault::FaultConfig::none());
        for k in 0..16u64 {
            assert!(!d.program(Cycle(0), block0(), k).unwrap().failed);
        }
        d.invalidate(block0().page(0));
        assert_eq!(d.stats().read_retries(), 0);
        assert_eq!(d.stats().program_failures(), 0);
    }

    #[test]
    fn invalid_geometry_rejected() {
        let mut g = FlashGeometry::tiny();
        g.channels = 0;
        assert!(FlashDevice::zng_config(g, Freq::default(), RegisterTopology::NiF).is_err());
    }

    #[test]
    fn dead_die_refuses_array_access_but_keeps_registers() {
        let mut d = device();
        let r = d.program(Cycle(0), block0(), 1).unwrap();
        d.fail_die(ChannelId(0), DieId(0));
        assert!(d.die_is_dead(ChannelId(0), DieId(0)));
        assert!(!d.die_is_dead(ChannelId(0), DieId(1)));
        assert_eq!(d.dead_dies(), &[(0, 0)]);
        // Reads come back as uncorrectable with zero ladder depth.
        assert!(matches!(
            d.read(Cycle(1_000_000), block0().page(r.page), 1, 128),
            Err(Error::UncorrectableRead { retries: 0, .. })
        ));
        assert_eq!(d.dead_die_reads(), 1);
        // Programs and erases are refused outright.
        assert!(d.program(Cycle(0), block0(), 2).is_err());
        assert!(d.erase(Cycle(0), block0()).is_err());
        // The surviving die on the same channel still works.
        let b_live = BlockAddr::new(ChannelId(0), DieId(1), PlaneId(0), 0);
        let r2 = d.program(Cycle(0), b_live, 3).unwrap();
        assert!(d.read(r2.done, b_live.page(r2.page), 3, 128).is_ok());
        // Register-resident pages survive: the failure domain is the die.
        d.buffered_write(Cycle(0), 42, block0());
        assert!(d
            .read_from_register_if_held(Cycle(10), ChannelId(0), 42, 128)
            .is_some());
    }

    #[test]
    fn sdc_at_corrupts_exactly_one_program() {
        let mut d = device();
        d.set_integrity_config(&SdcConfig {
            rate: 0.0,
            sdc_at: Some(2),
            seed: 42,
        });
        let r1 = d.program(Cycle(0), block0(), 10).unwrap();
        let r2 = d.program(Cycle(0), block0(), 11).unwrap();
        let r3 = d.program(Cycle(0), block0(), 12).unwrap();
        assert!(!d.page_is_corrupt(block0().page(r1.page)));
        assert!(d.page_is_corrupt(block0().page(r2.page)));
        assert!(!d.page_is_corrupt(block0().page(r3.page)));
        assert_eq!(d.stats().silent_corruptions(), 1);
        // The corrupt read still "succeeds" at the device level — the
        // miscorrection is silent; detection is the FTL checksum's job.
        assert!(d
            .read(Cycle(10_000_000), block0().page(r2.page), 11, 128)
            .is_ok());
    }

    #[test]
    fn sdc_rate_streams_corrupt_reads_deterministically() {
        let run = |seed: u64| {
            let mut d = device();
            d.set_integrity_config(&SdcConfig {
                rate: 0.2,
                sdc_at: None,
                seed,
            });
            let r = d.program(Cycle(0), block0(), 1).unwrap();
            let addr = block0().page(r.page);
            let mut first_corrupt = None;
            for i in 0..64u64 {
                let now = Cycle(1_000_000 + i * 1_000_000);
                let _ = d.read(now, addr, 1, 128);
                if first_corrupt.is_none() && d.page_is_corrupt(addr) {
                    first_corrupt = Some(i);
                }
            }
            (first_corrupt, d.stats().silent_corruptions())
        };
        assert_eq!(run(7), run(7), "same seed, same corruption point");
        let (hit, n) = run(7);
        assert!(
            hit.is_some(),
            "20% per-sense rate must fire within 64 reads"
        );
        assert_eq!(n, 1, "an already-corrupt page draws no further");
    }

    #[test]
    fn integrity_off_keeps_no_sdc_state() {
        let mut d = device();
        d.set_integrity_config(&SdcConfig::off());
        let r = d.program(Cycle(0), block0(), 1).unwrap();
        let addr = block0().page(r.page);
        for i in 0..16u64 {
            d.read(Cycle(1_000_000 + i), addr, 1, 128).unwrap();
        }
        assert!(!d.page_is_corrupt(addr));
        assert_eq!(d.stats().silent_corruptions(), 0);
    }

    #[test]
    fn mark_page_corrupt_clears_on_erase() {
        let mut d = device();
        let r = d.program(Cycle(0), block0(), 1).unwrap();
        let addr = block0().page(r.page);
        d.mark_page_corrupt(addr).unwrap();
        assert!(d.page_is_corrupt(addr));
        // Corruption lives in the array: a power loss does not clear it.
        d.power_loss(Cycle(10_000_000));
        assert!(d.page_is_corrupt(addr));
        d.invalidate(addr);
        d.erase(Cycle(10_000_000), block0()).unwrap();
        assert!(!d.page_is_corrupt(addr));
    }

    #[test]
    fn endurance_tracking_charges_disturb_and_resets_on_erase() {
        let mut d = device();
        d.set_endurance_tracking(Some(4));
        assert!(d.endurance_tracking());
        let r = d.program(Cycle(0), block0(), 1).unwrap();
        let addr = block0().page(r.page);
        for i in 0..8u64 {
            // Distinct cache-register keys are not in play here: evict
            // the latch by reading through the device repeatedly after a
            // program of another page would be complex; instead rely on
            // the first sense + register hits. Re-program to evict.
            let _ = d.read(Cycle(1_000_000 + i), addr, 1, 128);
            d.program(Cycle(1_000_000 + i), block0(), 100 + i).unwrap();
        }
        let b = d.block(block0()).unwrap();
        assert!(b.disturb_reads() > 0, "senses must charge the counter");
        assert!(d.stats().disturb_reads() > 0);
        assert_eq!(d.disturb_cycles(block0()), b.disturb_reads() / 4);
        // Erase restores the charge.
        for p in 0..b.programmed_pages() {
            d.invalidate(block0().page(p));
        }
        d.erase(Cycle(50_000_000), block0()).unwrap();
        assert_eq!(d.block(block0()).unwrap().disturb_reads(), 0);
        assert_eq!(d.disturb_cycles(block0()), 0);
    }

    #[test]
    fn endurance_tracking_off_is_inert() {
        let mut d = device();
        let r = d.program(Cycle(0), block0(), 1).unwrap();
        for i in 0..8u64 {
            let _ = d.read(Cycle(1_000_000 + i), block0().page(r.page), 1, 128);
        }
        assert_eq!(d.stats().disturb_reads(), 0);
        assert_eq!(d.stats().disturb_triggered_errors(), 0);
        assert_eq!(d.block(block0()).unwrap().disturb_reads(), 0);
    }

    #[test]
    fn endurance_report_tracks_min_mean_and_spread() {
        let mut d = device();
        let fresh = d.endurance();
        assert_eq!(fresh.min_block_erases, 0);
        assert_eq!(fresh.mean_wear_fraction(), 0.0);
        assert_eq!(fresh.wear_spread(), 1.0, "unworn device is even");
        // Wear one block once.
        let r = d.program(Cycle(0), block0(), 1).unwrap();
        d.invalidate(block0().page(r.page));
        d.erase(Cycle(0), block0()).unwrap();
        let e = d.endurance();
        assert_eq!(e.max_block_erases, 1);
        assert_eq!(e.min_block_erases, 0, "other blocks untouched");
        assert_eq!(e.total_blocks, d.geometry().total_blocks() as u64);
        assert!(e.mean_wear_fraction() > 0.0);
        assert!(
            e.wear_spread() > 1.0,
            "single worn block must show a spread"
        );
        assert!(e.min_wear_fraction() < e.worst_wear_fraction());
    }

    #[test]
    fn fail_die_is_idempotent() {
        let mut d = device();
        d.fail_die(ChannelId(1), DieId(0));
        d.fail_die(ChannelId(1), DieId(0));
        assert_eq!(d.dead_dies().len(), 1);
    }

    #[test]
    fn degrading_die_gets_noisy_then_dies_softly() {
        use crate::fault::DegradingDie;
        let mut d = device();
        d.set_fault_config(&FaultConfig::none().with_degrading(DegradingDie {
            channel: 0,
            die: 0,
            onset: 1_000_000,
            death: 100_000_000,
        }));
        assert!(d.degrading_die().is_some());
        let r = d.program(Cycle(0), block0(), 1).unwrap();
        assert!(!r.failed, "pre-onset programs are clean");
        // Late in the window (severity ~0.95): reads burn retry steps and
        // programs routinely fail verification.
        let late = Cycle(95_000_000);
        let mut failures = 0u64;
        for k in 0..40u64 {
            match d.program(late, block0(), 10 + k) {
                Ok(rep) => failures += rep.failed as u64,
                Err(_) => break, // block filled by burned slots
            }
        }
        assert!(failures > 0, "late-window programs must fail sometimes");
        let h = d.stats().die_health(0, 0);
        assert!(h.program_failures > 0);
        assert!(
            h.programs > h.program_failures,
            "clean programs counted too"
        );
        let mut retried = 0u64;
        let mut t = late;
        for _ in 0..50 {
            d.discard_register(ChannelId(0), 1);
            // Evict the latch by sensing a different die, then re-sense.
            match d.read(t, block0().page(r.page), 1, 128) {
                Ok(done) => t = done + Cycle(1),
                Err(_) => t += Cycle(10_000),
            }
            let b_live = BlockAddr::new(ChannelId(0), DieId(1), PlaneId(0), 0);
            let _ = d.program(t, b_live, 999);
            let _ = d.read(t, b_live.page(0), 999, 128);
        }
        retried += d.stats().die_health(0, 0).retry_steps;
        assert!(retried > 0, "in-window reads must burn retry steps");
        // The healthy sibling die saw no degrade penalties.
        assert_eq!(d.stats().die_health(0, 1).program_failures, 0);
        // Death: the die joins dead_dies on the next timed op...
        let b_live = BlockAddr::new(ChannelId(0), DieId(1), PlaneId(0), 0);
        let _ = d.program(Cycle(100_000_000), b_live, 5);
        assert!(d.die_is_dead(ChannelId(0), DieId(0)));
        assert_eq!(d.dead_dies(), &[(0, 0)]);
        // ...reads behave exactly like an instant die failure...
        let before = d.dead_die_reads();
        assert!(matches!(
            d.read(Cycle(100_000_001), block0().page(r.page), 1, 128),
            Err(Error::UncorrectableRead { retries: 0, .. })
        ));
        assert_eq!(d.dead_die_reads(), before + 1);
        // ...but programs/erases still run and always fail verification
        // (soft death), so an unfenced FTL degrades instead of crashing.
        let b_fresh = BlockAddr::new(ChannelId(0), DieId(0), PlaneId(0), 1);
        let rep = d
            .program(Cycle(100_000_002), b_fresh, 77)
            .expect("soft-dead programs are accepted");
        assert!(rep.failed, "soft-dead programs always fail verification");
    }

    #[test]
    fn degrading_die_runs_are_deterministic_per_seed() {
        use crate::fault::DegradingDie;
        let run =
            || {
                let mut d = device();
                d.set_fault_config(&FaultConfig::none().with_seed(11).with_degrading(
                    DegradingDie {
                        channel: 0,
                        die: 0,
                        onset: 0,
                        death: 10_000_000,
                    },
                ));
                let mut log = Vec::new();
                for k in 0..24u64 {
                    let now = Cycle(k * 400_000);
                    match d.program(now, block0(), k) {
                        Ok(rep) => log.push((rep.failed, rep.page)),
                        Err(_) => log.push((true, u32::MAX)),
                    }
                }
                (log, d.stats().program_failures())
            };
        assert_eq!(run(), run());
    }

    #[test]
    fn no_degrading_config_changes_nothing() {
        let mut d = device();
        d.set_fault_config(&FaultConfig::none());
        assert!(d.degrading_die().is_none());
        let r = d.program(Cycle(0), block0(), 1).unwrap();
        assert!(!r.failed);
        d.degrade_tick(Cycle(u64::MAX / 2));
        assert!(d.dead_dies().is_empty());
        assert!(d
            .read(Cycle(1_000_000), block0().page(r.page), 1, 128)
            .is_ok());
    }
}
