//! The programmable row decoder holding a log block's LPMT (paper §IV-A).
//!
//! ZnG stores each physical log block's **log page mapping table** inside
//! the plane's row decoder, implemented as a content-addressable memory:
//! a lookup applies the page index to the `A`/`A'` bitlines and discharges
//! the matching wordline (two clock phases); a write programs the mapping
//! cells of the next free page's row. Because Z-NAND programs in order,
//! a single register tracks the next free page.

use fxhash::{FxBuildHasher, FxHashMap};
use zng_types::{Cycle, Error, Result};

/// CAM search cost: two phases (precharge + match) of the decoder clock.
pub const CAM_SEARCH_CYCLES: Cycle = Cycle(2);

/// One log block's programmable row decoder.
///
/// Keys are *logical page ids* — the caller encodes (data block, page
/// index) into a `u64`; several data blocks share one log block
/// (paper §IV-A, LBMT).
///
/// # Examples
///
/// ```
/// use zng_flash::RowDecoder;
///
/// let mut dec = RowDecoder::new(4);
/// let slot = dec.record(0xAB)?;
/// assert_eq!(slot, 0);
/// assert_eq!(dec.lookup(0xAB), Some(0));
/// assert_eq!(dec.lookup(0xCD), None);
/// # Ok::<(), zng_types::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RowDecoder {
    /// logical page id -> physical page within the log block. The CAM
    /// has at most `pages` live rows, so the index is pre-sized to
    /// `pages` and hashed with the deterministic Fx hasher: lookups are
    /// the hottest FTL operation and never rehash mid-run. Iteration
    /// order is never observed directly — [`RowDecoder::mappings`]
    /// sorts before anything consumes it.
    map: FxHashMap<u64, u32>,
    /// In-order next-free-page register.
    next_free: u32,
    /// Wordlines (= pages in the log block).
    pages: u32,
    /// Lookups served (CAM activations).
    searches: u64,
    /// Mappings superseded (stale log pages created).
    superseded: u64,
}

impl RowDecoder {
    /// Creates a decoder for a log block with `pages` wordlines.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn new(pages: u32) -> RowDecoder {
        assert!(pages > 0, "row decoder needs at least one wordline");
        RowDecoder {
            map: FxHashMap::with_capacity_and_hasher(pages as usize, FxBuildHasher::default()),
            next_free: 0,
            pages,
            searches: 0,
            superseded: 0,
        }
    }

    /// CAM search: returns the physical log page holding `logical_page`,
    /// if any.
    pub fn lookup(&mut self, logical_page: u64) -> Option<u32> {
        self.searches += 1;
        self.map.get(&logical_page).copied()
    }

    /// Records a write of `logical_page` into the next free log page and
    /// returns that page's index. A previous mapping for the same logical
    /// page becomes stale (counted in [`RowDecoder::stale`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::FlashProtocol`] when the log block is full —
    /// the GC helper thread must merge it.
    pub fn record(&mut self, logical_page: u64) -> Result<u32> {
        if self.next_free >= self.pages {
            return Err(Error::FlashProtocol(
                "log block full: garbage collection required".to_string(),
            ));
        }
        let slot = self.next_free;
        self.next_free += 1;
        if self.map.insert(logical_page, slot).is_some() {
            self.superseded += 1;
        }
        Ok(slot)
    }

    /// Rolls back the most recent [`RowDecoder::record`] of
    /// `logical_page` after its log program failed verification: the
    /// burned slot stays consumed and stale, and the mapping reverts to
    /// `previous` (the slot [`RowDecoder::lookup`] returned before the
    /// record) — so an earlier acknowledged write stays reachable — or
    /// disappears entirely if the page was never logged before.
    pub fn retract(&mut self, logical_page: u64, previous: Option<u32>) {
        match previous {
            Some(slot) => {
                // `record` already counted the old mapping as superseded;
                // reviving it keeps the stale count right (the burned
                // slot is the one stale page).
                self.map.insert(logical_page, slot);
            }
            None => {
                if self.map.remove(&logical_page).is_some() {
                    self.superseded += 1;
                }
            }
        }
    }

    /// Whether no free log pages remain.
    pub fn is_full(&self) -> bool {
        self.next_free >= self.pages
    }

    /// Free log pages remaining.
    pub fn free_pages(&self) -> u32 {
        self.pages - self.next_free
    }

    /// Live mappings (logical page -> log page), sorted by logical page
    /// for deterministic GC merges.
    pub fn mappings(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<_> = self.map.iter().map(|(&k, &p)| (k, p)).collect();
        v.sort_unstable();
        v
    }

    /// Number of live (non-superseded) mappings.
    pub fn live(&self) -> usize {
        self.map.len()
    }

    /// Stale log pages (superseded mappings).
    pub fn stale(&self) -> u64 {
        self.superseded
    }

    /// CAM activations performed.
    pub fn searches(&self) -> u64 {
        self.searches
    }

    /// Rebuilds a decoder from an OOB scan during crash recovery.
    ///
    /// `consumed` is the number of pages already programmed in the log
    /// block (the in-order next-free register), `entries` the surviving
    /// live mappings. Any consumed slot not backing a live mapping is
    /// stale; the search counter restarts at zero.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero (same contract as [`RowDecoder::new`]).
    pub fn restore(
        pages: u32,
        consumed: u32,
        entries: impl IntoIterator<Item = (u64, u32)>,
    ) -> RowDecoder {
        let mut dec = RowDecoder::new(pages);
        dec.next_free = consumed.min(pages);
        dec.map.extend(entries);
        dec.superseded = u64::from(dec.next_free).saturating_sub(dec.map.len() as u64);
        dec
    }

    /// Clears all mappings after the log block is erased.
    pub fn reset(&mut self) {
        self.map.clear();
        self.next_free = 0;
        self.superseded = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_allocation() {
        let mut d = RowDecoder::new(3);
        assert_eq!(d.record(10).unwrap(), 0);
        assert_eq!(d.record(20).unwrap(), 1);
        assert_eq!(d.record(30).unwrap(), 2);
        assert!(d.is_full());
        assert!(matches!(d.record(40), Err(Error::FlashProtocol(_))));
    }

    #[test]
    fn rewrite_supersedes_old_mapping() {
        let mut d = RowDecoder::new(4);
        d.record(10).unwrap(); // slot 0
        d.record(10).unwrap(); // slot 1 supersedes slot 0
        assert_eq!(d.lookup(10), Some(1));
        assert_eq!(d.stale(), 1);
        assert_eq!(d.live(), 1);
        assert_eq!(d.free_pages(), 2);
    }

    #[test]
    fn retract_without_prior_mapping_removes() {
        let mut d = RowDecoder::new(4);
        d.record(10).unwrap();
        d.retract(10, None);
        assert_eq!(d.lookup(10), None);
        assert_eq!(d.stale(), 1, "the burned slot is stale");
        assert_eq!(d.free_pages(), 3, "the slot itself is not reclaimed");
        d.retract(10, None); // idempotent
        assert_eq!(d.stale(), 1);
    }

    #[test]
    fn retract_revives_previous_mapping() {
        let mut d = RowDecoder::new(4);
        d.record(10).unwrap(); // slot 0: the acked write
        let old = d.lookup(10);
        d.record(10).unwrap(); // slot 1: fails verification
        d.retract(10, old);
        assert_eq!(d.lookup(10), Some(0), "acked data stays reachable");
        assert_eq!(d.stale(), 1, "only the burned slot is stale");
        assert_eq!(d.mappings(), vec![(10, 0)]);
    }

    #[test]
    fn lookup_counts_searches() {
        let mut d = RowDecoder::new(2);
        d.lookup(1);
        d.lookup(2);
        assert_eq!(d.searches(), 2);
        assert_eq!(d.lookup(1), None);
    }

    #[test]
    fn mappings_sorted_for_gc() {
        let mut d = RowDecoder::new(8);
        for k in [5u64, 1, 9, 3] {
            d.record(k).unwrap();
        }
        let m = d.mappings();
        assert_eq!(m, vec![(1, 1), (3, 3), (5, 0), (9, 2)],);
    }

    #[test]
    fn reset_after_erase() {
        let mut d = RowDecoder::new(2);
        d.record(1).unwrap();
        d.record(2).unwrap();
        d.reset();
        assert!(!d.is_full());
        assert_eq!(d.live(), 0);
        assert_eq!(d.lookup(1), None);
        assert_eq!(d.record(3).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one wordline")]
    fn zero_pages_rejected() {
        let _ = RowDecoder::new(0);
    }

    #[test]
    fn restore_rebuilds_cam_state() {
        let mut d = RowDecoder::restore(8, 5, [(10u64, 4u32), (20, 2), (30, 3)]);
        assert_eq!(d.lookup(10), Some(4));
        assert_eq!(d.lookup(20), Some(2));
        assert_eq!(d.free_pages(), 3);
        assert_eq!(d.stale(), 2, "5 consumed slots back 3 live mappings");
        assert_eq!(d.record(40).unwrap(), 5, "in-order register resumes");
    }
}
