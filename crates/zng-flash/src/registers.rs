//! Flash-register write cache (paper §III-C / §IV-C).
//!
//! Z-NAND planes carry a few registers (Table I: 8 per plane). ZnG groups
//! all registers of a package into a **fully-associative** write cache so
//! that small 128 B writes merge in registers instead of each triggering a
//! 100 µs read-modify-program. The [`RegisterCache`] tracks *which* page
//! each register holds and where it physically sits (which plane's
//! register file), because an eviction whose holder is not the page's home
//! plane must migrate data across the register interconnect
//! (SWnet / FCnet / NiF — see [`crate::package`]).
//!
//! The **thrashing checker** watches the eviction/write ratio; when
//! write-intensive phases (e.g. `gaus`) overwhelm the registers, the
//! platform redirects overflow dirty data into pinned L2 space
//! (paper Fig. 13 "redirection").

use fxhash::{FxBuildHasher, FxHashMap};

/// Identifies a page held in a register (device-global page key).
pub type RegPageKey = u64;

#[derive(Debug, Clone)]
struct Entry {
    home_plane: usize,
    holder_plane: usize,
    last_use: u64,
    /// Sector writes merged into this register since insertion.
    writes_merged: u64,
}

/// A page pushed out of the register cache; the caller must program it to
/// its home plane (and pay a migration if `holder_plane != home_plane`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The page being written back.
    pub key: RegPageKey,
    /// The plane (package-local index) the page belongs to.
    pub home_plane: usize,
    /// The plane whose register file physically held the data.
    pub holder_plane: usize,
    /// How many sector writes were merged while resident.
    pub writes_merged: u64,
}

/// The result of a sector write submitted to the register cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The write merged into a register already holding the page.
    pub hit: bool,
    /// The page was newly inserted into a register on a *remote* plane
    /// (its home plane's register group was full).
    pub inserted_remote: bool,
    /// A victim had to be written back to make room.
    pub evicted: Option<Evicted>,
}

/// A package's flash registers, managed as a write cache.
///
/// Two organisations (paper Fig. 13 "baseline" vs "network"):
///
/// * **private** — each plane may only use its own `registers_per_plane`
///   registers (the baseline, which thrashes under skewed writes);
/// * **grouped** — all registers of the package form one fully-associative
///   pool; a write prefers its home plane's registers but can spill to any
///   other plane's.
///
/// # Examples
///
/// ```
/// use zng_flash::RegisterCache;
///
/// let mut regs = RegisterCache::grouped(4, 2); // 4 planes x 2 registers
/// let first = regs.write(100, 0);
/// assert!(!first.hit);
/// let again = regs.write(100, 0);
/// assert!(again.hit); // merged, no flash program
/// ```
#[derive(Debug, Clone)]
pub struct RegisterCache {
    planes: usize,
    registers_per_plane: usize,
    grouped: bool,
    /// Resident pages, keyed by page. Bounded by the pool capacity, so
    /// the map is pre-sized at construction and never rehashes; victim
    /// selection is iteration-order independent (`last_use` ticks are
    /// unique) and `flush_all` sorts, so the Fx hasher changes no
    /// observable behaviour.
    entries: FxHashMap<RegPageKey, Entry>,
    plane_occupancy: Vec<usize>,
    tick: u64,
    // Thrashing checker (windowed eviction-rate monitor).
    window_writes: u64,
    window_evictions: u64,
    thrashing: bool,
    // Lifetime stats.
    total_writes: u64,
    total_hits: u64,
    total_evictions: u64,
}

/// Thrashing-checker window length in writes.
const THRASH_WINDOW: u64 = 256;
/// Eviction/write ratio above which the cache is declared thrashing.
const THRASH_RATIO: f64 = 0.5;

impl RegisterCache {
    /// A fully-associative package-wide register pool.
    pub fn grouped(planes: usize, registers_per_plane: usize) -> RegisterCache {
        Self::new(planes, registers_per_plane, true)
    }

    /// Private per-plane registers (the baseline organisation).
    pub fn private(planes: usize, registers_per_plane: usize) -> RegisterCache {
        Self::new(planes, registers_per_plane, false)
    }

    fn new(planes: usize, registers_per_plane: usize, grouped: bool) -> RegisterCache {
        assert!(planes > 0, "register cache needs at least one plane");
        assert!(
            registers_per_plane > 0,
            "register cache needs at least one register per plane"
        );
        RegisterCache {
            planes,
            registers_per_plane,
            grouped,
            entries: FxHashMap::with_capacity_and_hasher(
                planes * registers_per_plane,
                FxBuildHasher::default(),
            ),
            plane_occupancy: vec![0; planes],
            tick: 0,
            window_writes: 0,
            window_evictions: 0,
            thrashing: false,
            total_writes: 0,
            total_hits: 0,
            total_evictions: 0,
        }
    }

    /// Submits one sector write for the page `key` whose home plane is
    /// `home_plane` (package-local plane index).
    ///
    /// # Panics
    ///
    /// Panics if `home_plane` is out of range.
    pub fn write(&mut self, key: RegPageKey, home_plane: usize) -> WriteOutcome {
        assert!(
            home_plane < self.planes,
            "home plane {home_plane} out of range"
        );
        self.tick += 1;
        self.total_writes += 1;
        self.window_writes += 1;

        if let Some(e) = self.entries.get_mut(&key) {
            e.last_use = self.tick;
            e.writes_merged += 1;
            self.total_hits += 1;
            self.roll_window();
            return WriteOutcome {
                hit: true,
                inserted_remote: false,
                evicted: None,
            };
        }

        // Find a holder plane with a free register.
        let holder = self.pick_holder(home_plane);
        let (holder, evicted) = match holder {
            Some(h) => (h, None),
            None => {
                let victim = self.evict_for(home_plane);
                // The victim freed a slot in its holder plane; reuse it if
                // allowed, else the home plane (private mode evicts from
                // the home plane by construction).
                (victim.holder_plane, Some(victim))
            }
        };
        self.entries.insert(
            key,
            Entry {
                home_plane,
                holder_plane: holder,
                last_use: self.tick,
                writes_merged: 1,
            },
        );
        self.plane_occupancy[holder] += 1;
        self.roll_window();
        WriteOutcome {
            hit: false,
            inserted_remote: holder != home_plane,
            evicted,
        }
    }

    /// Chooses a plane with a free register: home first, then (grouped
    /// only) the least-occupied other plane.
    fn pick_holder(&self, home_plane: usize) -> Option<usize> {
        if self.plane_occupancy[home_plane] < self.registers_per_plane {
            return Some(home_plane);
        }
        if !self.grouped {
            return None;
        }
        self.plane_occupancy
            .iter()
            .enumerate()
            .filter(|(_, &occ)| occ < self.registers_per_plane)
            .min_by_key(|(_, &occ)| occ)
            .map(|(i, _)| i)
    }

    /// Evicts the least-recently-used eligible entry and returns it.
    fn evict_for(&mut self, home_plane: usize) -> Evicted {
        let victim_key = self
            .entries
            .iter()
            .filter(|(_, e)| self.grouped || e.holder_plane == home_plane)
            .min_by_key(|(_, e)| e.last_use)
            .map(|(k, _)| *k)
            .expect("cache is full, so an eligible victim exists");
        let e = self.entries.remove(&victim_key).expect("victim present");
        self.plane_occupancy[e.holder_plane] -= 1;
        self.total_evictions += 1;
        self.window_evictions += 1;
        Evicted {
            key: victim_key,
            home_plane: e.home_plane,
            holder_plane: e.holder_plane,
            writes_merged: e.writes_merged,
        }
    }

    fn roll_window(&mut self) {
        if self.window_writes >= THRASH_WINDOW {
            let ratio = self.window_evictions as f64 / self.window_writes as f64;
            self.thrashing = ratio > THRASH_RATIO;
            self.window_writes = 0;
            self.window_evictions = 0;
        }
    }

    /// Whether a register currently holds `key` (reads can be served from
    /// the register without touching the array).
    pub fn contains(&self, key: RegPageKey) -> bool {
        self.entries.contains_key(&key)
    }

    /// Removes `key` without a write-back (its data became stale, e.g.
    /// after GC migrated the block).
    pub fn discard(&mut self, key: RegPageKey) -> bool {
        if let Some(e) = self.entries.remove(&key) {
            self.plane_occupancy[e.holder_plane] -= 1;
            true
        } else {
            false
        }
    }

    /// Drains every resident page for write-back (GC / shutdown flush).
    pub fn flush_all(&mut self) -> Vec<Evicted> {
        let mut out: Vec<Evicted> = self
            .entries
            .drain()
            .map(|(key, e)| Evicted {
                key,
                home_plane: e.home_plane,
                holder_plane: e.holder_plane,
                writes_merged: e.writes_merged,
            })
            .collect();
        // Deterministic order regardless of hash-map iteration.
        out.sort_by_key(|e| e.key);
        self.plane_occupancy.iter_mut().for_each(|o| *o = 0);
        out
    }

    /// Cuts power: every resident page is lost **without** write-back
    /// (registers are volatile — this is the write-cache data a crash
    /// destroys), and the thrashing window resets. Returns how many
    /// pages were dropped.
    pub fn power_loss(&mut self) -> usize {
        let dropped = self.entries.len();
        self.entries.clear();
        self.plane_occupancy.iter_mut().for_each(|o| *o = 0);
        self.window_writes = 0;
        self.window_evictions = 0;
        self.thrashing = false;
        dropped
    }

    /// The thrashing checker's current verdict (paper §III-C).
    pub fn is_thrashing(&self) -> bool {
        self.thrashing
    }

    /// Resident pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no registers are in use.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total register capacity in pages.
    pub fn capacity(&self) -> usize {
        self.planes * self.registers_per_plane
    }

    /// Lifetime sector writes accepted.
    pub fn writes(&self) -> u64 {
        self.total_writes
    }

    /// Lifetime merges (register hits).
    pub fn hits(&self) -> u64 {
        self.total_hits
    }

    /// Lifetime evictions (flash programs caused).
    pub fn evictions(&self) -> u64 {
        self.total_evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_hits_avoid_evictions() {
        let mut r = RegisterCache::grouped(2, 2);
        for _ in 0..100 {
            r.write(7, 0);
        }
        assert_eq!(r.hits(), 99);
        assert_eq!(r.evictions(), 0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn grouped_spills_to_remote_plane() {
        let mut r = RegisterCache::grouped(2, 1);
        let a = r.write(1, 0);
        assert!(!a.inserted_remote);
        // Plane 0's single register is taken; page 2 (home 0) spills to 1.
        let b = r.write(2, 0);
        assert!(b.inserted_remote, "{b:?}");
        assert!(b.evicted.is_none());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn private_mode_cannot_spill() {
        let mut r = RegisterCache::private(2, 1);
        r.write(1, 0);
        let b = r.write(2, 0); // must evict page 1 from plane 0
        assert!(!b.inserted_remote);
        let ev = b.evicted.expect("eviction required");
        assert_eq!(ev.key, 1);
        assert_eq!(ev.home_plane, 0);
        // Plane 1 register untouched.
        let c = r.write(3, 1);
        assert!(c.evicted.is_none());
    }

    #[test]
    fn lru_victim_selection() {
        let mut r = RegisterCache::grouped(1, 2);
        r.write(1, 0);
        r.write(2, 0);
        r.write(1, 0); // refresh 1 -> victim must be 2
        let out = r.write(3, 0);
        assert_eq!(out.evicted.unwrap().key, 2);
        assert!(r.contains(1));
        assert!(r.contains(3));
    }

    #[test]
    fn evicted_records_remote_holder() {
        let mut r = RegisterCache::grouped(2, 1);
        r.write(1, 0);
        r.write(2, 0); // remote: held by plane 1
        r.write(1, 0); // refresh 1
        let out = r.write(3, 0); // evicts 2, which lives on plane 1
        let ev = out.evicted.unwrap();
        assert_eq!(ev.key, 2);
        assert_eq!(ev.home_plane, 0);
        assert_eq!(ev.holder_plane, 1);
    }

    #[test]
    fn flush_all_is_sorted_and_empties() {
        let mut r = RegisterCache::grouped(4, 2);
        for k in [5u64, 3, 9, 1] {
            r.write(k, (k % 4) as usize);
        }
        let flushed = r.flush_all();
        let keys: Vec<u64> = flushed.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
        assert!(r.is_empty());
        // Occupancy was reset: new writes fit locally again.
        assert!(!r.write(10, 0).inserted_remote);
    }

    #[test]
    fn power_loss_drops_everything_without_writeback() {
        let mut r = RegisterCache::grouped(2, 2);
        for k in 0..4u64 {
            r.write(k, (k % 2) as usize);
        }
        let evictions_before = r.evictions();
        assert_eq!(r.power_loss(), 4);
        assert!(r.is_empty());
        assert_eq!(
            r.evictions(),
            evictions_before,
            "a power loss is not a write-back"
        );
        assert!(!r.is_thrashing());
        // Slots are genuinely free again.
        assert!(!r.write(10, 0).inserted_remote);
    }

    #[test]
    fn discard_frees_slot() {
        let mut r = RegisterCache::grouped(1, 1);
        r.write(1, 0);
        assert!(r.discard(1));
        assert!(!r.discard(1));
        let out = r.write(2, 0);
        assert!(out.evicted.is_none());
    }

    #[test]
    fn thrashing_checker_fires_under_pressure() {
        // 1 plane x 1 register, all-distinct pages: every write evicts.
        let mut r = RegisterCache::private(1, 1);
        for k in 0..1024u64 {
            r.write(k, 0);
        }
        assert!(r.is_thrashing());
        // A merge-friendly stream clears the verdict.
        for _ in 0..1024 {
            r.write(0, 0);
        }
        assert!(!r.is_thrashing());
    }

    #[test]
    fn capacity_reporting() {
        let r = RegisterCache::grouped(64, 8);
        assert_eq!(r.capacity(), 512);
    }
}
