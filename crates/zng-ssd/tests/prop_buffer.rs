//! Property tests for the SSD page buffer, alone and mounted in the
//! NVMe SSD under end-of-life fault injection.

use proptest::prelude::*;
use zng_flash::{FaultConfig, FlashGeometry};
use zng_ssd::{NvmeSsd, PageBuffer, SsdModule};
use zng_types::{AccessKind, Cycle, Error, Freq};

proptest! {
    #[test]
    fn buffer_never_exceeds_capacity_and_dirty_writebacks_conserve(
        cap in 1usize..16,
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..400),
    ) {
        let mut b = PageBuffer::new(cap);
        let mut dirty_in_flight = std::collections::HashSet::new();
        let mut writebacks = 0u64;
        for &(ppn, write) in &ops {
            let r = b.access(ppn, write);
            if write {
                dirty_in_flight.insert(ppn);
            }
            if let Some(victim) = r.evicted_dirty {
                prop_assert!(dirty_in_flight.remove(&victim), "clean page written back");
                writebacks += 1;
            }
            prop_assert!(b.len() <= cap);
        }
        let flushed = b.flush_dirty();
        for p in &flushed {
            prop_assert!(dirty_in_flight.remove(p));
        }
        prop_assert!(dirty_in_flight.is_empty(), "dirty pages lost");
        prop_assert_eq!(b.writebacks(), writebacks + flushed.len() as u64);
    }

    /// A power cut empties the buffer without any write-back, whatever
    /// state the access history left it in.
    #[test]
    fn power_loss_never_writes_back(
        cap in 1usize..16,
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..200),
    ) {
        let mut b = PageBuffer::new(cap);
        for &(ppn, write) in &ops {
            b.access(ppn, write);
        }
        let before = b.writebacks();
        let lost = b.power_loss();
        prop_assert!(lost <= cap, "cannot lose more dirty pages than fit");
        prop_assert!(b.is_empty());
        prop_assert_eq!(b.writebacks(), before, "power loss flushed nothing");
    }

    /// The HybridGPU module's buffer stays panic-free and within
    /// capacity under end-of-life fault injection, and a crash/recover
    /// cycle leaves the module serviceable.
    #[test]
    fn module_buffer_survives_end_of_life_faults(
        seed in 0u64..40,
        ops in prop::collection::vec((0u64..32, any::<bool>()), 1..80),
        crash_at in 0usize..80,
    ) {
        let mut m = SsdModule::hybrid(FlashGeometry::tiny(), 4, Freq::default()).unwrap();
        m.apply_faults(&FaultConfig::end_of_life().with_seed(seed));
        let crash_at = crash_at.min(ops.len());
        let mut t = Cycle::ZERO;
        let mut worn = false;
        for &(vpn, write) in &ops[..crash_at] {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            match m.access_sector(t, vpn, kind) {
                Ok(done) => t = done,
                Err(Error::DeviceWornOut { .. }) => { worn = true; break }
                Err(Error::UncorrectableRead { .. }) => {}
                Err(e) => return Err(TestCaseError::fail(format!("access failed: {e}"))),
            }
            prop_assert!(m.buffer().len() <= m.buffer().capacity());
        }
        if worn {
            return Ok(());
        }
        match m.crash_recover(t + Cycle(10_000_000)) {
            Ok(_) => {}
            Err(Error::DeviceWornOut { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("recovery failed: {e}"))),
        }
        prop_assert!(m.buffer().is_empty(), "buffer survived the cut");
        for &(vpn, _) in &ops[crash_at..] {
            match m.access_sector(t + Cycle(20_000_000), vpn, AccessKind::Read) {
                Ok(_) => {}
                Err(Error::DeviceWornOut { .. }) => break,
                Err(Error::UncorrectableRead { .. }) => {}
                Err(e) => return Err(TestCaseError::fail(format!("post-recovery: {e}"))),
            }
        }
    }

    /// The discrete NVMe SSD under end-of-life faults: completed writes
    /// stay readable across a quiescent crash/recover cycle.
    #[test]
    fn nvme_recovers_under_end_of_life_faults(
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..64, 1..60),
    ) {
        let mut s = NvmeSsd::new(FlashGeometry::tiny(), Freq::default()).unwrap();
        s.apply_faults(&FaultConfig::end_of_life().with_seed(seed));
        let mut t = Cycle::ZERO;
        let mut acked = std::collections::BTreeSet::new();
        for &ppn in &writes {
            match s.write_page(t, ppn) {
                Ok(done) => { t = done; acked.insert(ppn); }
                Err(Error::DeviceWornOut { .. }) => break,
                Err(e) => return Err(TestCaseError::fail(format!("write failed: {e}"))),
            }
        }
        match s.crash_recover(t + Cycle(10_000_000)) {
            Ok(report) => {
                prop_assert_eq!(report.torn_discarded, 0, "quiescent cut tears nothing");
            }
            Err(Error::DeviceWornOut { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("recovery failed: {e}"))),
        }
        for &ppn in &acked {
            match s.read_page(t + Cycle(20_000_000), ppn) {
                Ok(_) | Err(Error::UncorrectableRead { .. }) => {}
                Err(e) => return Err(TestCaseError::fail(format!("lost page {ppn}: {e}"))),
            }
        }
    }
}
