//! Property tests for the SSD page buffer.

use proptest::prelude::*;
use zng_ssd::PageBuffer;

proptest! {
    #[test]
    fn buffer_never_exceeds_capacity_and_dirty_writebacks_conserve(
        cap in 1usize..16,
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..400),
    ) {
        let mut b = PageBuffer::new(cap);
        let mut dirty_in_flight = std::collections::HashSet::new();
        let mut writebacks = 0u64;
        for &(ppn, write) in &ops {
            let r = b.access(ppn, write);
            if write {
                dirty_in_flight.insert(ppn);
            }
            if let Some(victim) = r.evicted_dirty {
                prop_assert!(dirty_in_flight.remove(&victim), "clean page written back");
                writebacks += 1;
            }
            prop_assert!(b.len() <= cap);
        }
        let flushed = b.flush_dirty();
        for p in &flushed {
            prop_assert!(dirty_in_flight.remove(p));
        }
        prop_assert!(dirty_in_flight.is_empty(), "dirty pages lost");
        prop_assert_eq!(b.writebacks(), writebacks + flushed.len() as u64);
    }
}
