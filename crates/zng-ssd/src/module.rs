//! HybridGPU's embedded SSD module (paper Fig. 1a).
//!
//! The module sits between the GPU L2 and the Z-NAND backbone and stacks
//! four serial bottlenecks, each measurable in Fig. 1b:
//!
//! 1. a **single request dispatcher** that every memory request crosses;
//! 2. the **SSD engine** (embedded cores running the page-map FTL);
//! 3. the **one-package DRAM buffer** on a 32-bit bus;
//! 4. the **ONFI bus** flash network with private plane registers.

use zng_flash::{FlashDevice, FlashGeometry};
use zng_ftl::{PageMapFtl, RainConfig, RecoveryReport, SsdEngine};
use zng_mem::{MemSubsystem, MemTiming};
use zng_sim::{AdmissionQueue, Resource};
use zng_types::ids::{ChannelId, DieId};
use zng_types::{AccessKind, Cycle, Error, Freq, Nanos, Result};

use crate::buffer::PageBuffer;

/// The embedded SSD module of the HybridGPU platform.
#[derive(Debug, Clone)]
pub struct SsdModule {
    dispatcher: Resource,
    dispatch_cost: Cycle,
    /// NVMe-style submission-queue bound in front of the dispatcher.
    /// Unbounded (and untracked) by default.
    admission: AdmissionQueue,
    engine: SsdEngine,
    buffer: PageBuffer,
    buffer_dram: MemSubsystem,
    ftl: PageMapFtl,
    device: FlashDevice,
    freq: Freq,
}

impl SsdModule {
    /// Builds the HybridGPU module: 25 ns dispatcher, commercial engine,
    /// `buffer_pages` of internal DRAM, bus-networked Z-NAND with the
    /// given geometry.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn hybrid(geometry: FlashGeometry, buffer_pages: usize, freq: Freq) -> Result<SsdModule> {
        let device = FlashDevice::hybrid_config(geometry, freq)?;
        let ftl = PageMapFtl::new(&device);
        Ok(SsdModule {
            dispatcher: Resource::new(1),
            dispatch_cost: Nanos(25.0).to_cycles(freq),
            admission: AdmissionQueue::new(),
            engine: SsdEngine::commercial(freq),
            buffer: PageBuffer::new(buffer_pages),
            buffer_dram: MemSubsystem::new(MemTiming::hybrid_buffer(), freq),
            ftl,
            device,
            freq,
        })
    }

    fn page_bytes(&self) -> usize {
        self.device.geometry().page_bytes
    }

    /// Flushes a dirty buffer page to flash via the engine + FTL; returns
    /// completion time.
    fn writeback(&mut self, now: Cycle, ppn: u64) -> Result<Cycle> {
        let translated = self.engine.process(now);
        self.ftl.write_page(translated, &mut self.device, ppn)
    }

    /// Services one 128 B sector access (`vpn` is the 4 KB page number).
    ///
    /// Path: dispatcher → buffer lookup → (miss: engine + FTL + flash
    /// fill, possibly a dirty writeback) → buffer DRAM sector transfer.
    ///
    /// # Errors
    ///
    /// Propagates FTL/flash errors. Under a bounded queue configuration
    /// ([`SsdModule::set_queue_depth`]) a saturated module rejects with
    /// [`Error::Backpressure`] *before* any state changes — a rejected
    /// access can simply be retried later.
    pub fn access_sector(&mut self, now: Cycle, vpn: u64, kind: AccessKind) -> Result<Cycle> {
        self.admission
            .try_admit(now)
            .map_err(|retry_at| Error::Backpressure { retry_at })?;
        let dispatched = self.dispatcher.acquire(now, self.dispatch_cost);
        let lookup = self.buffer.access(vpn, kind.is_write());
        let mut ready = dispatched;
        if !lookup.hit {
            // Fill from flash: engine translation, then a whole-page read.
            let translated = self.engine.process(dispatched);
            let page_bytes = self.page_bytes();
            ready = self
                .ftl
                .read_page(translated, &mut self.device, vpn, page_bytes)?;
            // Fill the buffer DRAM with the page (future-time side
            // effect: fixed latency, no controller reservation).
            ready = self
                .buffer_dram
                .access_unqueued(ready, AccessKind::Write, page_bytes);
            if let Some(dirty) = lookup.evicted_dirty {
                // Write-back proceeds asynchronously on the flash side;
                // it occupies engine + flash resources but does not gate
                // this request.
                self.writeback(dispatched, dirty)?;
            }
        }
        // Serve the 128 B sector from buffer DRAM.
        let addr = vpn * self.page_bytes() as u64;
        let done = self.buffer_dram.access(ready, addr, kind, 128);
        self.admission.note_inflight(done);
        Ok(done)
    }

    /// Bounds the module's in-flight request population (`None` =
    /// unbounded, the default) and the flash backbone behind it.
    pub fn set_queue_depth(&mut self, depth: Option<usize>) {
        self.admission.set_depth(depth);
        self.device.set_queue_depth(depth);
    }

    /// Requests refused by module admission plus flash-level rejections.
    pub fn qos_rejections(&self) -> u64 {
        self.admission.rejected() + self.device.qos_rejections()
    }

    /// Largest in-flight population admitted to the module queue or any
    /// flash channel queue.
    pub fn qos_max_occupancy(&self) -> u64 {
        self.admission
            .max_occupancy()
            .max(self.device.qos_max_occupancy())
    }

    /// Simulates a power cut at `now` followed by FTL recovery.
    ///
    /// All volatile state is lost first — buffered pages (dirty ones
    /// included, with no write-back), in-flight flash register contents,
    /// and the page-map tables — then the FTL rebuilds its mapping from
    /// the out-of-band metadata scan.
    ///
    /// # Errors
    ///
    /// Propagates flash errors from the recovery scan's dead-block
    /// erases.
    pub fn crash_recover(&mut self, now: Cycle) -> Result<RecoveryReport> {
        self.buffer.power_loss();
        self.device.power_loss(now);
        self.ftl.recover(now, &mut self.device)
    }

    /// The Z-NAND backbone (for Fig. 11 statistics).
    pub fn device(&self) -> &FlashDevice {
        &self.device
    }

    /// Applies a fault-injection configuration to the flash media.
    pub fn apply_faults(&mut self, cfg: &zng_flash::FaultConfig) {
        self.device.set_fault_config(cfg);
    }

    /// Enables (or disables, with `None`) RAIN redundancy on the FTL.
    pub fn set_redundancy(&mut self, config: Option<RainConfig>) {
        self.ftl.set_redundancy(&self.device, config);
    }

    /// Applies the end-to-end integrity policy: silent-corruption
    /// injection on the media plus payload verification in the FTL.
    pub fn apply_integrity(&mut self, cfg: &zng_flash::SdcConfig, verify: bool) {
        self.device.set_integrity_config(cfg);
        self.ftl.set_integrity(verify);
    }

    /// Arms the endurance subsystem: read-disturb/retention tracking on
    /// the media plus the refresh + static-levelling scheduler in the
    /// FTL.
    pub fn apply_endurance(&mut self, policy: zng_ftl::RefreshPolicy) {
        self.device
            .set_endurance_tracking(Some(zng_flash::DISTURB_READS_PER_CYCLE));
        self.ftl.set_endurance(Some(policy));
    }

    /// One refresh-scheduler step: scan for blocks over their disturb or
    /// retention budget and rewrite one, else run a levelling migration.
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors.
    pub fn refresh_step(&mut self, now: Cycle) -> Result<Cycle> {
        self.ftl.refresh_step(now, &mut self.device)
    }

    /// Installs (or removes, with `None`) the mapping-checkpoint
    /// subsystem on the FTL.
    pub fn set_checkpointing(&mut self, config: Option<zng_ftl::CheckpointConfig>) {
        self.ftl.set_checkpointing(config);
    }

    /// Installs (or removes, with `None`) the predictive die-health
    /// monitor on the FTL.
    pub fn set_health(&mut self, policy: Option<zng_ftl::HealthPolicy>) {
        self.ftl.set_health(policy);
    }

    /// One predictive-health tick: score the per-die telemetry, fence
    /// newly dead dies, evacuate one victim block off a suspect (when
    /// evacuation is on) and rehabilitate false positives. Returns the
    /// foreground stall horizon (capped by the pacing budget when one
    /// is set).
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors.
    pub fn health_step(&mut self, now: Cycle) -> Result<Cycle> {
        self.ftl.health_step(now, &mut self.device)
    }

    /// One background checkpoint write: snapshot the mapping into
    /// checkpoint blocks and open a fresh journal epoch. Returns the
    /// foreground stall horizon (capped by the pacing budget when one
    /// is set).
    pub fn checkpoint_step(&mut self, now: Cycle) -> Cycle {
        self.ftl.checkpoint_step(now, &mut self.device)
    }

    /// Kills one die and fences its blocks: reads reconstruct around it,
    /// the allocator stops handing out its blocks.
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors from the fencing relocations.
    pub fn fail_die(&mut self, now: Cycle, channel: ChannelId, die: DieId) -> Result<Cycle> {
        self.device.fail_die(channel, die);
        self.ftl.fence_dead_die(now, &mut self.device)
    }

    /// Severs one mesh/bus link; transfers detour deterministically.
    pub fn fail_link(&mut self, channel: ChannelId) {
        self.device.fail_link(channel);
    }

    /// One patrol-scrub step: scan the next slot, rewrite it if strained.
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors.
    pub fn scrub_step(&mut self, now: Cycle) -> Result<Cycle> {
        self.ftl.scrub_step(now, &mut self.device)
    }

    /// Re-creates every page stranded on dead dies onto healthy spares.
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors from reconstruction and reprogramming.
    pub fn rebuild_dead_die(&mut self, now: Cycle) -> Result<(Cycle, u64)> {
        self.ftl.rebuild_dead_die(now, &mut self.device)
    }

    /// The internal page buffer (for hit-rate inspection).
    pub fn buffer(&self) -> &PageBuffer {
        &self.buffer
    }

    /// Mutable access to the page buffer (flush on GC/shutdown).
    pub fn buffer_mut(&mut self) -> &mut PageBuffer {
        &mut self.buffer
    }

    /// The FTL (for GC statistics).
    pub fn ftl(&self) -> &PageMapFtl {
        &self.ftl
    }

    /// The SSD engine (for utilization inspection).
    pub fn engine(&self) -> &SsdEngine {
        &self.engine
    }

    /// Achieved buffer-DRAM bandwidth in GB/s over `[0, now]`.
    pub fn buffer_gbps(&self, now: Cycle) -> f64 {
        self.buffer_dram.achieved_gbps(now, self.freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> SsdModule {
        SsdModule::hybrid(FlashGeometry::tiny(), 32, Freq::default()).unwrap()
    }

    #[test]
    fn first_touch_pays_flash_latency() {
        let mut m = module();
        let t = m.access_sector(Cycle(0), 7, AccessKind::Read).unwrap();
        // Must include the 3 us sense (3600 cycles) plus engine and bus.
        assert!(t > Cycle(3_600), "{t}");
    }

    #[test]
    fn buffer_hits_are_fast() {
        let mut m = module();
        let t1 = m.access_sector(Cycle(0), 7, AccessKind::Read).unwrap();
        let t2 = m.access_sector(t1, 7, AccessKind::Read).unwrap();
        assert!(t2 - t1 < Cycle(1_500), "hit cost {}", t2 - t1);
        assert_eq!(m.buffer().hits(), 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut m = SsdModule::hybrid(FlashGeometry::tiny(), 1, Freq::default()).unwrap();
        let mut t = Cycle(0);
        t = m.access_sector(t, 1, AccessKind::Write).unwrap();
        t = m.access_sector(t, 2, AccessKind::Read).unwrap(); // evicts dirty 1
        let _ = t;
        assert_eq!(m.buffer().writebacks(), 1);
        assert!(m.device().stats().total_programs() > 0);
    }

    #[test]
    fn dispatcher_serializes_requests() {
        let mut m = module();
        // Warm the buffer so only the dispatcher + DRAM remain.
        let mut t = m.access_sector(Cycle(0), 3, AccessKind::Read).unwrap();
        let a = m.access_sector(t, 3, AccessKind::Read).unwrap();
        let b = m.access_sector(t, 3, AccessKind::Read).unwrap();
        assert!(b > a, "second same-cycle request queues at the dispatcher");
        t = b;
        let _ = t;
    }

    #[test]
    fn writes_dirty_the_buffer() {
        let mut m = module();
        m.access_sector(Cycle(0), 9, AccessKind::Write).unwrap();
        assert_eq!(m.buffer_mut().flush_dirty(), vec![9]);
    }

    #[test]
    fn crash_recover_drops_buffer_and_rebuilds_map() {
        let mut m = module();
        let mut t = Cycle(0);
        for vpn in 0..4 {
            t = m.access_sector(t, vpn, AccessKind::Write).unwrap();
        }
        assert!(!m.buffer().is_empty());
        let report = m.crash_recover(t + Cycle(10_000_000)).unwrap();
        assert!(m.buffer().is_empty(), "DRAM buffer lost at the cut");
        assert!(report.pages_scanned > 0, "{report:?}");
        // Dirty buffered pages were never written to flash, so the
        // recovered map only knows pages the buffer happened to evict.
        let t2 = m
            .access_sector(t + Cycle(20_000_000), 0, AccessKind::Read)
            .unwrap();
        assert!(t2 > t, "module keeps servicing after recovery");
    }
}
