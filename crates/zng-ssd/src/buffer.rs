//! The SSD-internal DRAM page buffer.
//!
//! A fully-associative LRU cache of flash pages with dirty tracking.
//! Residency is decided here; the *timing* of buffer DRAM accesses is
//! charged by the SSD module through its single-package
//! [`zng_mem::MemSubsystem`] (the 32-bit-bus bottleneck of Fig. 1b).

use fxhash::{FxBuildHasher, FxHashMap};

/// The result of a buffer lookup/insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferAccess {
    /// Whether the page was already resident.
    pub hit: bool,
    /// A dirty page pushed out to make room (must be flushed to flash).
    pub evicted_dirty: Option<u64>,
}

/// A fully-associative LRU page cache with dirty bits.
///
/// # Examples
///
/// ```
/// use zng_ssd::PageBuffer;
///
/// let mut buf = PageBuffer::new(2);
/// assert!(!buf.access(1, false).hit);
/// assert!(buf.access(1, true).hit); // now dirty
/// buf.access(2, false);
/// let third = buf.access(3, false); // evicts page 1 (LRU, dirty)
/// assert_eq!(third.evicted_dirty, Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct PageBuffer {
    capacity: usize,
    /// ppn -> (last_use, dirty). Pre-sized to `capacity` (residency is
    /// bounded) with the deterministic Fx hasher; LRU victim choice is
    /// tie-broken on `(last_use, ppn)` and `flush_dirty` sorts, so
    /// iteration order never leaks.
    pages: FxHashMap<u64, (u64, bool)>,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl PageBuffer {
    /// Creates a buffer holding `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> PageBuffer {
        assert!(capacity > 0, "page buffer needs capacity");
        PageBuffer {
            capacity,
            pages: FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Touches page `ppn`, marking it dirty if `write`. Inserts on miss,
    /// evicting the LRU page; a dirty eviction is reported for flushing.
    pub fn access(&mut self, ppn: u64, write: bool) -> BufferAccess {
        self.tick += 1;
        if let Some((last, dirty)) = self.pages.get_mut(&ppn) {
            *last = self.tick;
            *dirty |= write;
            self.hits += 1;
            return BufferAccess {
                hit: true,
                evicted_dirty: None,
            };
        }
        self.misses += 1;
        let mut evicted_dirty = None;
        if self.pages.len() >= self.capacity {
            let victim = self
                .pages
                .iter()
                .min_by_key(|(k, (last, _))| (*last, **k))
                .map(|(k, _)| *k);
            if let Some(victim) = victim {
                if let Some((_, true)) = self.pages.remove(&victim) {
                    self.writebacks += 1;
                    evicted_dirty = Some(victim);
                }
            }
        }
        self.pages.insert(ppn, (self.tick, write));
        BufferAccess {
            hit: false,
            evicted_dirty,
        }
    }

    /// Whether `ppn` is resident.
    pub fn contains(&self, ppn: u64) -> bool {
        self.pages.contains_key(&ppn)
    }

    /// Drains all dirty pages (flush on shutdown/GC), clearing the buffer.
    pub fn flush_dirty(&mut self) -> Vec<u64> {
        let mut dirty: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, (_, d))| *d)
            .map(|(k, _)| *k)
            .collect();
        dirty.sort_unstable();
        self.writebacks += dirty.len() as u64;
        self.pages.clear();
        dirty
    }

    /// Power loss: every buffered page — dirty ones included — vanishes
    /// with **no** write-back (the buffer is DRAM). Returns the number of
    /// dirty pages lost; those writes were never durable and recovery
    /// must not resurrect them.
    pub fn power_loss(&mut self) -> usize {
        let lost = self.pages.values().filter(|(_, d)| *d).count();
        self.pages.clear();
        lost
    }

    /// Resident page count.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions + flushes performed.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Hit rate (0.0 if never accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut b = PageBuffer::new(4);
        assert!(!b.access(1, false).hit);
        assert!(b.access(1, false).hit);
        assert_eq!(b.hits(), 1);
        assert_eq!(b.misses(), 1);
        assert!((b.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut b = PageBuffer::new(2);
        b.access(1, false);
        b.access(2, false);
        b.access(1, false); // 2 becomes LRU
        let r = b.access(3, false);
        assert!(!r.hit);
        assert!(!b.contains(2));
        assert!(b.contains(1) && b.contains(3));
    }

    #[test]
    fn clean_evictions_need_no_writeback() {
        let mut b = PageBuffer::new(1);
        b.access(1, false);
        let r = b.access(2, false);
        assert_eq!(r.evicted_dirty, None);
        assert_eq!(b.writebacks(), 0);
    }

    #[test]
    fn dirty_evictions_reported() {
        let mut b = PageBuffer::new(1);
        b.access(1, true);
        let r = b.access(2, false);
        assert_eq!(r.evicted_dirty, Some(1));
        assert_eq!(b.writebacks(), 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut b = PageBuffer::new(2);
        b.access(1, false);
        b.access(1, true); // dirties the clean page
        b.access(2, false);
        let r = b.access(3, false); // evicts 1
        assert_eq!(r.evicted_dirty, Some(1));
    }

    #[test]
    fn flush_dirty_returns_sorted_and_clears() {
        let mut b = PageBuffer::new(8);
        b.access(5, true);
        b.access(2, false);
        b.access(9, true);
        assert_eq!(b.flush_dirty(), vec![5, 9]);
        assert!(b.is_empty());
    }

    #[test]
    fn power_loss_drops_dirty_pages_without_writeback() {
        let mut b = PageBuffer::new(8);
        b.access(1, true);
        b.access(2, false);
        b.access(3, true);
        assert_eq!(b.power_loss(), 2, "two dirty pages lost");
        assert!(b.is_empty());
        assert_eq!(b.writebacks(), 0, "a power cut never writes back");
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        let _ = PageBuffer::new(0);
    }
}
