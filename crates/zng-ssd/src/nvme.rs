//! The discrete NVMe SSD of the Hetero platform (paper Fig. 4b).
//!
//! Hetero keeps GPU and SSD as separate PCIe peripherals: a GPU page
//! fault is serviced by the *host*, which reads a 4 KB page from this
//! SSD, stages it in host DRAM, and DMAs it to the GPU. The NVMe command
//! path (doorbell, queue processing, completion interrupt) adds fixed
//! software/controller overhead on top of engine + flash time.

use zng_flash::{FlashDevice, FlashGeometry};
use zng_ftl::{PageMapFtl, RainConfig, RecoveryReport, SsdEngine};
use zng_types::ids::{ChannelId, DieId};
use zng_types::{Cycle, Freq, Nanos, Result};

/// A discrete NVMe SSD servicing page-granular I/O.
#[derive(Debug, Clone)]
pub struct NvmeSsd {
    engine: SsdEngine,
    ftl: PageMapFtl,
    device: FlashDevice,
    command_overhead: Cycle,
    reads: u64,
    writes: u64,
}

impl NvmeSsd {
    /// Builds the SSD with ~8 µs of NVMe command overhead per I/O.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn new(geometry: FlashGeometry, freq: Freq) -> Result<NvmeSsd> {
        let device = FlashDevice::hybrid_config(geometry, freq)?;
        let ftl = PageMapFtl::new(&device);
        Ok(NvmeSsd {
            engine: SsdEngine::commercial(freq),
            ftl,
            device,
            command_overhead: Nanos::from_micros(8.0).to_cycles(freq),
            reads: 0,
            writes: 0,
        })
    }

    /// Reads a 4 KB page (`ppn`); returns when the data is at the SSD's
    /// PCIe boundary.
    ///
    /// # Errors
    ///
    /// Propagates FTL/flash errors.
    pub fn read_page(&mut self, now: Cycle, ppn: u64) -> Result<Cycle> {
        self.reads += 1;
        let queued = now + self.command_overhead;
        let translated = self.engine.process(queued);
        let page_bytes = self.device.geometry().page_bytes;
        self.ftl
            .read_page(translated, &mut self.device, ppn, page_bytes)
    }

    /// Writes a 4 KB page (`ppn`); returns program-complete time.
    ///
    /// # Errors
    ///
    /// Propagates FTL/flash errors.
    pub fn write_page(&mut self, now: Cycle, ppn: u64) -> Result<Cycle> {
        self.writes += 1;
        let queued = now + self.command_overhead;
        let translated = self.engine.process(queued);
        self.ftl.write_page(translated, &mut self.device, ppn)
    }

    /// Simulates a power cut at `now` followed by FTL recovery: flash
    /// registers lose their in-flight contents, torn programs are marked,
    /// and the page map is rebuilt from the out-of-band scan.
    ///
    /// # Errors
    ///
    /// Propagates flash errors from the recovery scan's dead-block
    /// erases.
    pub fn crash_recover(&mut self, now: Cycle) -> Result<RecoveryReport> {
        self.device.power_loss(now);
        self.ftl.recover(now, &mut self.device)
    }

    /// The flash backbone (for statistics).
    pub fn device(&self) -> &FlashDevice {
        &self.device
    }

    /// The page-level FTL, for statistics.
    pub fn ftl(&self) -> &PageMapFtl {
        &self.ftl
    }

    /// Applies a fault-injection configuration to the flash media.
    pub fn apply_faults(&mut self, cfg: &zng_flash::FaultConfig) {
        self.device.set_fault_config(cfg);
    }

    /// Enables (or disables, with `None`) RAIN redundancy on the FTL.
    pub fn set_redundancy(&mut self, config: Option<RainConfig>) {
        self.ftl.set_redundancy(&self.device, config);
    }

    /// Applies the end-to-end integrity policy: silent-corruption
    /// injection on the media plus payload verification in the FTL.
    pub fn apply_integrity(&mut self, cfg: &zng_flash::SdcConfig, verify: bool) {
        self.device.set_integrity_config(cfg);
        self.ftl.set_integrity(verify);
    }

    /// Arms the endurance subsystem: read-disturb/retention tracking on
    /// the media plus the refresh + static-levelling scheduler in the
    /// FTL.
    pub fn apply_endurance(&mut self, policy: zng_ftl::RefreshPolicy) {
        self.device
            .set_endurance_tracking(Some(zng_flash::DISTURB_READS_PER_CYCLE));
        self.ftl.set_endurance(Some(policy));
    }

    /// One refresh-scheduler step: scan for blocks over their disturb or
    /// retention budget and rewrite one, else run a levelling migration.
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors.
    pub fn refresh_step(&mut self, now: Cycle) -> Result<Cycle> {
        self.ftl.refresh_step(now, &mut self.device)
    }

    /// Installs (or removes, with `None`) the mapping-checkpoint
    /// subsystem on the FTL.
    pub fn set_checkpointing(&mut self, config: Option<zng_ftl::CheckpointConfig>) {
        self.ftl.set_checkpointing(config);
    }

    /// One background checkpoint write; returns the foreground stall
    /// horizon (capped by the pacing budget when one is set).
    pub fn checkpoint_step(&mut self, now: Cycle) -> Cycle {
        self.ftl.checkpoint_step(now, &mut self.device)
    }

    /// Installs (or removes, with `None`) the predictive die-health
    /// monitor on the FTL.
    pub fn set_health(&mut self, policy: Option<zng_ftl::HealthPolicy>) {
        self.ftl.set_health(policy);
    }

    /// One predictive-health tick: score the per-die telemetry, fence
    /// newly dead dies, evacuate one victim block off a suspect (when
    /// evacuation is on) and rehabilitate false positives. Returns the
    /// foreground stall horizon (capped by the pacing budget when one
    /// is set).
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors.
    pub fn health_step(&mut self, now: Cycle) -> Result<Cycle> {
        self.ftl.health_step(now, &mut self.device)
    }

    /// Kills one die and fences its blocks: reads reconstruct around it,
    /// the allocator stops handing out its blocks.
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors from the fencing relocations.
    pub fn fail_die(&mut self, now: Cycle, channel: ChannelId, die: DieId) -> Result<Cycle> {
        self.device.fail_die(channel, die);
        self.ftl.fence_dead_die(now, &mut self.device)
    }

    /// Severs one mesh/bus link; transfers detour deterministically.
    pub fn fail_link(&mut self, channel: ChannelId) {
        self.device.fail_link(channel);
    }

    /// One patrol-scrub step: scan the next slot, rewrite it if strained.
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors.
    pub fn scrub_step(&mut self, now: Cycle) -> Result<Cycle> {
        self.ftl.scrub_step(now, &mut self.device)
    }

    /// Re-creates every page stranded on dead dies onto healthy spares.
    ///
    /// # Errors
    ///
    /// Propagates flash/FTL errors from reconstruction and reprogramming.
    pub fn rebuild_dead_die(&mut self, now: Cycle) -> Result<(Cycle, u64)> {
        self.ftl.rebuild_dead_die(now, &mut self.device)
    }

    /// Page reads issued.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Page writes issued.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// The fixed NVMe command overhead.
    pub fn command_overhead(&self) -> Cycle {
        self.command_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssd() -> NvmeSsd {
        NvmeSsd::new(FlashGeometry::tiny(), Freq::default()).unwrap()
    }

    #[test]
    fn read_includes_command_engine_and_flash() {
        let mut s = ssd();
        let t = s.read_page(Cycle(0), 3).unwrap();
        // 8us command (9600cy) + engine (600cy) + sense (3600cy) + bus.
        assert!(t > Cycle(9_600 + 3_600), "{t}");
        assert_eq!(s.reads(), 1);
    }

    #[test]
    fn write_includes_program_time() {
        let mut s = ssd();
        let t = s.write_page(Cycle(0), 3).unwrap();
        assert!(t > Cycle(120_000), "{t}");
        assert_eq!(s.writes(), 1);
    }

    #[test]
    fn command_overhead_is_configured() {
        let s = ssd();
        assert_eq!(s.command_overhead(), Cycle(9_600)); // 8us * 1.2GHz
    }

    #[test]
    fn crash_recover_preserves_completed_writes() {
        let mut s = ssd();
        let mut t = Cycle(0);
        for ppn in 0..6 {
            t = s.write_page(t, ppn).unwrap();
        }
        let report = s.crash_recover(t + Cycle(10_000_000)).unwrap();
        assert!(report.pages_scanned >= 6, "{report:?}");
        assert_eq!(report.torn_discarded, 0, "quiescent cut tears nothing");
        for ppn in 0..6 {
            s.read_page(t + Cycle(20_000_000), ppn)
                .expect("completed write readable after recovery");
        }
    }

    #[test]
    fn repeated_reads_still_pay_flash() {
        // The discrete SSD has no GPU-visible cache: every fault pays.
        let mut s = ssd();
        let t1 = s.read_page(Cycle(0), 3).unwrap();
        let t2 = s.read_page(t1, 3).unwrap();
        assert!(t2 - t1 > Cycle(9_600), "{}", t2 - t1);
    }
}
