//! Conventional SSD assemblies for the ZnG simulator's baselines.
//!
//! * [`PageBuffer`] — the fully-associative internal DRAM page cache of a
//!   conventional SSD (read/write buffer hiding Z-NAND latency).
//! * [`SsdModule`] — HybridGPU's embedded SSD: a *single* request
//!   dispatcher, an embedded-core SSD engine, a one-package DRAM buffer
//!   and a bus-networked Z-NAND backbone. Each of these is one of the
//!   bottleneck bars of the paper's Fig. 1b.
//! * [`NvmeSsd`] — the discrete SSD of the Hetero platform, serving 4 KB
//!   page faults with NVMe command overheads.

pub mod buffer;
pub mod module;
pub mod nvme;

pub use buffer::{BufferAccess, PageBuffer};
pub use module::SsdModule;
pub use nvme::NvmeSsd;
