//! Shared helpers for the figure/table benches.
//!
//! Every bench binary regenerates one table or figure of the paper and
//! prints it as an aligned text table; a JSON record is also written to
//! `target/zng-results/<id>.json` so `EXPERIMENTS.md` can be refreshed
//! from machine-readable output.
//!
//! Set `ZNG_QUICK=1` to run all benches with reduced trace volume
//! (useful for smoke-testing the harness; the printed shapes are noisier).

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

use zng::{Table, TraceParams};

/// Process-lifetime stopwatch: armed by the first call to any parameter
/// helper (the first line of every bench `main`), read by [`report`] so
/// each bench's JSON record carries its own wall-clock cost. The number
/// is metadata for `BENCH.json` — never a golden value.
static BENCH_START: OnceLock<Instant> = OnceLock::new();

fn arm_stopwatch() {
    BENCH_START.get_or_init(Instant::now);
}

/// Seconds since the bench process armed the stopwatch (0.0 if no
/// parameter helper ran, e.g. in unit tests).
pub fn bench_wall_seconds() -> f64 {
    BENCH_START
        .get()
        .map(|t| t.elapsed().as_secs_f64())
        .unwrap_or(0.0)
}

/// The standard per-figure trace volume (reuse ≈ the paper's Fig. 5
/// characterisation).
pub fn params_standard() -> TraceParams {
    arm_stopwatch();
    if quick() {
        TraceParams {
            total_warps: 64,
            mem_ops_per_warp: 300,
            footprint_pages: 1024,
            seed: 42,
        }
    } else {
        TraceParams {
            total_warps: 128,
            mem_ops_per_warp: 1300,
            footprint_pages: 4096,
            seed: 42,
        }
    }
}

/// A lighter volume for many-point sweeps (threshold/scalability grids).
pub fn params_light() -> TraceParams {
    arm_stopwatch();
    if quick() {
        TraceParams {
            total_warps: 32,
            mem_ops_per_warp: 200,
            footprint_pages: 512,
            seed: 42,
        }
    } else {
        TraceParams {
            total_warps: 128,
            mem_ops_per_warp: 650,
            footprint_pages: 2048,
            seed: 42,
        }
    }
}

/// Whether `ZNG_QUICK=1` smoke-test mode is on.
pub fn quick() -> bool {
    arm_stopwatch();
    std::env::var_os("ZNG_QUICK").is_some()
}

/// Prints the table under the figure's title and saves a JSON record.
pub fn report(id: &str, title: &str, table: &Table, paper_expectation: &str) {
    table.print(&format!("{id}: {title}"));
    println!("paper: {paper_expectation}");
    save_json(id, title, table, paper_expectation);
}

fn save_json(id: &str, title: &str, table: &Table, paper: &str) {
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let (headline_label, headline) = match table.headline() {
        Some((label, value)) => (zng_json::Value::from(label), zng_json::Value::from(value)),
        None => (zng_json::Value::Null, zng_json::Value::Null),
    };
    let record = zng_json::Value::object(vec![
        ("id", zng_json::Value::from(id)),
        ("title", zng_json::Value::from(title)),
        ("paper_expectation", zng_json::Value::from(paper)),
        ("rendered", zng_json::Value::from(table.render())),
        ("quick_mode", zng_json::Value::from(quick())),
        ("headline_label", headline_label),
        ("headline", headline),
        ("wall_seconds", zng_json::Value::from(bench_wall_seconds())),
    ]);
    let _ = fs::write(dir.join(format!("{id}.json")), record.to_string_pretty());
}

/// Directory where benches drop their JSON records
/// (`<workspace>/target/zng-results`).
pub fn results_dir() -> PathBuf {
    // Cargo runs bench binaries with cwd = the package directory
    // (crates/bench), so anchor on the manifest and walk up to the
    // workspace root.
    let mut dir = if let Some(t) = std::env::var_os("CARGO_TARGET_DIR") {
        PathBuf::from(t)
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("target")
    };
    dir.push("zng-results");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_are_sane() {
        let p = params_standard();
        assert!(p.total_warps > 0 && p.footprint_pages > 0);
        let l = params_light();
        assert!(l.mem_ops_per_warp <= p.mem_ops_per_warp);
    }

    #[test]
    fn results_dir_is_under_target() {
        assert!(results_dir().to_string_lossy().contains("target"));
    }
}
