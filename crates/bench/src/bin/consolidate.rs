//! Consolidates per-bench JSON records into one `BENCH.json`.
//!
//! Each bench binary drops a record in `target/zng-results/<id>.json`
//! (see [`zng_bench::report`]); this tool folds them into a single
//! repo-root summary mapping bench id to its headline metric, so CI and
//! reviewers can diff one file instead of a results directory.
//!
//! Usage: `consolidate [OUTPUT]` (default `BENCH.json`, resolved against
//! the current directory — `scripts/bench.sh` runs it from the repo root).

use std::fs;
use std::process::ExitCode;

use zng_json::Value;

fn main() -> ExitCode {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH.json".to_string());
    let dir = zng_bench::results_dir();
    let entries = match fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!(
                "consolidate: cannot read {} ({e}); run `cargo bench` first",
                dir.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!(
            "consolidate: no *.json records in {}; run `cargo bench` first",
            dir.display()
        );
        return ExitCode::FAILURE;
    }

    let mut benches = Vec::new();
    let mut quick = false;
    let mut total_wall = 0.0f64;
    for path in &paths {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("consolidate: skipping {} ({e})", path.display());
                continue;
            }
        };
        let record = match Value::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("consolidate: skipping {} ({e})", path.display());
                continue;
            }
        };
        let id = record["id"]
            .as_str()
            .map(str::to_string)
            .or_else(|| path.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .unwrap_or_default();
        quick |= record["quick_mode"].as_bool().unwrap_or(false);
        let mut entry = vec![("title", record["title"].clone())];
        entry.push(("headline_label", record["headline_label"].clone()));
        entry.push(("headline", record["headline"].clone()));
        // Per-bench wall-clock metadata (from the bench process's own
        // stopwatch): tracked so harness speedups show up in one diff,
        // but kept out of the headline values.
        let wall = record["wall_seconds"].as_f64().unwrap_or(0.0);
        total_wall += wall;
        entry.push(("wall_seconds", Value::from(wall)));
        benches.push((id, Value::object(entry)));
    }

    let summary = Value::object(vec![
        ("schema", Value::from("zng-bench-summary/v1")),
        ("quick_mode", Value::from(quick)),
        ("bench_count", Value::from(benches.len() as u64)),
        ("total_wall_seconds", Value::from(total_wall)),
        ("benches", Value::Object(benches.into_iter().collect())),
    ]);
    let mut text = summary.to_string_pretty();
    text.push('\n');
    if let Err(e) = fs::write(&out_path, text) {
        eprintln!("consolidate: cannot write {out_path} ({e})");
        return ExitCode::FAILURE;
    }
    println!("consolidate: wrote {out_path}");
    ExitCode::SUCCESS
}
