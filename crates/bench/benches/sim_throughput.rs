//! Simulator event throughput: how many scheduler events per second the
//! host machine pushes through the end-to-end model.
//!
//! This measures the *simulator*, not the simulated system — the headline
//! (events/sec on the full ZnG platform) is the number the hot-path
//! engineering work moves. Runs are sequential on purpose: parallel runs
//! would share cores and distort per-run wall-clock.

use zng::{Experiment, PlatformKind, Table};
use zng_bench::{params_standard, report};

fn main() {
    let params = params_standard();
    let mut exp = Experiment::standard().with_params(params);
    exp.config_mut().perf = true;

    // The headline platform first (Table::headline takes the first data
    // row), then the two conventional baselines whose SSD-engine paths
    // stress different structures.
    let platforms = [
        PlatformKind::Zng,
        PlatformKind::HybridGpu,
        PlatformKind::Hetero,
    ];

    let mut t = Table::new(vec![
        "platform".into(),
        "events/sec".into(),
        "events".into(),
        "wall s".into(),
        "peak queue".into(),
        "compute".into(),
        "mem".into(),
        "blocked".into(),
        "skipped".into(),
    ]);
    for p in platforms {
        let r = exp.run(p, &["betw", "back"]).expect("run");
        let perf = r.perf.expect("--perf telemetry requested");
        assert!(perf.events > 0, "an end-to-end run processes events");
        assert_eq!(
            perf.events,
            perf.compute_events + perf.mem_events + perf.blocked_events + perf.skipped_events,
            "every event is compute, mem, blocked or skipped"
        );
        t.row(vec![
            p.to_string(),
            format!("{:.0}", perf.events_per_sec),
            perf.events.to_string(),
            format!("{:.3}", perf.wall_seconds),
            perf.peak_queue_depth.to_string(),
            perf.compute_events.to_string(),
            perf.mem_events.to_string(),
            perf.blocked_events.to_string(),
            perf.skipped_events.to_string(),
        ]);
    }

    report(
        "sim_throughput",
        "simulator event throughput (host events/sec)",
        &t,
        "not a paper figure: simulator engineering headline — higher is \
         better, tracked across commits in BENCH.json",
    );
}
