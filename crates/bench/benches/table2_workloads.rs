//! Table II: GPU benchmarks — specs plus the *measured* request-level
//! read ratio of the synthesised traces (they must track the paper's
//! column).

use zng::{table2, trace_stats, Table};
use zng_bench::{params_light, report};
use zng_types::ids::AppId;
use zng_workloads::generate;

fn main() {
    let params = params_light();
    let mut t = Table::new(vec![
        "workload".into(),
        "suite".into(),
        "read ratio (paper)".into(),
        "read ratio (traces)".into(),
        "kernels".into(),
    ]);
    let mut worst = 0.0f64;
    for spec in table2() {
        let traces = generate(spec, AppId(0), &params);
        let s = trace_stats(&traces);
        worst = worst.max((s.read_ratio - spec.read_ratio).abs());
        t.row(vec![
            spec.name.into(),
            format!("{:?}", spec.suite),
            format!("{:.2}", spec.read_ratio),
            format!("{:.2}", s.read_ratio),
            spec.kernels.to_string(),
        ]);
    }
    assert!(
        worst < 0.10,
        "trace read ratios must track Table II (worst gap {worst:.3})"
    );
    report(
        "table2",
        "GPU benchmarks",
        &t,
        "16 workloads; synthesised request-level read ratios match the paper's column",
    );
}
