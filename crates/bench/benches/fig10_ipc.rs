//! Fig. 10: IPC of the seven GPU-SSD platforms (plus Ideal), normalised
//! to ZnG, across the eight standard multi-app mixes.

use zng::{geomean, mixes, Experiment, PlatformKind, Table};
use zng_bench::{params_standard, quick, report};

fn main() {
    let params = params_standard();
    let exp_proto = Experiment::standard().with_params(params);
    let all_mixes = mixes(&params).expect("standard mixes");
    let selected = if quick() {
        &all_mixes[..2]
    } else {
        &all_mixes[..]
    };

    let mut platforms = PlatformKind::PAPER_PLATFORMS.to_vec();
    platforms.push(PlatformKind::Ideal);

    let mut headers = vec!["platform".into()];
    headers.extend(selected.iter().map(|m| m.name.clone()));
    headers.push("gmean(norm)".into());
    let mut t = Table::new(headers);

    // Run everything once, keyed [platform][mix].
    let mut ipc = vec![vec![0.0f64; selected.len()]; platforms.len()];
    for (pi, &p) in platforms.iter().enumerate() {
        for (mi, mix) in selected.iter().enumerate() {
            let mut exp = exp_proto.clone();
            let r = exp.run_mix(p, mix).expect("run");
            ipc[pi][mi] = r.ipc;
        }
    }
    let zng_row = platforms
        .iter()
        .position(|&p| p == PlatformKind::Zng)
        .expect("ZnG in list");

    for (pi, &p) in platforms.iter().enumerate() {
        let mut cells = vec![p.to_string()];
        let mut normed = Vec::new();
        for (mi, &v) in ipc[pi].iter().enumerate() {
            let norm = v / ipc[zng_row][mi].max(1e-12);
            normed.push(norm);
            cells.push(format!("{norm:.3}"));
        }
        cells.push(format!("{:.3}", geomean(&normed)));
        t.row(cells);
    }

    // Shape checks mirroring the paper's claims.
    let gm = |pi: usize| {
        let v: Vec<f64> = (0..selected.len())
            .map(|mi| ipc[pi][mi] / ipc[zng_row][mi].max(1e-12))
            .collect();
        geomean(&v)
    };
    let idx = |k: PlatformKind| platforms.iter().position(|&p| p == k).unwrap();
    let hybrid = gm(idx(PlatformKind::HybridGpu));
    let hetero = gm(idx(PlatformKind::Hetero));
    let base = gm(idx(PlatformKind::ZngBase));
    let wropt = gm(idx(PlatformKind::ZngWropt));
    assert!(hybrid < 1.0, "ZnG must beat HybridGPU (paper: 7.5x)");
    assert!(hetero < hybrid, "HybridGPU must beat Hetero (paper: +31%)");
    assert!(base < hybrid, "ZnG-base cannot catch HybridGPU (paper)");
    assert!(
        wropt > base,
        "wropt must beat base (paper: 2.6x over rdopt)"
    );

    report(
        "fig10",
        "IPC of GPU-SSD platforms, normalised to ZnG",
        &t,
        "ZnG 7.5x HybridGPU; Optane 2.86x HybridGPU; base/rdopt below HybridGPU; \
         wropt 2.6x rdopt. Measured deviation: our Optane ties/edges ZnG in IPC \
         (see EXPERIMENTS.md)",
    );
}
