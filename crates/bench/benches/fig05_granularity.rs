//! Fig. 5: the access-granularity study.
//!
//! * 5a — slowdown of direct Z-NAND accesses (ZnG-base, no SSD-controller
//!   penalty) vs the traditional GPU memory subsystem (Ideal), for the 12
//!   graph workloads. Paper: up to 28x.
//! * 5b — memory requests repeatedly accessing the same pages (paper
//!   average ~42 reads/page).
//! * 5c — write redundancy (paper average ~65 writes/page across the
//!   write-intensive set).

use zng::{geomean, table2, trace_stats, Experiment, PlatformKind, Suite, Table};
use zng_bench::{params_light, quick, report};
use zng_types::ids::AppId;
use zng_workloads::generate;

fn main() {
    let params = params_light();
    let mut exp = Experiment::standard().with_params(params);
    // The paper's Fig. 5a assumes *no SSD-controller penalty*: GC is free
    // in this study, isolating the access-granularity mismatch.
    exp.config_mut().free_gc = true;

    // ---- 5a: slowdown of direct Z-NAND access ----
    let mut t = Table::new(vec![
        "workload".into(),
        "Ideal IPC".into(),
        "direct-ZNAND IPC".into(),
        "slowdown".into(),
    ]);
    let graph: Vec<_> = table2()
        .iter()
        .filter(|w| w.suite == Suite::GraphBig)
        .collect();
    let subset = if quick() { &graph[..3] } else { &graph[..] };
    let mut slowdowns = Vec::new();
    for spec in subset {
        let ideal = exp.run(PlatformKind::Ideal, &[spec.name]).expect("ideal");
        let base = exp.run(PlatformKind::ZngBase, &[spec.name]).expect("base");
        let slow = ideal.ipc / base.ipc.max(1e-12);
        slowdowns.push(slow);
        t.row(vec![
            spec.name.into(),
            format!("{:.3}", ideal.ipc),
            format!("{:.4}", base.ipc),
            format!("{slow:.0}x"),
        ]);
    }
    t.row(vec![
        "gmean".into(),
        String::new(),
        String::new(),
        format!("{:.0}x", geomean(&slowdowns)),
    ]);
    report(
        "fig05a",
        "Performance degradation of direct Z-NAND access",
        &t,
        "degradation up to 28x vs the traditional GPU memory subsystem",
    );
    assert!(
        slowdowns.iter().cloned().fold(0.0, f64::max) > 10.0,
        "direct flash access must be at least an order of magnitude slower"
    );

    // ---- 5b/5c: page re-access and write redundancy in the traces ----
    let mut t = Table::new(vec![
        "workload".into(),
        "reads/page (5b)".into(),
        "writes/page (5c)".into(),
    ]);
    let (mut reads, mut writes) = (Vec::new(), Vec::new());
    for spec in table2() {
        let traces = generate(spec, AppId(0), &params);
        let s = trace_stats(&traces);
        reads.push(s.mean_reads_per_page);
        if s.write_requests > 0 {
            writes.push(s.mean_writes_per_page);
        }
        t.row(vec![
            spec.name.into(),
            format!("{:.1}", s.mean_reads_per_page),
            format!("{:.1}", s.mean_writes_per_page),
        ]);
    }
    let avg_reads = reads.iter().sum::<f64>() / reads.len() as f64;
    let avg_writes = writes.iter().sum::<f64>() / writes.len().max(1) as f64;
    t.row(vec![
        "average".into(),
        format!("{avg_reads:.1}"),
        format!("{avg_writes:.1}"),
    ]);
    report(
        "fig05bc",
        "Page re-access and write redundancy of the traces",
        &t,
        "paper: ~42 reads/page and ~65 writes/page on average",
    );
}
