//! Table I: system configuration of ZnG.
//!
//! Prints the configuration the simulator instantiates and checks it
//! against the paper's values.

use zng::Table;
use zng_bench::report;
use zng_flash::{FlashGeometry, FlashTiming};
use zng_gpu::GpuConfig;
use zng_types::size::format_bytes;

fn main() {
    let gpu = GpuConfig::table1();
    let stt = GpuConfig::table1_stt_mram();
    let flash = FlashGeometry::table1();
    let znand = FlashTiming::znand();

    let mut t = Table::new(vec!["parameter".into(), "value".into(), "paper".into()]);
    t.row(vec![
        "SM / freq".into(),
        format!("{}/{}", gpu.sms, gpu.freq),
        "16/1.2 GHz".into(),
    ]);
    t.row(vec![
        "max warps".into(),
        format!("{} per SM", gpu.max_warps_per_sm),
        "80 per core".into(),
    ]);
    t.row(vec![
        "L1 cache".into(),
        format!(
            "{}-set {}-way {} LRU private",
            gpu.l1_sets,
            gpu.l1_ways,
            format_bytes(gpu.l1_total_bytes())
        ),
        "64-set 6-way 48KB".into(),
    ]);
    t.row(vec![
        "L2 cache (SRAM)".into(),
        format!(
            "{} banks {}-set {}-way {}",
            gpu.l2_banks,
            gpu.l2_sets_per_bank,
            gpu.l2_ways,
            format_bytes(gpu.l2_total_bytes())
        ),
        "6 banks 1024-set 8-way 6MB".into(),
    ]);
    t.row(vec![
        "L2 cache (STT-MRAM)".into(),
        format_bytes(stt.l2_total_bytes()),
        "24MB shared, R:1 W:5 cycles".into(),
    ]);
    t.row(vec![
        "flash channel/package".into(),
        format!("{}/{}", flash.channels, flash.packages_per_channel),
        "16/1".into(),
    ]);
    t.row(vec![
        "die/plane".into(),
        format!("{}/{}", flash.dies_per_package, flash.planes_per_die),
        "8/8".into(),
    ]);
    t.row(vec![
        "block/page".into(),
        format!("{}/{}", flash.blocks_per_plane, flash.pages_per_block),
        "1024/384".into(),
    ]);
    t.row(vec![
        "Z-NAND read/program".into(),
        format!("{} / {}", znand.read, znand.program),
        "3us / 100us (SLC)".into(),
    ]);
    t.row(vec![
        "interface".into(),
        format!("{} MT/s", znand.channel_mt_per_s),
        "800 MT/s".into(),
    ]);
    t.row(vec![
        "registers / io ports".into(),
        format!(
            "{} per plane / {} per package",
            flash.registers_per_plane, flash.io_ports_per_package
        ),
        "8 per plane / 2 per package".into(),
    ]);
    t.row(vec![
        "device capacity".into(),
        format_bytes(flash.capacity_bytes() as usize),
        "~800GB-class ZSSD".into(),
    ]);

    // Sanity assertions mirroring the paper.
    assert_eq!(gpu.sms, 16);
    assert_eq!(gpu.l2_total_bytes(), 6 << 20);
    assert_eq!(stt.l2_total_bytes(), 24 << 20);
    assert_eq!(flash.channels, 16);
    assert_eq!(flash.pages_per_block, 384);

    report(
        "table1",
        "System configuration of ZnG",
        &t,
        "all structural parameters match Table I exactly",
    );
}
