//! Fig. 15a: scalable performance when co-running 1–8 application
//! instances (ZnG vs Ideal), and Fig. 15b: the read-prefetch predictor's
//! accuracy across all workloads.

use zng::{table2, Experiment, MultiApp, PlatformKind, Table};
use zng_bench::{params_light, quick, report};

fn main() {
    // ---- Fig. 15a ----
    let mut params = params_light();
    // Per-instance volume shrinks as instances grow so total work stays
    // comparable across rows.
    let counts: &[usize] = if quick() { &[1, 2] } else { &[1, 2, 4, 8] };

    // The paper's metric is each platform's *throughput scaling* relative
    // to running a single instance; ZnG should track Ideal's curve.
    let mut t = Table::new(vec![
        "apps".into(),
        "betw Ideal scaling".into(),
        "betw ZnG scaling".into(),
        "back Ideal scaling".into(),
        "back ZnG scaling".into(),
    ]);
    let mut base: Vec<f64> = Vec::new();
    for (row_i, &n) in counts.iter().enumerate() {
        // "Co-running multiple small-scale applications" (paper SV-D):
        // each instance shrinks so the aggregate footprint and warp count
        // stay constant across rows.
        params.total_warps = (256 / n).max(16);
        params.footprint_pages = (2048 / n).max(256);
        let exp_proto = Experiment::standard().with_params(params);
        let mut row = vec![n.to_string()];
        let mut vals = Vec::new();
        for wl in ["betw", "back"] {
            let names = vec![wl; n];
            let mix = MultiApp::from_names(&names, &params).expect("mix");
            let ideal = exp_proto
                .clone()
                .run_mix(PlatformKind::Ideal, &mix)
                .expect("ideal");
            let zng = exp_proto
                .clone()
                .run_mix(PlatformKind::Zng, &mix)
                .expect("zng");
            vals.push(ideal.ipc);
            vals.push(zng.ipc);
        }
        if row_i == 0 {
            base = vals.clone();
        }
        for (v, b) in vals.iter().zip(base.iter()) {
            row.push(format!("{:.2}x", v / b));
        }
        t.row(row);
    }
    report(
        "fig15a",
        "Scalability: throughput scaling vs single instance",
        &t,
        "ZnG's scaling tracks Ideal's up to 4 apps (the AWS limit) and stays close at 8",
    );

    // ---- Fig. 15b ----
    let params = params_light();
    let mut t = Table::new(vec!["workload".into(), "predictor accuracy".into()]);
    let specs: Vec<_> = table2().iter().collect();
    let subset = if quick() { &specs[..4] } else { &specs[..] };
    let mut accs = Vec::new();
    for spec in subset {
        let mut exp = Experiment::standard().with_params(params);
        let r = exp.run(PlatformKind::Zng, &[spec.name]).expect("run");
        accs.push(r.predictor_accuracy);
        t.row(vec![
            spec.name.into(),
            format!("{:.2}", r.predictor_accuracy),
        ]);
    }
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    let worst = accs.iter().cloned().fold(1.0, f64::min);
    t.row(vec!["average".into(), format!("{mean:.2}")]);
    t.row(vec!["worst".into(), format!("{worst:.2}")]);
    assert!(mean > 0.8, "predictor accuracy must be high (paper: 93%)");
    report(
        "fig15b",
        "Prediction accuracy of the PC-based predictor",
        &t,
        "93% average accuracy, 87% worst case",
    );
}
