//! Microbenchmarks for the simulator's hot components: event queue,
//! set-associative cache, coalescer, row-decoder CAM, register cache and
//! Zipf sampler.
//!
//! Uses a self-contained timing harness (median of several timed rounds
//! after warmup) instead of an external bench framework, matching the
//! other `harness = false` bench binaries in this crate.

use std::hint::black_box;
use std::time::Instant;

use zng_flash::{RegisterCache, RowDecoder};
use zng_gpu::{CacheGeometry, Coalescer, SetAssocCache};
use zng_sim::rng::{seeded, Zipf};
use zng_sim::EventQueue;
use zng_types::{ids::AppId, Cycle};

/// Times `f` (median of `rounds` after warmup) and prints one line.
fn bench<T>(name: &str, rounds: usize, mut f: impl FnMut() -> T) {
    for _ in 0..3 {
        black_box(f());
    }
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    println!("{name:<32} {:>10.2} us/iter", samples[samples.len() / 2]);
}

fn main() {
    println!("micro_components: hot-path microbenchmarks\n");

    bench("event_queue_push_pop_1k", 50, || {
        let mut q = EventQueue::<u32>::new();
        for i in 0..1_000u32 {
            q.schedule(Cycle((i as u64 * 7919) % 4096), i);
        }
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        n
    });

    let geo = CacheGeometry {
        sets: 1024,
        ways: 8,
        line_bytes: 128,
    };
    bench("l2_bank_lookup_fill_2k", 50, || {
        let mut cache = SetAssocCache::new(geo);
        for i in 0..2_000u64 {
            let addr = (i * 131) % (1 << 22);
            if !cache.lookup(addr, false) {
                cache.fill(addr, false, AppId(0));
            }
        }
        cache.occupancy()
    });

    bench("coalesce_strided_warp", 200, || {
        let mut total = 0usize;
        for stride in [4u64, 32, 128] {
            total += Coalescer::strided(0x1000, stride).len();
        }
        total
    });

    let mut dec = RowDecoder::new(384);
    for k in 0..300u64 {
        dec.record(k).unwrap();
    }
    bench("row_decoder_cam_search", 200, || {
        let mut hits = 0;
        for k in 0..384u64 {
            if dec.lookup(k).is_some() {
                hits += 1;
            }
        }
        hits
    });

    bench("register_cache_write_stream_2k", 50, || {
        let mut regs = RegisterCache::grouped(64, 8);
        for k in 0..2_000u64 {
            regs.write(k % 700, (k % 64) as usize);
        }
        regs.len()
    });

    let z = Zipf::new(4096, 0.85);
    let mut rng = seeded(1);
    bench("zipf_sample_1k", 100, || {
        let mut acc = 0usize;
        for _ in 0..1_000 {
            acc += z.sample(&mut rng);
        }
        acc
    });
}
