//! Criterion microbenchmarks for the simulator's hot components: event
//! queue, set-associative cache, coalescer, row-decoder CAM, register
//! cache, Zipf sampler and the end-to-end per-request service path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use zng_flash::{RegisterCache, RowDecoder};
use zng_gpu::{CacheGeometry, Coalescer, SetAssocCache};
use zng_sim::rng::{seeded, Zipf};
use zng_sim::EventQueue;
use zng_types::{ids::AppId, Cycle};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                for i in 0..1_000u32 {
                    q.schedule(Cycle((i as u64 * 7919) % 4096), i);
                }
                while q.pop().is_some() {}
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l2_bank_lookup_fill", |b| {
        let geo = CacheGeometry {
            sets: 1024,
            ways: 8,
            line_bytes: 128,
        };
        b.iter_batched(
            || SetAssocCache::new(geo),
            |mut cache| {
                for i in 0..2_000u64 {
                    let addr = (i * 131) % (1 << 22);
                    if !cache.lookup(addr, false) {
                        cache.fill(addr, false, AppId(0));
                    }
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_coalescer(c: &mut Criterion) {
    c.bench_function("coalesce_strided_warp", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for stride in [4u64, 32, 128] {
                total += Coalescer::strided(0x1000, stride).len();
            }
            total
        });
    });
}

fn bench_row_decoder(c: &mut Criterion) {
    c.bench_function("row_decoder_cam_search", |b| {
        let mut dec = RowDecoder::new(384);
        for k in 0..300u64 {
            dec.record(k).unwrap();
        }
        b.iter(|| {
            let mut hits = 0;
            for k in 0..384u64 {
                if dec.lookup(k).is_some() {
                    hits += 1;
                }
            }
            hits
        });
    });
}

fn bench_register_cache(c: &mut Criterion) {
    c.bench_function("register_cache_write_stream", |b| {
        b.iter_batched(
            || RegisterCache::grouped(64, 8),
            |mut regs| {
                for k in 0..2_000u64 {
                    regs.write(k % 700, (k % 64) as usize);
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_zipf(c: &mut Criterion) {
    c.bench_function("zipf_sample_4096", |b| {
        let z = Zipf::new(4096, 0.85);
        let mut rng = seeded(1);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1_000 {
                acc += z.sample(&mut rng);
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cache,
    bench_coalescer,
    bench_row_decoder,
    bench_register_cache,
    bench_zipf
);
criterion_main!(benches);
