//! Fig. 14: performance of the flash-register network designs.
//!
//! Paper: HW-FCnet beats SWnet by 19 %; HW-NiF reaches 98 % of FCnet at
//! a fraction of the wiring cost. The register files are kept small so
//! cross-plane migrations actually occur.

use zng::{mixes, Experiment, PlatformKind, RegisterTopology, Table};
use zng_bench::{params_standard, quick, report};

fn main() {
    let params = params_standard();
    let all_mixes = mixes(&params).expect("mixes");
    let selected = if quick() {
        &all_mixes[..2]
    } else {
        &all_mixes[..4]
    };

    let topologies = [
        ("SWnet", RegisterTopology::SwNet),
        ("HW-FCnet", RegisterTopology::FcNet),
        ("HW-NiF", RegisterTopology::NiF),
    ];

    let mut headers = vec!["network".into()];
    headers.extend(selected.iter().map(|m| m.name.clone()));
    headers.push("gmean IPC".into());
    headers.push("vs FCnet".into());
    headers.push("migrations".into());
    let mut t = Table::new(headers);

    let mut results = Vec::new();
    for (label, topo) in topologies.iter() {
        let mut ipcs = Vec::new();
        let mut migrations = 0u64;
        let mut cells = vec![label.to_string()];
        for mix in selected {
            let mut exp = Experiment::standard().with_params(params);
            exp.config_mut().register_topology = *topo;
            exp.config_mut().flash.registers_per_plane = 2;
            let r = exp.run_mix(PlatformKind::Zng, mix).expect("run");
            ipcs.push(r.ipc);
            migrations += r.register_migrations;
            cells.push(format!("{:.4}", r.ipc));
        }
        let gm = zng::geomean(&ipcs);
        results.push((cells, gm, migrations));
    }
    let fcnet = results[1].1;
    for (mut cells, gm, migrations) in results.clone() {
        cells.push(format!("{gm:.4}"));
        cells.push(format!("{:.0}%", gm / fcnet * 100.0));
        cells.push(migrations.to_string());
        t.row(cells);
    }

    let swnet = results[0].1;
    let nif = results[2].1;
    assert!(fcnet >= swnet, "FCnet must not lose to SWnet");
    assert!(
        nif / fcnet > 0.9,
        "NiF must be within 10% of FCnet (paper: 98%), got {:.0}%",
        nif / fcnet * 100.0
    );

    report(
        "fig14",
        "Flash-register network designs",
        &t,
        "FCnet +19% over SWnet; NiF achieves 98% of FCnet",
    );
}
