//! Fig. 12: number of read re-accesses in the flash arrays under the
//! read-path configurations.
//!
//! Paper: replacing the SRAM L2 with STT-MRAM cuts re-accesses by 55 %;
//! adding dynamic prefetch cuts a further 87 %; pinning L2 space for
//! redirection costs only +11 %.

use zng::{mixes, Experiment, PlatformKind, PrefetchPolicy, Table};
use zng_bench::{params_standard, quick, report};

fn main() {
    let params = params_standard();
    let all_mixes = mixes(&params).expect("mixes");
    let selected = if quick() {
        &all_mixes[..2]
    } else {
        &all_mixes[..4]
    };

    // Configurations in the figure's order. All use register-buffered
    // writes (so the write path doesn't drown the read metric).
    // (label, platform, prefetch policy)
    let configs: [(&str, PlatformKind, PrefetchPolicy); 4] = [
        (
            "SRAM L2 (6MB)",
            PlatformKind::ZngWropt,
            PrefetchPolicy::None,
        ),
        ("STT-MRAM (24MB)", PlatformKind::Zng, PrefetchPolicy::None),
        ("Dyn-prefetch", PlatformKind::Zng, PrefetchPolicy::Dynamic),
        ("Redirection", PlatformKind::Zng, PrefetchPolicy::Dynamic),
    ];

    let mut headers = vec!["config".into()];
    headers.extend(selected.iter().map(|m| m.name.clone()));
    headers.push("mean reads/page".into());
    let mut t = Table::new(headers);

    let mut means = Vec::new();
    for (i, (label, platform, policy)) in configs.iter().enumerate() {
        let mut cells = vec![label.to_string()];
        let mut sum = 0.0;
        for mix in selected {
            let mut exp = Experiment::standard().with_params(params);
            exp.config_mut().prefetch_policy = *policy;
            if i == 3 {
                // Redirection row: stress the registers so pinning engages.
                exp.config_mut().flash.registers_per_plane = 4;
            }
            let r = exp.run_mix(*platform, mix).expect("run");
            sum += r.flash_reads_per_page;
            cells.push(format!("{:.1}", r.flash_reads_per_page));
        }
        let mean = sum / selected.len() as f64;
        means.push(mean);
        cells.push(format!("{mean:.1}"));
        t.row(cells);
    }

    assert!(
        means[1] < means[0],
        "STT-MRAM must reduce re-accesses vs SRAM ({} vs {})",
        means[1],
        means[0]
    );
    assert!(
        means[2] < means[1],
        "dynamic prefetch must reduce re-accesses further ({} vs {})",
        means[2],
        means[1]
    );

    report(
        "fig12",
        "Read re-accesses in flash arrays (mean array reads per page)",
        &t,
        "STT-MRAM -55%; +dyn-prefetch -87%; redirection costs only +11%",
    );
}
