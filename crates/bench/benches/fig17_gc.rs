//! Fig. 17: garbage-collection impact on the `betw-back` mix.
//!
//! 17a — per-app performance with and without GC cost (paper: back
//! −73 %, betw +5 %). 17b — per-app memory-request time series showing
//! back's requests collapsing to zero once GC starts.

use zng::{Experiment, PlatformKind, Table, TraceParams};
use zng_bench::{quick, report};

fn main() {
    let params = if quick() {
        TraceParams {
            total_warps: 64,
            mem_ops_per_warp: 500,
            footprint_pages: 4096,
            seed: 42,
        }
    } else {
        TraceParams {
            total_warps: 128,
            mem_ops_per_warp: 900,
            footprint_pages: 4096,
            seed: 42,
        }
    };
    let mut exp = Experiment::standard().with_params(params);
    // Fewer registers per plane: the write set overflows them and the
    // log blocks fill, so GC actually fires at simulation scale.
    exp.config_mut().flash.registers_per_plane = if quick() { 4 } else { 8 };
    exp.config_mut().group_size = 2;

    let with_gc = exp.run(PlatformKind::Zng, &["betw", "back"]).expect("run");
    exp.config_mut().free_gc = true;
    let no_gc = exp.run(PlatformKind::Zng, &["betw", "back"]).expect("run");

    let mut t = Table::new(vec![
        "app".into(),
        "IPC no-GC".into(),
        "IPC with-GC".into(),
        "impact".into(),
    ]);
    let mut impacts = Vec::new();
    for (app, name) in [(0u16, "betw"), (1u16, "back")] {
        let a = no_gc.app_ipc(app);
        let b = with_gc.app_ipc(app);
        impacts.push(b / a - 1.0);
        t.row(vec![
            name.into(),
            format!("{a:.4}"),
            format!("{b:.4}"),
            format!("{:+.0}%", (b / a - 1.0) * 100.0),
        ]);
    }
    t.row(vec![
        "GCs".into(),
        with_gc.gcs.to_string(),
        String::new(),
        String::new(),
    ]);
    assert!(with_gc.gcs > 0, "GC must fire in this configuration");
    assert!(
        impacts[1] < -0.3,
        "GC must hurt the write app substantially"
    );
    assert!(
        impacts[0] > impacts[1],
        "the read app must be hurt far less than the write app"
    );
    report(
        "fig17a",
        "GC impact on per-app performance",
        &t,
        "back -73%; betw +5% (freed L2 space)",
    );

    // ---- 17b: time series ----
    let mut t = Table::new(vec![
        "t (us)".into(),
        "betw reqs/10us".into(),
        "back reqs/10us".into(),
    ]);
    let empty = Vec::new();
    let betw = with_gc.per_app_series.get(&0).unwrap_or(&empty);
    let back = with_gc.per_app_series.get(&1).unwrap_or(&empty);
    // The paper's Fig. 17b window covers the first ~1.3 ms around the
    // first GC; show the equivalent window (the long GC tail is silent).
    let first_gc_bucket = with_gc
        .gc_events
        .first()
        .map(|(s, _)| (s.raw() / with_gc.series_interval.raw()) as usize)
        .unwrap_or(40);
    let buckets = (first_gc_bucket * 3).clamp(20, betw.len().max(back.len()));
    let step = (buckets / 20).max(1);
    for i in (0..buckets).step_by(step) {
        t.row(vec![
            format!("{}", i as u64 * with_gc.series_interval.raw() / 1200),
            betw.get(i).copied().unwrap_or(0).to_string(),
            back.get(i).copied().unwrap_or(0).to_string(),
        ]);
    }
    let gc_windows: Vec<(u64, u64)> = with_gc
        .gc_events
        .iter()
        .map(|(s, e)| (s.raw() / 1200, e.raw() / 1200))
        .collect();
    println!("GC windows (us): {gc_windows:?}");
    report(
        "fig17b",
        "Per-app memory requests over time",
        &t,
        "back's requests drop to ~0 once GC starts (paper: from 1108us)",
    );
}
