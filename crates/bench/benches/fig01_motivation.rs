//! Fig. 1b: bandwidth analysis of HybridGPU's components versus the
//! traditional GPU memory subsystem.
//!
//! The paper's motivation: the internal DRAM buffer peaks 96 % below GPU
//! memory, and the flash-channel bus and SSD-controller processing rate
//! are further bottlenecks.

use zng::Table;
use zng_bench::report;
use zng_ftl::SsdEngine;
use zng_mem::MemTiming;
use zng_types::{Cycle, Freq};

fn main() {
    let freq = Freq::default();
    let gpu_mem = MemTiming::gddr5().peak_gbps();
    let buffer = MemTiming::hybrid_buffer().peak_gbps();

    // 16 ONFI channels at 800 MT/s x 1 B.
    let channels_gbps = 16.0 * 800e6 / 1e9;

    // SSD engine: 3 cores, 500 ns per request; at 4 KB page requests.
    let mut engine = SsdEngine::commercial(freq);
    let n = 10_000u64;
    let mut last = Cycle::ZERO;
    for _ in 0..n {
        last = engine.process(Cycle::ZERO);
    }
    let secs = last.raw() as f64 / freq.hz();
    let engine_gbps_pages = n as f64 * 4096.0 / 1e9 / secs;
    let engine_gbps_sectors = n as f64 * 128.0 / 1e9 / secs;

    let mut t = Table::new(vec![
        "component".into(),
        "peak GB/s".into(),
        "vs GPU memory".into(),
    ]);
    let rows = [
        ("GPU memory subsystem (6 MC GDDR5)", gpu_mem),
        ("HybridGPU internal DRAM buffer", buffer),
        ("flash channels (16 x ONFI 800MT/s)", channels_gbps),
        ("SSD engine @4KB pages", engine_gbps_pages),
        ("SSD engine @128B requests", engine_gbps_sectors),
    ];
    for (name, gbps) in rows {
        t.row(vec![
            name.into(),
            format!("{gbps:.1}"),
            format!("{:.0}%", gbps / gpu_mem * 100.0),
        ]);
    }

    // The paper's 96% claim: buffer is ~4% of GPU memory bandwidth.
    let ratio = buffer / gpu_mem;
    assert!(
        ratio < 0.08,
        "DRAM buffer must be >92% below GPU memory (got {:.0}%)",
        ratio * 100.0
    );

    report(
        "fig01b",
        "Bandwidth of HybridGPU components",
        &t,
        "internal DRAM buffer ~96% below GPU memory; channels and engine also bottleneck",
    );
}
