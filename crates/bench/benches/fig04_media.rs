//! Fig. 4c/4d: peak throughput of memory media, and HybridGPU's memory
//! access latency breakdown.
//!
//! Fig. 4c compares the achievable data-access throughput of each
//! platform's memory path under a streaming read probe; Fig. 4d
//! decomposes one HybridGPU buffer-miss access into its stages.

use zng::Table;
use zng_bench::report;
use zng_flash::FlashGeometry;
use zng_ftl::SsdEngine;
use zng_mem::MemTiming;
use zng_ssd::SsdModule;
use zng_types::{AccessKind, Cycle, Freq};

fn main() {
    let freq = Freq::default();

    // ---- Fig. 4c: peak streaming throughput per medium ----
    let mut t = Table::new(vec!["medium".into(), "GB/s".into(), "vs GPU DRAM".into()]);
    let gddr5 = MemTiming::gddr5().peak_gbps();
    let media = [
        ("GPU DRAM (GDDR5 x6 MC)", gddr5),
        ("desktop DRAM (DDR4)", MemTiming::ddr4().peak_gbps()),
        ("mobile DRAM (LPDDR4)", MemTiming::lpddr4().peak_gbps()),
        ("GPU-SSD (PCIe-attached)", 2.4),
        ("HybridGPU (measured below)", hybrid_stream_gbps(freq)),
    ];
    for (name, gbps) in media {
        t.row(vec![
            name.into(),
            format!("{gbps:.1}"),
            format!("{:.1}x lower", gddr5 / gbps.max(1e-9)),
        ]);
    }
    report(
        "fig04c",
        "Throughput of different memory media",
        &t,
        "GPU DRAM ~80x a GPU-SSD and ~40x HybridGPU",
    );

    // ---- Fig. 4d: HybridGPU latency breakdown ----
    let mut engine = SsdEngine::commercial(freq);
    let dispatch = 30u64; // 25 ns dispatcher
    let eng = engine.process(Cycle::ZERO).raw();
    let flash_sense = 3_600u64;
    let onfi_page = (4096.0 / (800e6 / freq.hz())).ceil() as u64;
    let buffer_fill = (4096.0 / (8e9 / freq.hz())).ceil() as u64 + 200;
    let total = dispatch + eng + flash_sense + onfi_page + buffer_fill;

    let mut t = Table::new(vec!["stage".into(), "cycles".into(), "share".into()]);
    for (name, c) in [
        ("request dispatcher", dispatch),
        ("SSD engine (FTL firmware)", eng),
        ("Z-NAND sense", flash_sense),
        ("ONFI channel transfer", onfi_page),
        ("internal DRAM buffer", buffer_fill),
    ] {
        t.row(vec![
            name.into(),
            c.to_string(),
            format!("{:.0}%", c as f64 / total as f64 * 100.0),
        ]);
    }
    report(
        "fig04d",
        "HybridGPU memory access latency breakdown (buffer miss)",
        &t,
        "SSD engine + network dominate (engine ~67% of latency under load, when queueing amplifies its share)",
    );
}

/// Streams sectors through a HybridGPU SSD module with 64 concurrent
/// reader chains (a GPU's worth of memory-level parallelism) and reports
/// achieved GB/s.
fn hybrid_stream_gbps(freq: Freq) -> f64 {
    let geometry = FlashGeometry {
        channels: 16,
        packages_per_channel: 1,
        dies_per_package: 4,
        planes_per_die: 4,
        blocks_per_plane: 128,
        pages_per_block: 64,
        page_bytes: 4096,
        registers_per_plane: 8,
        io_ports_per_package: 2,
    };
    let mut ssd = SsdModule::hybrid(geometry, 512, freq).expect("module");
    let streams = 64usize;
    let mut t = vec![Cycle::ZERO; streams];
    let sectors = 64_000u64;
    for i in 0..sectors {
        let s = (i % streams as u64) as usize;
        // Each stream walks its own page-sequential region.
        let vpn = ((s as u64) << 20) | ((i / streams as u64) / 32);
        t[s] = ssd
            .access_sector(t[s], vpn, AccessKind::Read)
            .expect("stream");
    }
    let end = t.iter().max().copied().unwrap_or(Cycle(1));
    let secs = end.raw() as f64 / freq.hz();
    sectors as f64 * 128.0 / 1e9 / secs
}
