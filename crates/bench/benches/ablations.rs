//! Ablations from the paper's discussion (§VI) and design choices
//! DESIGN.md calls out:
//!
//! * **Media** — ZnG built on Z-NAND vs. TLC V-NAND (17×/6× slower
//!   read/program): the paper's premise that the *new* flash is what
//!   makes the architecture viable.
//! * **Wear levelling** — the helper thread's least-erased-first policy
//!   vs. FIFO recycling, measured by wear evenness under churn.
//! * **Lifetime** — projected Z-NAND lifetime from the measured erase
//!   rate (paper §VI: register merging keeps the device alive for
//!   years).

use zng::Table;
use zng_bench::{quick, report};
use zng_flash::{
    DegradingDie, FaultConfig, FlashDevice, FlashGeometry, FlashTiming, RegisterTopology,
    DISTURB_READS_PER_CYCLE,
};
use zng_ftl::{
    CheckpointConfig, HealthPolicy, PageMapFtl, RainConfig, RefreshPolicy, WearPolicy, WriteMode,
    ZngFtl,
};
use zng_types::{
    ids::{ChannelId, DieId},
    Cycle, Error, Freq,
};

fn main() {
    media_ablation();
    wear_ablation();
    redundancy_ablation();
    integrity_ablation();
    lifetime_ablation();
    recovery_ablation();
    health_ablation();
}

/// Streams a read-heavy page workload through a ZnG-style device built
/// on each medium and compares sustained latency.
fn media_ablation() {
    let mut t = Table::new(vec![
        "medium".into(),
        "read us".into(),
        "program us".into(),
        "stream time (ms)".into(),
        "vs Z-NAND".into(),
    ]);
    let mut results = Vec::new();
    for timing in [FlashTiming::znand(), FlashTiming::vnand_tlc()] {
        let freq = Freq::default();
        let geometry = FlashGeometry::tiny();
        let net = zng_flash::FlashNetwork::mesh(geometry.channels, 8.0, Cycle(2));
        let mut dev =
            FlashDevice::new(geometry, timing, freq, net, RegisterTopology::NiF).expect("device");
        let mut ftl = ZngFtl::new(&dev, 1, WriteMode::Buffered);
        // 64 concurrent reader chains over a page-sequential region.
        let streams = 64usize;
        let mut chains = vec![Cycle::ZERO; streams];
        let pages = if quick() { 2_000u64 } else { 8_000 };
        for i in 0..pages {
            let s = (i % streams as u64) as usize;
            let vpn = (s as u64) * 500 + i / streams as u64;
            chains[s] = ftl
                .read(chains[s], &mut dev, vpn, 4096)
                .expect("stream read");
        }
        let end = chains.iter().max().copied().unwrap_or(Cycle(1));
        results.push((timing, end));
    }
    let z_end = results[0].1;
    for (timing, end) in &results {
        t.row(vec![
            timing.name.into(),
            format!("{:.0}", timing.read.0 / 1_000.0),
            format!("{:.0}", timing.program.0 / 1_000.0),
            format!("{:.2}", end.raw() as f64 / 1.2e6),
            format!("{:.1}x", end.raw() as f64 / z_end.raw() as f64),
        ]);
    }
    assert!(
        results[1].1.raw() as f64 / z_end.raw() as f64 > 5.0,
        "V-NAND must be many times slower than Z-NAND on the read stream"
    );
    report(
        "ablation_media",
        "ZnG on Z-NAND vs TLC V-NAND",
        &t,
        "Z-NAND's 17x faster reads are what make direct GPU-flash access viable (paper SII-B)",
    );
}

/// Write churn under both recycling policies; compares wear evenness and
/// worst-block wear.
fn wear_ablation() {
    let mut t = Table::new(vec![
        "policy".into(),
        "GCs".into(),
        "total erases".into(),
        "worst block".into(),
        "evenness".into(),
        "projected lifetime (rel)".into(),
    ]);
    let mut worst = Vec::new();
    for (label, policy) in [
        ("least-erased (wear levelling)", WearPolicy::LeastErased),
        ("LIFO (none)", WearPolicy::Lifo),
    ] {
        // A deliberately tiny device so recycling cycles many times.
        let mut geometry = FlashGeometry::tiny();
        geometry.blocks_per_plane = 2;
        geometry.pages_per_block = 8;
        let mut dev = FlashDevice::zng_config(geometry, Freq::default(), RegisterTopology::NiF)
            .expect("device");
        let mut ftl = ZngFtl::with_wear_policy(&dev, 1, WriteMode::Direct, policy);
        let mut now = Cycle::ZERO;
        let writes = if quick() { 2_000u64 } else { 6_000 };
        // Skewed churn: one hot page plus a rotating cold set, so blocks
        // are reclaimed at different rates and the policies diverge.
        for i in 0..writes {
            let vpn = if i % 4 == 0 { (i / 4) % 24 } else { 0 };
            let r = ftl.write(now, &mut dev, vpn).expect("write");
            now = r.done.max(now + Cycle(1));
        }
        let e = dev.endurance();
        worst.push(e.max_block_erases);
        // Lifetime scales inversely with the worst block's wear rate.
        t.row(vec![
            label.into(),
            ftl.gcs().to_string(),
            e.total_erases.to_string(),
            e.max_block_erases.to_string(),
            format!("{:.2}", e.evenness()),
            format!("{:.2}", 1.0 / e.worst_wear_fraction().max(1e-12) / 1e5),
        ]);
    }
    assert!(
        worst[0] <= worst[1],
        "wear levelling must not worsen the worst block ({} vs {})",
        worst[0],
        worst[1]
    );
    report(
        "ablation_wear",
        "Wear-levelling policy under write churn",
        &t,
        "the helper thread's wear levelling spreads erases, extending Z-NAND lifetime (paper SVI)",
    );
}

/// Redundancy overhead: the same read stream with RAIN off, RAIN on
/// (healthy), and RAIN degraded by a dead die, plus the patrol
/// scrubber's media cost — the numbers behind EXPERIMENTS.md
/// "Redundancy & self-healing overhead".
fn redundancy_ablation() {
    let vpns = if quick() { 128u64 } else { 512 };

    // One sequential read chain over the footprint; the chained `now`
    // makes the end time the sum of every read's latency.
    let read_pass = |ftl: &mut ZngFtl, dev: &mut FlashDevice, start: Cycle| -> Cycle {
        let mut t = start;
        for vpn in 0..vpns {
            t = ftl.read(t, dev, vpn, 4096).expect("stream read");
        }
        t
    };
    let device = || {
        FlashDevice::zng_config(
            FlashGeometry::tiny(),
            Freq::default(),
            RegisterTopology::NiF,
        )
        .expect("device")
    };

    // Redundancy off: the baseline read stream.
    let mut dev0 = device();
    let mut off = ZngFtl::new(&dev0, 1, WriteMode::Direct);
    let t_off = read_pass(&mut off, &mut dev0, Cycle::ZERO);

    // RAIN on, healthy media: reads never touch parity.
    let mut dev = device();
    let mut rain = ZngFtl::new(&dev, 1, WriteMode::Direct);
    rain.set_redundancy(&dev, Some(RainConfig::default()));
    let t_healthy = read_pass(&mut rain, &mut dev, Cycle::ZERO);
    assert_eq!(
        t_healthy.raw(),
        t_off.raw(),
        "healthy RAIN reads must cost exactly the baseline"
    );

    // Kill one die and stream again: every page whose block sits on the
    // dead die is reconstructed from its surviving stripe members.
    dev.fail_die(ChannelId(1), DieId(0));
    let t0 = rain.fence_dead_die(t_healthy, &mut dev).expect("fence");
    let t_degraded = read_pass(&mut rain, &mut dev, t0);
    let c = rain.redundancy().expect("installed").counters();
    assert!(
        c.reconstructions > 0,
        "the dead die must force reconstructions"
    );
    let healthy_cycles = t_healthy.raw();
    let degraded_cycles = t_degraded.raw() - t0.raw();
    let extra_per_recon =
        (degraded_cycles.saturating_sub(healthy_cycles)) as f64 / c.reconstructions as f64;

    // Patrol scrub on healthy media (unpaced, so the horizon is the true
    // media time): cycles per page scanned.
    let mut dev2 = device();
    let mut scrubbed = ZngFtl::new(&dev2, 1, WriteMode::Direct);
    scrubbed.set_redundancy(&dev2, Some(RainConfig::default()));
    let t1 = read_pass(&mut scrubbed, &mut dev2, Cycle::ZERO);
    let steps = if quick() { 32 } else { 128 };
    let mut now = t1;
    let mut scrub_cycles = 0u64;
    for _ in 0..steps {
        let h = scrubbed.scrub_step(now, &mut dev2).expect("scrub step");
        scrub_cycles += h.raw() - now.raw();
        now = h + Cycle(1);
    }
    let scanned = scrubbed
        .redundancy()
        .expect("installed")
        .counters()
        .scrub_scanned;
    assert!(scanned > 0, "the patrol must scan live pages");

    let ms = |cycles: u64| cycles as f64 / 1.2e6;
    let mut t = Table::new(vec![
        "config".into(),
        "read stream (ms)".into(),
        "vs off".into(),
        "reconstructions".into(),
        "extra cyc/recon".into(),
    ]);
    t.row(vec![
        "redundancy off".into(),
        format!("{:.3}", ms(t_off.raw())),
        "1.00x".into(),
        "0".into(),
        "-".into(),
    ]);
    t.row(vec![
        "RAIN healthy".into(),
        format!("{:.3}", ms(t_healthy.raw())),
        format!("{:.2}x", t_healthy.raw() as f64 / t_off.raw() as f64),
        "0".into(),
        "-".into(),
    ]);
    t.row(vec![
        "RAIN degraded (1 die dead)".into(),
        format!("{:.3}", ms(degraded_cycles)),
        format!("{:.2}x", degraded_cycles as f64 / t_off.raw() as f64),
        c.reconstructions.to_string(),
        format!("{extra_per_recon:.0}"),
    ]);
    t.row(vec![
        format!("patrol scrub ({scanned} pages)"),
        format!("{:.3}", ms(scrub_cycles)),
        format!(
            "+{:.1}% of baseline",
            100.0 * scrub_cycles as f64 / t_off.raw() as f64
        ),
        "0".into(),
        format!("{:.0} cyc/page", scrub_cycles as f64 / scanned as f64),
    ]);
    report(
        "ablation_redundancy",
        "RAIN reconstruction & patrol-scrub overhead",
        &t,
        "device-level redundancy beneath the FTL: healthy reads free, degraded reads pay a \
         bounded stripe fan-out, scrub paced in the background (GNStor-style RAIN)",
    );
}

/// End-to-end integrity overhead: the same read stream unverified,
/// verified on clean media, and verified with silent corruption healed
/// through RAIN — the numbers behind EXPERIMENTS.md "End-to-end data
/// integrity overhead".
fn integrity_ablation() {
    let vpns = if quick() { 128u64 } else { 512 };

    let read_pass = |ftl: &mut ZngFtl, dev: &mut FlashDevice, start: Cycle| -> Cycle {
        let mut t = start;
        for vpn in 0..vpns {
            t = ftl.read(t, dev, vpn, 4096).expect("stream read");
        }
        t
    };
    let device = || {
        FlashDevice::zng_config(
            FlashGeometry::tiny(),
            Freq::default(),
            RegisterTopology::NiF,
        )
        .expect("device")
    };

    // Verification off: the baseline read stream.
    let mut dev0 = device();
    let mut off = ZngFtl::new(&dev0, 1, WriteMode::Direct);
    let t_off = read_pass(&mut off, &mut dev0, Cycle::ZERO);

    // Verification on, clean media: the OOB checksum rides the page the
    // read already sensed, so verified reads must cost the baseline.
    let mut dev1 = device();
    let mut clean = ZngFtl::new(&dev1, 1, WriteMode::Direct);
    clean.set_integrity(true);
    let t_clean = read_pass(&mut clean, &mut dev1, Cycle::ZERO);
    assert_eq!(
        t_clean.raw(),
        t_off.raw(),
        "verified reads on clean media must cost exactly the baseline"
    );

    // Verification on, RAIN on, and a slice of the footprint silently
    // corrupted: each hit pays one charged re-read plus the stripe
    // reconstruction, then heals in place (a second pass is clean).
    // The footprint is *written* first so every page belongs to a
    // stripe (preloaded pages have no parity to reconstruct from), and
    // the heal pass is measured against this device's own clean
    // verified pass.
    let mut dev2 = device();
    let mut healed = ZngFtl::new(&dev2, 1, WriteMode::Direct);
    healed.set_redundancy(&dev2, Some(RainConfig::default()));
    healed.set_integrity(true);
    let mut tw = Cycle::ZERO;
    for vpn in 0..vpns {
        tw = healed.write(tw, &mut dev2, vpn).expect("stream write").done;
    }
    let warm = read_pass(&mut healed, &mut dev2, tw);
    let warm_cycles = warm.raw() - tw.raw();
    // Consecutive vpns sit at distinct page offsets of one block, so
    // each corrupt page is the only bad member of its stripe (two in
    // one stripe is beyond single parity, by design); capping at one
    // block's worth of pages keeps the offsets distinct.
    let corrupted = (vpns / 16).min(16);
    for vpn in 0..corrupted {
        let addr = healed.locate(vpn).expect("mapped after the warm pass");
        dev2.mark_page_corrupt(addr).expect("mark corrupt");
    }
    let t_heal = read_pass(&mut healed, &mut dev2, warm);
    let c = healed.integrity_counters();
    assert_eq!(c.detected, corrupted, "every corrupt page must be caught");
    assert_eq!(c.reconstructed, corrupted, "every hit must heal");
    let heal_cycles = t_heal.raw() - warm.raw();
    let extra_per_heal = heal_cycles.saturating_sub(warm_cycles) as f64 / corrupted.max(1) as f64;
    let t_second = read_pass(&mut healed, &mut dev2, t_heal);
    assert_eq!(
        healed.integrity_counters().detected,
        corrupted,
        "healed pages must read clean on the second pass"
    );
    let second_cycles = t_second.raw() - t_heal.raw();

    let ms = |cycles: u64| cycles as f64 / 1.2e6;
    let mut t = Table::new(vec![
        "config".into(),
        "read stream (ms)".into(),
        "vs clean".into(),
        "detected".into(),
        "extra cyc/heal".into(),
    ]);
    t.row(vec![
        "integrity off".into(),
        format!("{:.3}", ms(t_off.raw())),
        "1.00x".into(),
        "0".into(),
        "-".into(),
    ]);
    t.row(vec![
        "verified, clean media".into(),
        format!("{:.3}", ms(t_clean.raw())),
        format!("{:.2}x", t_clean.raw() as f64 / t_off.raw() as f64),
        "0".into(),
        "-".into(),
    ]);
    t.row(vec![
        format!("verified, {corrupted} pages corrupt (RAIN heal)"),
        format!("{:.3}", ms(heal_cycles)),
        format!("{:.2}x", heal_cycles as f64 / warm_cycles as f64),
        c.detected.to_string(),
        format!("{extra_per_heal:.0}"),
    ]);
    t.row(vec![
        "second pass (healed in place)".into(),
        format!("{:.3}", ms(second_cycles)),
        format!("{:.2}x", second_cycles as f64 / warm_cycles as f64),
        "0".into(),
        "-".into(),
    ]);
    report(
        "ablation_integrity",
        "End-to-end verified-read & heal overhead",
        &t,
        "verified reads are free on clean media; a caught silent flip pays one re-read plus \
         the stripe reconstruction and then heals in place (end-to-end checksum discipline)",
    );
}

/// Lifetime management: hot/cold skewed churn with the endurance
/// subsystem off vs on (static wear levelling), plus sustained
/// end-of-life churn showing the wear-out cliff degrading into a
/// capacity step — the numbers behind EXPERIMENTS.md
/// "Endurance & lifetime management".
fn lifetime_ablation() {
    // A deliberately tiny device so recycling cycles many times.
    let geometry = || {
        let mut g = FlashGeometry::tiny();
        g.blocks_per_plane = 2;
        g.pages_per_block = 8;
        g
    };
    let writes = if quick() { 2_000u64 } else { 6_000 };

    // Hot/cold skew: half the device holds cold data written once and
    // folded into data blocks, then churn on a single hot group.
    // Without intervention the cold blocks never recycle and the wear
    // spread (max/mean erase fraction) grows.
    let churn = |endurance: bool| {
        let mut dev = FlashDevice::zng_config(geometry(), Freq::default(), RegisterTopology::NiF)
            .expect("device");
        let mut ftl = ZngFtl::new(&dev, 1, WriteMode::Direct);
        if endurance {
            dev.set_endurance_tracking(Some(DISTURB_READS_PER_CYCLE));
            ftl.set_endurance(Some(RefreshPolicy {
                disturb_threshold: 0,
                retention_threshold: 0,
                wear_spread: 1.5,
                pacing: None,
            }));
        }
        let mut now = Cycle::ZERO;
        for vbn in 1..=16u64 {
            for p in 0..8u64 {
                let r = ftl.write(now, &mut dev, vbn * 8 + p).expect("cold write");
                now = r.done.max(now + Cycle(1));
            }
            // Fold the group into its data block; a full log would
            // otherwise pin one block per cold group on this tiny device.
            let merged = ftl.gc_group(now, &mut dev, vbn).expect("cold merge").done;
            now = merged.max(now + Cycle(1));
        }
        for i in 0..writes {
            let r = ftl.write(now, &mut dev, i % 8).expect("hot write");
            now = r.done.max(now + Cycle(1));
            if endurance && i % 16 == 0 {
                let h = ftl.refresh_step(now, &mut dev).expect("refresh step");
                now = h.max(now + Cycle(1));
            }
        }
        let c = ftl.endurance_counters().unwrap_or_default();
        (dev.endurance(), c)
    };
    let (rep_off, _) = churn(false);
    let (rep_on, c_on) = churn(true);
    assert!(
        c_on.level_migrations > 0,
        "the skew must trip the static leveler"
    );
    assert!(
        rep_on.wear_spread() < rep_off.wear_spread(),
        "static levelling must reduce the wear spread ({:.2} vs {:.2})",
        rep_on.wear_spread(),
        rep_off.wear_spread()
    );

    // End of life: accelerated wear faults until the spare pool runs
    // dry. With endurance on, the hard DeviceWornOut cliff becomes a
    // CapacityDegraded refusal and already-acked data stays readable.
    let mut dev = FlashDevice::zng_config(geometry(), Freq::default(), RegisterTopology::NiF)
        .expect("device");
    dev.set_fault_config(&FaultConfig::end_of_life());
    let mut ftl = ZngFtl::new(&dev, 1, WriteMode::Direct);
    ftl.set_endurance(Some(RefreshPolicy {
        disturb_threshold: 0,
        retention_threshold: 0,
        wear_spread: 0.0,
        pacing: None,
    }));
    let mut now = Cycle::ZERO;
    let mut remaining = None;
    for i in 0..400_000u64 {
        match ftl.write(now, &mut dev, i % 16) {
            Ok(r) => now = r.done.max(now + Cycle(1)),
            Err(Error::CapacityDegraded { remaining_pages }) => {
                remaining = Some(remaining_pages);
                break;
            }
            Err(Error::UncorrectableRead { .. }) => {}
            Err(e) => panic!("endurance mode must degrade gracefully, got {e}"),
        }
    }
    let remaining = remaining.expect("sustained EOL churn must exhaust the pool");
    let c_eol = ftl.endurance_counters().expect("endurance installed");
    let rep_eol = dev.endurance();

    let mut t = Table::new(vec![
        "config".into(),
        "wear spread".into(),
        "worst wear".into(),
        "refreshes".into(),
        "level migs".into(),
        "capacity steps".into(),
    ]);
    t.row(vec![
        "spread reduction".into(),
        format!("{:.2}", rep_off.wear_spread() / rep_on.wear_spread()),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.row(vec![
        "endurance off".into(),
        format!("{:.2}", rep_off.wear_spread()),
        format!("{:.4}", rep_off.worst_wear_fraction()),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);
    t.row(vec![
        "refresh + static levelling".into(),
        format!("{:.2}", rep_on.wear_spread()),
        format!("{:.4}", rep_on.worst_wear_fraction()),
        c_on.refreshes.to_string(),
        c_on.level_migrations.to_string(),
        c_on.capacity_steps.to_string(),
    ]);
    t.row(vec![
        format!("end of life ({remaining} pages left)"),
        format!("{:.2}", rep_eol.wear_spread()),
        format!("{:.4}", rep_eol.worst_wear_fraction()),
        c_eol.refreshes.to_string(),
        c_eol.level_migrations.to_string(),
        c_eol.capacity_steps.to_string(),
    ]);
    assert!(c_eol.capacity_steps >= 1, "the cliff must become a step");
    report(
        "ablation_lifetime",
        "Endurance management: levelling, refresh & graceful EOL",
        &t,
        "static levelling pulls cold data into worn blocks to flatten the wear spread, and \
         the end-of-life cliff becomes a graceful capacity step (paper SVI lifetime)",
    );
}

/// Crash-recovery time: the full-device OOB scan vs the checkpoint +
/// journal fast path, at increasing device fill — the numbers behind
/// DESIGN.md §9 "Bounded-time recovery". The full scan grows linearly
/// with the busiest plane's programmed pages; the fast path loads the
/// checkpoint (channel-parallel) and re-scans only the handful of blocks
/// touched since, so the gap widens with fill.
fn recovery_ablation() {
    let mut t = Table::new(vec![
        "fill".into(),
        "full scan cycles".into(),
        "fast path cycles".into(),
        "speedup".into(),
        "blocks rescanned".into(),
        "journal replayed".into(),
    ]);
    let fills: &[f64] = if quick() {
        &[0.3, 0.85]
    } else {
        &[0.3, 0.6, 0.85]
    };
    // A tall device so the scan has something to be linear in.
    let mut geometry = FlashGeometry::tiny();
    geometry.blocks_per_plane = 2_048;
    let capacity = geometry.total_blocks() as u64 * geometry.pages_per_block as u64;
    let mut high_fill_speedup = 0.0;
    let mut rows = Vec::new();
    for &fill in fills {
        let mut dev = FlashDevice::zng_config(geometry, Freq::default(), RegisterTopology::Private)
            .expect("device");
        let mut ftl = PageMapFtl::new(&dev);
        ftl.set_checkpointing(Some(CheckpointConfig {
            every_ops: 1,
            journal_cap: 0,
            pacing: None,
        }));
        // Sequential fill to the target level, then checkpoint, then a
        // short tail of post-checkpoint writes the journal must cover.
        let pages = (capacity as f64 * fill) as u64;
        let mut now = Cycle::ZERO;
        for lpn in 0..pages {
            now = ftl.write_page(now, &mut dev, lpn).expect("fill write");
        }
        now = ftl.checkpoint_step(now, &mut dev);
        for lpn in 0..64 {
            now = ftl.write_page(now, &mut dev, lpn).expect("tail write");
        }
        // Cut power on two identical twins: one recovers through the
        // checkpoint, the other is stripped and must scan everything.
        dev.power_loss(now);
        let mut dev_full = dev.clone();
        let mut ftl_full = ftl.clone();
        ftl_full.set_checkpointing(None);
        let fast = ftl.recover(now, &mut dev).expect("fast recovery");
        assert!(fast.fast_path, "the fast path must engage: {fast:?}");
        let full = ftl_full.recover(now, &mut dev_full).expect("full recovery");
        assert!(!full.fast_path && !full.fallback);
        let speedup = full.scan_cycles.raw() as f64 / fast.scan_cycles.raw().max(1) as f64;
        high_fill_speedup = speedup;
        rows.push(vec![
            format!("{:.0}%", fill * 100.0),
            full.scan_cycles.raw().to_string(),
            fast.scan_cycles.raw().to_string(),
            format!("{speedup:.1}x"),
            fast.blocks_rescanned.to_string(),
            fast.journal_replayed.to_string(),
        ]);
    }
    assert!(
        high_fill_speedup >= 5.0,
        "at high fill the fast path must beat the full scan by >= 5x, got {high_fill_speedup:.1}x"
    );
    // Leading summary row so the exported headline is the fast-path
    // speedup ratio at the highest fill, not a raw cycle count.
    let high_fill = fills.last().copied().unwrap_or(0.0);
    t.row(vec![
        format!("fast-path speedup ({:.0}% fill)", high_fill * 100.0),
        format!("{high_fill_speedup:.1}"),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    for r in rows {
        t.row(r);
    }
    report(
        "ablation_recovery",
        "Crash recovery: full OOB scan vs checkpoint fast path",
        &t,
        "checkpoint + journal bound recovery to the touched set; the full scan grows with \
         device fill while the fast path stays near-constant (DESIGN.md S9)",
    );
}

/// Predictive health: the same slowly-dying die under the same churn,
/// with the monitor off vs on — the numbers behind DESIGN.md §10. With
/// the monitor off, every post-death read of data stranded on the die
/// pays a dead-die sense plus a RAIN stripe reconstruction; with
/// quarantine and pre-emptive evacuation on, the data has already moved
/// to live silicon by the time the die dies.
fn health_ablation() {
    const DEATH: u64 = 80_000_000;
    let footprint = if quick() { 32u64 } else { 48 };
    let rounds = if quick() { 280u32 } else { 320 };
    let working: Vec<u64> = (0..footprint).collect();
    // Group-disjoint filler: its programs keep the plane registers
    // churning (a register-resident page is read at the pins and never
    // senses the array) without ever merging the working set's groups.
    let filler: Vec<u64> = (512..520).collect();

    // Dry run on a healthy twin to find the die the allocator loads
    // most — the RAIN layout shifts placement, so a hard-coded victim
    // could end up holding only parity.
    let (victim_ch, victim_die) = {
        let mut dev = FlashDevice::zng_config(
            FlashGeometry::tiny(),
            Freq::default(),
            RegisterTopology::NiF,
        )
        .expect("device");
        let mut ftl = ZngFtl::new(&dev, 2, WriteMode::Direct);
        ftl.set_redundancy(&dev, Some(RainConfig::default()));
        let mut t = Cycle::ZERO;
        let mut per_die = std::collections::BTreeMap::new();
        for &lpn in &working {
            t = ftl.write(t, &mut dev, lpn).expect("dry-run write").done;
        }
        for &lpn in &working {
            if let Some(a) = ftl.locate(lpn) {
                let key = (a.block.channel.index() as u16, a.block.die.index() as u16);
                *per_die.entry(key).or_insert(0u32) += 1;
            }
        }
        per_die
            .into_iter()
            .max_by_key(|&(_, n)| n)
            .map_or((0, 0), |(k, _)| k)
    };

    let run = |health: bool| {
        let mut dev = FlashDevice::zng_config(
            FlashGeometry::tiny(),
            Freq::default(),
            RegisterTopology::NiF,
        )
        .expect("device");
        dev.set_fault_config(&FaultConfig::none().with_degrading(DegradingDie {
            channel: victim_ch,
            die: victim_die,
            onset: 0,
            death: DEATH,
        }));
        let mut ftl = ZngFtl::new(&dev, 2, WriteMode::Direct);
        ftl.set_redundancy(&dev, Some(RainConfig::default()));
        if health {
            ftl.set_health(Some(HealthPolicy {
                window: 16,
                suspect_threshold: 0.02,
                evacuate: true,
                pacing: None,
            }));
        }
        let mut t = Cycle::ZERO;
        let step = |ftl: &mut ZngFtl, dev: &mut FlashDevice, t: Cycle, lpn, write: bool| {
            let r = if write {
                ftl.write(t, dev, lpn).map(|r| r.done)
            } else {
                ftl.read(t, dev, lpn, 4096)
            };
            match r {
                Ok(done) => done,
                // The dying die's own media errors are the point of the
                // exercise; anything else is a harness bug.
                Err(Error::UncorrectableRead { .. } | Error::FlashProtocol { .. }) => t,
                Err(e) => panic!("churn {} failed: {e}", if write { "write" } else { "read" }),
            }
        };
        for &lpn in &working {
            t = step(&mut ftl, &mut dev, t, lpn, true);
        }
        // Steady churn with a clock floor per round, so the run rides
        // the die's whole decline and keeps reading well past its death.
        for _ in 0..rounds {
            for &lpn in &filler {
                t = step(&mut ftl, &mut dev, t, lpn, true);
            }
            for &lpn in &working {
                t = step(&mut ftl, &mut dev, t, lpn, false);
            }
            if health {
                t = ftl.health_step(t, &mut dev).expect("health step");
            }
            t += Cycle(DEATH / 256);
        }
        let recon = ftl
            .redundancy()
            .expect("RAIN installed")
            .counters()
            .reconstructions;
        (
            dev.dead_die_reads(),
            recon,
            ftl.health_counters().unwrap_or_default(),
        )
    };
    let (off_dead, off_recon, _) = run(false);
    let (on_dead, on_recon, c_on) = run(true);

    assert!(
        off_dead > 0 && off_recon > 0,
        "without the monitor the dead die must be read and reconstructed \
         ({off_dead} dead-die reads, {off_recon} reconstructions)"
    );
    assert!(
        c_on.suspects_flagged >= 1 && c_on.evacuations_completed >= 1,
        "the monitor must flag and evacuate the dying die: {c_on:?}"
    );
    assert!(
        2 * on_dead <= off_dead,
        "health must cut dead-die reads at least 2x ({on_dead} vs {off_dead})"
    );
    assert!(
        2 * on_recon <= off_recon,
        "health must cut RAIN reconstructions at least 2x ({on_recon} vs {off_recon})"
    );

    let mut t = Table::new(vec![
        "config".into(),
        "dead-die reads".into(),
        "RAIN reconstructions".into(),
        "suspects".into(),
        "pages evacuated".into(),
        "evacuations done".into(),
    ]);
    t.row(vec![
        "dead-die read reduction".into(),
        format!("{:.1}", off_dead as f64 / on_dead.max(1) as f64),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.row(vec![
        "health off".into(),
        off_dead.to_string(),
        off_recon.to_string(),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);
    t.row(vec![
        "health on (quarantine + evacuate)".into(),
        on_dead.to_string(),
        on_recon.to_string(),
        c_on.suspects_flagged.to_string(),
        c_on.pages_evacuated.to_string(),
        c_on.evacuations_completed.to_string(),
    ]);
    report(
        "ablation_health",
        "Predictive health: dead-die traffic with and without evacuation",
        &t,
        "the monitor flags the degrading die early and evacuates it before death, so reads \
         never touch dead silicon or pay the stripe reconstruction fan-out (DESIGN.md S10)",
    );
}
