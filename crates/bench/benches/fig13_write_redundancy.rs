//! Fig. 13: write redundancy in the flash arrays under the write-path
//! configurations.
//!
//! Paper: the baseline (private per-plane registers) averages 51 array
//! programs per page; grouping the registers with NiF ("network") cuts
//! 46 %; redirecting overflow into pinned L2 brings it to ~1.2.
//!
//! The register files are deliberately small here (the paper's thrashing
//! regime) so the three designs separate.

use zng::{mixes, Experiment, PlatformKind, Table};
use zng_bench::{params_standard, quick, report};

fn main() {
    let params = params_standard();
    let all_mixes = mixes(&params).expect("mixes");
    let selected = if quick() {
        &all_mixes[..2]
    } else {
        &all_mixes[..4]
    };

    // All three buffer writes in registers (the paper's Fig. 13 is about
    // the register *organisation*): baseline keeps each plane's registers
    // private; "network" groups them via NiF; "redirection" adds the
    // pinned-L2 overflow path.
    use zng::RegisterTopology;
    let configs: [(&str, PlatformKind, RegisterTopology); 3] = [
        (
            "baseline (private regs)",
            PlatformKind::ZngWropt,
            RegisterTopology::Private,
        ),
        (
            "network (NiF grouped)",
            PlatformKind::ZngWropt,
            RegisterTopology::NiF,
        ),
        (
            "redirection (pinned L2)",
            PlatformKind::Zng,
            RegisterTopology::NiF,
        ),
    ];

    let mut headers = vec!["config".into()];
    headers.extend(selected.iter().map(|m| m.name.clone()));
    headers.push("mean programs/page".into());
    let mut t = Table::new(headers);

    let mut means = Vec::new();
    for (label, platform, topology) in configs.iter() {
        let mut cells = vec![label.to_string()];
        let mut sum = 0.0;
        for mix in selected {
            let mut exp = Experiment::standard().with_params(params);
            // Thrashing regime: few registers per plane.
            exp.config_mut().flash.registers_per_plane = 2;
            exp.config_mut().register_topology = *topology;
            let r = exp.run_mix(*platform, mix).expect("run");
            sum += r.flash_programs_per_page;
            cells.push(format!("{:.1}", r.flash_programs_per_page));
        }
        let mean = sum / selected.len() as f64;
        means.push(mean);
        cells.push(format!("{mean:.1}"));
        t.row(cells);
    }

    // The paper's separation only emerges at full trace volume; quick
    // mode (ZNG_QUICK=1) keeps the table but skips the shape checks.
    if !quick() {
        assert!(
            means[1] < means[0],
            "register grouping must cut write redundancy ({} vs {})",
            means[1],
            means[0]
        );
        assert!(
            means[2] <= means[1] * 1.2,
            "redirection must not increase redundancy materially ({} vs {})",
            means[2],
            means[1]
        );
    }

    report(
        "fig13",
        "Write redundancy in flash arrays (mean programs per page)",
        &t,
        "baseline 51 -> network -46% -> redirection ~1.2",
    );
}
