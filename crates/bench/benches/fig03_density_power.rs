//! Fig. 3a/3b: memory-package density and power-efficiency comparison
//! (datasheet-level device data; see DESIGN.md §7).

use zng::Table;
use zng_bench::report;
use zng_mem::{DeviceClass, DeviceInfo};

fn main() {
    let mut t = Table::new(vec![
        "device".into(),
        "GB/package (3a)".into(),
        "W per GB (3b)".into(),
        "density vs GDDR5".into(),
    ]);
    for class in DeviceClass::ALL {
        let d = DeviceInfo::of(class);
        t.row(vec![
            class.to_string(),
            format!("{:.0}", d.density_gb),
            format!("{:.2}", d.watt_per_gb),
            format!("{:.0}x", d.density_vs_gddr5()),
        ]);
    }

    let z = DeviceInfo::of(DeviceClass::ZNand);
    assert!(
        (z.density_vs_gddr5() - 64.0).abs() < 1e-9,
        "64x density claim"
    );
    let worst_dram = DeviceInfo::of(DeviceClass::Gddr5).watt_per_gb;
    assert!(z.watt_per_gb < worst_dram / 10.0, "Z-NAND power efficiency");

    report(
        "fig03",
        "Density and power consumption analysis",
        &t,
        "Z-NAND 64x denser than GPU DRAM and lowest W/GB; GDDR5 worst on both axes",
    );
}
