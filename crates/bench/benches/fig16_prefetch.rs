//! Fig. 16a: sensitivity of the access monitor's waste-ratio thresholds,
//! and Fig. 16b: the prefetch-policy comparison.
//!
//! Paper: the best thresholds are high 0.3 / low 0.05; 1KBpref and
//! 4KBpref beat nopref by 22 % / 32 %; predict-4KB beats blind 4KB on
//! random-heavy apps; dyn-pref adds up to 21 % over predict-4KB.

use zng::{Experiment, PlatformKind, PrefetchPolicy, Table};
use zng_bench::{params_light, quick, report};

fn main() {
    let params = params_light();

    // ---- Fig. 16a: threshold sweep ----
    let highs: &[f64] = if quick() { &[0.3] } else { &[0.2, 0.3, 0.5] };
    let lows: &[f64] = if quick() { &[0.05] } else { &[0.02, 0.05, 0.1] };
    let mut t = Table::new(vec![
        "high".into(),
        "low".into(),
        "IPC".into(),
        "L2 hit".into(),
    ]);
    let mut best = (0.0f64, 0.0, 0.0);
    for &hi in highs {
        for &lo in lows {
            let mut exp = Experiment::standard().with_params(params);
            exp.config_mut().monitor_thresholds = (hi, lo);
            let r = exp.run(PlatformKind::Zng, &["betw", "back"]).expect("run");
            if r.ipc > best.0 {
                best = (r.ipc, hi, lo);
            }
            t.row(vec![
                format!("{hi}"),
                format!("{lo}"),
                format!("{:.4}", r.ipc),
                format!("{:.2}", r.l2_hit_rate),
            ]);
        }
    }
    t.row(vec![
        "best".into(),
        format!("{}/{}", best.1, best.2),
        format!("{:.4}", best.0),
        String::new(),
    ]);
    report(
        "fig16a",
        "Access-monitor threshold sweep",
        &t,
        "best performance at high 0.3 / low 0.05 (the paper's defaults)",
    );

    // ---- Fig. 16b: policy comparison ----
    let policies = [
        ("nopref", PrefetchPolicy::None),
        ("1KBpref", PrefetchPolicy::Fixed(1024)),
        ("4KBpref", PrefetchPolicy::Fixed(4096)),
        ("predict-4KB", PrefetchPolicy::Predicted4K),
        ("dyn-pref", PrefetchPolicy::Dynamic),
    ];
    let mut t = Table::new(vec![
        "policy".into(),
        "IPC".into(),
        "vs nopref".into(),
        "L2 hit".into(),
        "reads/page".into(),
    ]);
    let mut ipcs = Vec::new();
    for (label, policy) in policies.iter() {
        let mut exp = Experiment::standard().with_params(params);
        exp.config_mut().prefetch_policy = *policy;
        let r = exp.run(PlatformKind::Zng, &["betw", "back"]).expect("run");
        ipcs.push(r.ipc);
        t.row(vec![
            label.to_string(),
            format!("{:.4}", r.ipc),
            format!("{:.2}x", r.ipc / ipcs[0]),
            format!("{:.2}", r.l2_hit_rate),
            format!("{:.1}", r.flash_reads_per_page),
        ]);
    }
    assert!(ipcs[1] > ipcs[0], "1KB prefetch must beat nopref");
    assert!(ipcs[4] > ipcs[0], "dyn-pref must beat nopref");
    report(
        "fig16b",
        "Read-prefetch policies",
        &t,
        "1KB +22%, 4KB +32% over nopref; dyn-pref up to +21% over predict-4KB",
    );
}
