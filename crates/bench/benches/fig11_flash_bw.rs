//! Fig. 11: bandwidth of the Z-NAND flash arrays per platform.
//!
//! Paper: HybridGPU averages 4.2 GB/s (channel + buffer bound); ZnG-rdopt
//! reaches 2.9x HybridGPU; wropt exceeds rdopt by 137%; full ZnG adds
//! another 167% and approaches 1.9x Optane's 39 GB/s ceiling.

use zng::{geomean, mixes, Experiment, PlatformKind, Table};
use zng_bench::{params_standard, quick, report};

fn main() {
    let params = params_standard();
    let exp_proto = Experiment::standard().with_params(params);
    let all_mixes = mixes(&params).expect("mixes");
    let selected = if quick() {
        &all_mixes[..2]
    } else {
        &all_mixes[..]
    };

    let platforms = [
        PlatformKind::HybridGpu,
        PlatformKind::ZngBase,
        PlatformKind::ZngRdopt,
        PlatformKind::ZngWropt,
        PlatformKind::Zng,
    ];

    let mut headers = vec!["platform".into()];
    headers.extend(selected.iter().map(|m| m.name.clone()));
    headers.push("gmean GB/s".into());
    let mut t = Table::new(headers);

    let mut means = Vec::new();
    for &p in &platforms {
        let mut cells = vec![p.to_string()];
        let mut vals = Vec::new();
        for mix in selected {
            let mut exp = exp_proto.clone();
            let r = exp.run_mix(p, mix).expect("run");
            vals.push(r.flash_array_gbps.max(1e-9));
            cells.push(format!("{:.2}", r.flash_array_gbps));
        }
        let gm = geomean(&vals);
        means.push(gm);
        cells.push(format!("{gm:.2}"));
        t.row(cells);
    }

    // Shape: full ZnG and wropt must far exceed HybridGPU's array usage.
    let hybrid = means[0];
    let zng = means[4];
    assert!(
        zng > hybrid * 2.0,
        "ZnG array bandwidth must be multiples of HybridGPU's ({zng:.1} vs {hybrid:.1})"
    );

    report(
        "fig11",
        "Bandwidth of Z-NAND flash arrays (GB/s)",
        &t,
        "HybridGPU ~4.2 GB/s; ZnG-wropt/ZnG tens of GB/s, approaching 1.9x Optane's 39 GB/s",
    );
}
