//! Property tests for address arithmetic.

use proptest::prelude::*;
use zng_types::{size::CACHE_LINE, VirtAddr};

proptest! {
    #[test]
    fn sector_base_is_aligned_and_close(raw in 0u64..u64::MAX / 2) {
        let a = VirtAddr(raw);
        let base = a.sector_base();
        prop_assert_eq!(base.raw() % CACHE_LINE as u64, 0);
        prop_assert!(base.raw() <= raw);
        prop_assert!(raw - base.raw() < CACHE_LINE as u64);
    }

    #[test]
    fn page_math_consistent(raw in 0u64..u64::MAX / 2, shift in 7u32..16) {
        let page = 1u64 << shift;
        let a = VirtAddr(raw);
        prop_assert_eq!(a.page_number(page) * page + a.page_offset(page), raw);
        prop_assert!(a.page_offset(page) < page);
    }
}
