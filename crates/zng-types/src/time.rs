//! Simulation time: cycles, nanoseconds and clock frequencies.
//!
//! The simulator's master clock counts GPU core cycles. Device timing
//! parameters are naturally expressed in nanoseconds or microseconds and
//! converted once, at configuration time, through [`Freq`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, measured in GPU core cycles.
///
/// `Cycle` is an ordinary unsigned counter with saturating-free arithmetic;
/// overflowing a `u64` cycle counter is unreachable in practice
/// (2^64 cycles ≈ 487 years at 1.2 GHz).
///
/// # Examples
///
/// ```
/// use zng_types::Cycle;
/// let start = Cycle(1_000);
/// let latency = Cycle(3_600);
/// assert_eq!(start + latency, Cycle(4_600));
/// assert_eq!((start + latency) - start, latency);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);
    /// The far future; used as the initial "next event" sentinel.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Returns the raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Difference `self - earlier`, saturating at zero.
    ///
    /// Useful for "time remaining" computations where a stale timestamp
    /// must not underflow.
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(earlier.0))
    }

    /// Converts this span to nanoseconds under clock `freq`.
    #[inline]
    pub fn to_nanos(self, freq: Freq) -> Nanos {
        Nanos(self.0 as f64 * 1e9 / freq.hz())
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn mul(self, rhs: u64) -> Cycle {
        Cycle(self.0 * rhs)
    }
}

impl Div<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn div(self, rhs: u64) -> Cycle {
        Cycle(self.0 / rhs)
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

/// A duration in nanoseconds (fractional, for sub-cycle device timings).
///
/// # Examples
///
/// ```
/// use zng_types::{Freq, Nanos};
/// let gpu = Freq::ghz(1.2);
/// // A 3 µs Z-NAND read is 3600 GPU cycles.
/// assert_eq!(Nanos(3_000.0).to_cycles(gpu).raw(), 3_600);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
pub struct Nanos(pub f64);

impl Nanos {
    /// Constructs from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Nanos {
        Nanos(us * 1_000.0)
    }

    /// Converts to whole cycles under clock `freq`, rounding up so that a
    /// non-zero duration never becomes a free (0-cycle) operation.
    #[inline]
    pub fn to_cycles(self, freq: Freq) -> Cycle {
        Cycle((self.0 * freq.hz() / 1e9).ceil() as u64)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl Mul<f64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: f64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}ns", self.0)
    }
}

/// A clock frequency.
///
/// # Examples
///
/// ```
/// use zng_types::Freq;
/// let onfi = Freq::mhz(800.0);
/// assert_eq!(onfi.hz(), 8e8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Freq(f64);

impl Freq {
    /// Frequency in hertz. Panics if non-positive.
    pub fn hz_new(hz: f64) -> Freq {
        assert!(hz > 0.0, "frequency must be positive, got {hz}");
        Freq(hz)
    }

    /// Frequency in megahertz.
    pub fn mhz(mhz: f64) -> Freq {
        Freq::hz_new(mhz * 1e6)
    }

    /// Frequency in gigahertz.
    pub fn ghz(ghz: f64) -> Freq {
        Freq::hz_new(ghz * 1e9)
    }

    /// Returns the frequency in hertz.
    #[inline]
    pub fn hz(self) -> f64 {
        self.0
    }

    /// The period of one clock tick.
    #[inline]
    pub fn period(self) -> Nanos {
        Nanos(1e9 / self.0)
    }
}

impl Default for Freq {
    /// The GPU core clock from Table I (1.2 GHz).
    fn default() -> Freq {
        Freq::ghz(1.2)
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2}GHz", self.0 / 1e9)
        } else {
            write!(f, "{:.0}MHz", self.0 / 1e6)
        }
    }
}

/// The default GPU core clock (Table I: 1.2 GHz).
pub const GPU_FREQ_GHZ: f64 = 1.2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle(10);
        let b = Cycle(4);
        assert_eq!(a + b, Cycle(14));
        assert_eq!(a - b, Cycle(6));
        assert_eq!(a * 3, Cycle(30));
        assert_eq!(a / 2, Cycle(5));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn cycle_saturating_since() {
        assert_eq!(Cycle(5).saturating_since(Cycle(10)), Cycle::ZERO);
        assert_eq!(Cycle(10).saturating_since(Cycle(4)), Cycle(6));
    }

    #[test]
    fn cycle_sum() {
        let total: Cycle = [Cycle(1), Cycle(2), Cycle(3)].into_iter().sum();
        assert_eq!(total, Cycle(6));
    }

    #[test]
    fn nanos_to_cycles_rounds_up() {
        let f = Freq::ghz(1.2);
        // 1 ns at 1.2 GHz is 1.2 cycles -> must round to 2.
        assert_eq!(Nanos(1.0).to_cycles(f), Cycle(2));
        // Zero stays zero.
        assert_eq!(Nanos(0.0).to_cycles(f), Cycle(0));
    }

    #[test]
    fn znand_read_latency_in_cycles() {
        // Paper: 3 us read at 1.2 GHz core clock = 3600 cycles.
        let f = Freq::default();
        assert_eq!(Nanos::from_micros(3.0).to_cycles(f), Cycle(3_600));
        // 100 us program = 120_000 cycles.
        assert_eq!(Nanos::from_micros(100.0).to_cycles(f), Cycle(120_000));
    }

    #[test]
    fn roundtrip_cycles_nanos() {
        let f = Freq::ghz(1.0);
        let c = Cycle(1_000);
        let ns = c.to_nanos(f);
        assert!((ns.0 - 1_000.0).abs() < 1e-9);
        assert_eq!(ns.to_cycles(f), c);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_freq_rejected() {
        let _ = Freq::hz_new(0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cycle(7).to_string(), "7cy");
        assert_eq!(Freq::ghz(1.2).to_string(), "1.20GHz");
        assert_eq!(Freq::mhz(800.0).to_string(), "800MHz");
        assert_eq!(Nanos(3.25).to_string(), "3.2ns");
    }
}
