//! Address-space newtypes.
//!
//! A request travels through three address spaces (paper §IV-A):
//!
//! * [`VirtAddr`] — per-application virtual address.
//! * [`LogicalAddr`] — global memory (logical) address after the MMU page
//!   table; caches are indexed by this (or, in ZnG, directly by the flash
//!   physical address).
//! * [`FlashAddr`] / [`BlockAddr`] — Z-NAND physical location.
//!
//! Block-granular numbers mirror the DBMT entry fields: [`Vbn`] (virtual
//! block number), [`Lbn`] (logical block number), [`Pdbn`] (physical data
//! block number) and [`Plbn`] (physical log block number).

use std::fmt;

use crate::ids::{ChannelId, DieId, PlaneId};
use crate::size::CACHE_LINE;

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw address value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The page number containing this address, for pages of
            /// `page_size` bytes.
            #[inline]
            pub const fn page_number(self, page_size: u64) -> u64 {
                self.0 / page_size
            }

            /// The byte offset of this address within its page.
            #[inline]
            pub const fn page_offset(self, page_size: u64) -> u64 {
                self.0 % page_size
            }

            /// The 128 B sector number containing this address.
            #[inline]
            pub const fn sector_number(self) -> u64 {
                self.0 / CACHE_LINE as u64
            }

            /// This address aligned down to its 128 B sector base.
            #[inline]
            pub const fn sector_base(self) -> $name {
                $name(self.0 - self.0 % CACHE_LINE as u64)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> $name {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:#x})", stringify!($name), self.0)
            }
        }
    };
}

addr_newtype!(
    /// A virtual address in an application's address space.
    VirtAddr
);
addr_newtype!(
    /// A logical (global-memory) address produced by the MMU page table.
    LogicalAddr
);

macro_rules! block_number_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw block number.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> $name {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

block_number_newtype!(
    /// Virtual block number: the block-granular index of a data block in an
    /// application's virtual address space (a DBMT key).
    Vbn
);
block_number_newtype!(
    /// Logical block number: global-memory block index (a DBMT field).
    Lbn
);
block_number_newtype!(
    /// Physical data block number: the Z-NAND block holding the read-only
    /// sequential pages of a data block.
    Pdbn
);
block_number_newtype!(
    /// Physical log block number: the over-provisioned Z-NAND block holding
    /// logged (written) pages, remapped by the row-decoder LPMT.
    Plbn
);

/// The physical location of a Z-NAND flash *block*.
///
/// # Examples
///
/// ```
/// use zng_types::{BlockAddr, ids::{ChannelId, DieId, PlaneId}};
/// let b = BlockAddr::new(ChannelId(3), DieId(1), PlaneId(7), 42);
/// assert_eq!(b.block, 42);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr {
    /// The flash channel (one package per channel in Table I).
    pub channel: ChannelId,
    /// The die within the package.
    pub die: DieId,
    /// The plane within the die.
    pub plane: PlaneId,
    /// The block index within the plane.
    pub block: u32,
}

impl BlockAddr {
    /// Creates a block address from its coordinates.
    pub const fn new(channel: ChannelId, die: DieId, plane: PlaneId, block: u32) -> BlockAddr {
        BlockAddr {
            channel,
            die,
            plane,
            block,
        }
    }

    /// The page address `page` within this block.
    pub const fn page(self, page: u32) -> FlashAddr {
        FlashAddr { block: self, page }
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/d{}/p{}/b{}",
            self.channel.0, self.die.0, self.plane.0, self.block
        )
    }
}

/// The physical location of a Z-NAND flash *page*.
///
/// # Examples
///
/// ```
/// use zng_types::{BlockAddr, FlashAddr, ids::{ChannelId, DieId, PlaneId}};
/// let block = BlockAddr::new(ChannelId(0), DieId(0), PlaneId(1), 9);
/// let page: FlashAddr = block.page(17);
/// assert_eq!(page.block.plane, PlaneId(1));
/// assert_eq!(page.page, 17);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlashAddr {
    /// The containing block.
    pub block: BlockAddr,
    /// The page index within the block.
    pub page: u32,
}

impl FlashAddr {
    /// Creates a page address from block coordinates and a page index.
    pub const fn new(block: BlockAddr, page: u32) -> FlashAddr {
        FlashAddr { block, page }
    }
}

impl fmt::Display for FlashAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/pg{}", self.block, self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_page_math() {
        let a = VirtAddr(4096 * 3 + 130);
        assert_eq!(a.page_number(4096), 3);
        assert_eq!(a.page_offset(4096), 130);
        assert_eq!(a.sector_number(), (4096 * 3 + 130) / 128);
        assert_eq!(a.sector_base(), VirtAddr(4096 * 3 + 128));
    }

    #[test]
    fn sector_base_is_aligned() {
        for raw in [0u64, 1, 127, 128, 129, 4095, 4096] {
            let base = LogicalAddr(raw).sector_base();
            assert_eq!(base.raw() % 128, 0);
            assert!(base.raw() <= raw);
            assert!(raw - base.raw() < 128);
        }
    }

    #[test]
    fn block_addr_ordering_and_page() {
        let a = BlockAddr::new(ChannelId(0), DieId(0), PlaneId(0), 1);
        let b = BlockAddr::new(ChannelId(0), DieId(0), PlaneId(0), 2);
        assert!(a < b);
        let p = a.page(5);
        assert_eq!(p, FlashAddr::new(a, 5));
    }

    #[test]
    fn displays_are_informative() {
        let b = BlockAddr::new(ChannelId(2), DieId(3), PlaneId(4), 10);
        assert_eq!(b.to_string(), "ch2/d3/p4/b10");
        assert_eq!(b.page(7).to_string(), "ch2/d3/p4/b10/pg7");
        assert_eq!(Vbn(3).to_string(), "Vbn#3");
        assert!(VirtAddr(0x10).to_string().contains("0x10"));
    }

    #[test]
    fn newtype_conversions() {
        let v: VirtAddr = 42u64.into();
        assert_eq!(v.raw(), 42);
        let n: Pdbn = 7u32.into();
        assert_eq!(n.raw(), 7);
    }
}
