//! Data-size constants and helpers.
//!
//! All sizes are plain `usize` byte counts; the constants here pin down the
//! granularities the paper's analysis revolves around (§III-A): the GPU
//! memory access size (128 B) versus the Z-NAND minimum access granularity
//! (a 4 KB page) — the mismatch that wastes 97 % of flash bandwidth when
//! flash is accessed directly.

/// One kibibyte.
pub const KIB: usize = 1024;
/// One mebibyte.
pub const MIB: usize = 1024 * KIB;
/// One gibibyte.
pub const GIB: usize = 1024 * MIB;

/// GPU memory access (cache line / sector) size: 128 B.
///
/// This is the granularity produced by the coalescing unit and tracked by
/// the L1/L2 caches.
pub const CACHE_LINE: usize = 128;

/// Z-NAND flash page size: 4 KB (minimum flash access granularity).
pub const FLASH_PAGE: usize = 4 * KIB;

/// Number of 128 B sectors in one flash page (32).
pub const SECTORS_PER_PAGE: usize = FLASH_PAGE / CACHE_LINE;

/// OS/GPU virtual page size used by the MMU (4 KB, matches the flash page).
pub const VIRT_PAGE: usize = 4 * KIB;

/// Formats a byte count with a binary-unit suffix.
///
/// # Examples
///
/// ```
/// assert_eq!(zng_types::size::format_bytes(6 * 1024 * 1024), "6.0MiB");
/// assert_eq!(zng_types::size::format_bytes(512), "512B");
/// ```
pub fn format_bytes(bytes: usize) -> String {
    if bytes >= GIB {
        format!("{:.1}GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.1}MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1}KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes}B")
    }
}

/// Integer division rounding up; used for sizing sector/page spans.
///
/// # Examples
///
/// ```
/// assert_eq!(zng_types::size::div_ceil(4097, 4096), 2);
/// ```
pub const fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_page_relation() {
        assert_eq!(SECTORS_PER_PAGE, 32);
        assert_eq!(SECTORS_PER_PAGE * CACHE_LINE, FLASH_PAGE);
    }

    #[test]
    fn format_units() {
        assert_eq!(format_bytes(0), "0B");
        assert_eq!(format_bytes(2048), "2.0KiB");
        assert_eq!(format_bytes(24 * MIB), "24.0MiB");
        assert_eq!(format_bytes(3 * GIB), "3.0GiB");
    }

    #[test]
    fn div_ceil_edges() {
        assert_eq!(div_ceil(1, 4096), 1);
        assert_eq!(div_ceil(4096, 4096), 1);
        assert_eq!(div_ceil(4097, 4096), 2);
        assert_eq!(div_ceil(8192, 4096), 2);
    }
}
