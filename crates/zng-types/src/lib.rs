//! Common vocabulary types for the ZnG simulator.
//!
//! This crate defines the newtypes shared by every other crate in the
//! workspace: simulation time ([`Cycle`], [`Nanos`]), data sizes
//! ([`size`]), the address spaces that a request traverses
//! (virtual → logical → flash-physical, see [`addr`]), hardware
//! identifiers ([`ids`]), the memory-request descriptor
//! ([`MemoryRequest`]) and the crate-wide error type ([`Error`]).
//!
//! # Address spaces
//!
//! ZnG requests cross three address spaces, mirroring the paper's
//! zero-overhead FTL (§IV-A):
//!
//! 1. **Virtual** ([`VirtAddr`]) — what a GPU thread computes.
//! 2. **Logical** ([`LogicalAddr`]) — the global memory address after the
//!    MMU's page table; indexes caches.
//! 3. **Flash-physical** ([`FlashAddr`]) — channel/die/plane/block/page,
//!    produced by the DBMT (block-granular, read-only) plus the
//!    row-decoder LPMT (log-block pages).
//!
//! # Examples
//!
//! ```
//! use zng_types::{Cycle, size::FLASH_PAGE, addr::VirtAddr};
//!
//! let t = Cycle(100) + Cycle(20);
//! assert_eq!(t, Cycle(120));
//! let va = VirtAddr(0x4000_1234);
//! assert_eq!(va.page_number(FLASH_PAGE as u64), 0x4000_1234 / 4096);
//! ```

pub mod addr;
pub mod error;
pub mod ids;
pub mod request;
pub mod size;
pub mod time;

pub use addr::{BlockAddr, FlashAddr, Lbn, LogicalAddr, Pdbn, Plbn, Vbn, VirtAddr};
pub use error::Error;
pub use ids::{AppId, BankId, ChannelId, DieId, PackageId, Pc, PlaneId, SmId, WarpId};
pub use request::{AccessKind, MemoryRequest, RequestId};
pub use size::{CACHE_LINE, FLASH_PAGE, SECTORS_PER_PAGE};
pub use time::{Cycle, Freq, Nanos};

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;
