//! Memory-request descriptors.
//!
//! A [`MemoryRequest`] is the unit of traffic below the coalescing unit:
//! one 128 B sector access tagged with the issuing warp, application and
//! the PC of the LD/ST instruction (the prefetch predictor's key).

use std::fmt;

use crate::addr::VirtAddr;
use crate::ids::{AppId, Pc, WarpId};
use crate::size::CACHE_LINE;

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum AccessKind {
    /// A load.
    #[default]
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Read`].
    #[inline]
    pub const fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// Returns `true` for [`AccessKind::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

/// A monotonically assigned request identifier (unique per simulation run).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// One coalesced 128 B memory access.
///
/// # Examples
///
/// ```
/// use zng_types::{AccessKind, MemoryRequest, VirtAddr, WarpId, AppId, ids::Pc};
/// let req = MemoryRequest::new(
///     VirtAddr(0x1000),
///     AccessKind::Read,
///     WarpId(4),
///     AppId(0),
///     Pc(0x400),
/// );
/// assert!(req.kind.is_read());
/// assert_eq!(req.size, 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryRequest {
    /// Sector-aligned virtual address.
    pub addr: VirtAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Issuing warp.
    pub warp: WarpId,
    /// Owning application (multi-app mixes).
    pub app: AppId,
    /// PC of the LD/ST instruction (prefetch predictor key).
    pub pc: Pc,
    /// Access size in bytes (always [`CACHE_LINE`] below the coalescer).
    pub size: u32,
}

impl MemoryRequest {
    /// Creates a sector-sized request; the address is aligned down to its
    /// 128 B sector base.
    pub fn new(addr: VirtAddr, kind: AccessKind, warp: WarpId, app: AppId, pc: Pc) -> Self {
        MemoryRequest {
            addr: addr.sector_base(),
            kind,
            warp,
            app,
            pc,
            size: CACHE_LINE as u32,
        }
    }

    /// The flash/virtual page number this request falls in (4 KB pages).
    #[inline]
    pub fn page_number(&self) -> u64 {
        self.addr.page_number(crate::size::VIRT_PAGE as u64)
    }
}

impl fmt::Display for MemoryRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{:#x} {} {}",
            self.kind,
            self.addr.raw(),
            self.warp,
            self.app
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_aligns_address() {
        let r = MemoryRequest::new(
            VirtAddr(4096 + 200),
            AccessKind::Write,
            WarpId(1),
            AppId(0),
            Pc(8),
        );
        assert_eq!(r.addr.raw(), 4096 + 128);
        assert_eq!(r.page_number(), 1);
        assert!(r.kind.is_write());
        assert!(!r.kind.is_read());
    }

    #[test]
    fn kind_display() {
        assert_eq!(AccessKind::Read.to_string(), "R");
        assert_eq!(AccessKind::Write.to_string(), "W");
    }

    #[test]
    fn request_display_mentions_parts() {
        let r = MemoryRequest::new(VirtAddr(0x80), AccessKind::Read, WarpId(9), AppId(2), Pc(1));
        let s = r.to_string();
        assert!(s.contains("R@"), "{s}");
        assert!(s.contains("w9"), "{s}");
        assert!(s.contains("app2"), "{s}");
    }
}
