//! The workspace-wide error type.

use std::error::Error as StdError;
use std::fmt;

/// Errors surfaced by the ZnG simulator's public API.
///
/// Simulation-internal invariant violations are bugs and panic instead;
/// `Error` covers conditions a caller can trigger through configuration or
/// workload input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value is out of range or inconsistent.
    InvalidConfig {
        /// Which parameter was rejected.
        what: String,
        /// Why it was rejected.
        why: String,
    },
    /// An address fell outside the configured device capacity.
    AddressOutOfRange {
        /// The raw offending address.
        addr: u64,
        /// The capacity it exceeded, in bytes.
        capacity: u64,
    },
    /// Flash protocol violation: programming a page out of order or
    /// overwriting without an erase (erase-before-write rule).
    FlashProtocol(String),
    /// The device ran out of free blocks and garbage collection could not
    /// reclaim space.
    OutOfSpace,
    /// A workload name was not recognised.
    UnknownWorkload(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { what, why } => {
                write!(f, "invalid configuration for {what}: {why}")
            }
            Error::AddressOutOfRange { addr, capacity } => {
                write!(f, "address {addr:#x} out of range (capacity {capacity} bytes)")
            }
            Error::FlashProtocol(msg) => write!(f, "flash protocol violation: {msg}"),
            Error::OutOfSpace => write!(f, "flash device out of space"),
            Error::UnknownWorkload(name) => write!(f, "unknown workload `{name}`"),
        }
    }
}

impl StdError for Error {}

impl Error {
    /// Convenience constructor for [`Error::InvalidConfig`].
    pub fn invalid_config(what: impl Into<String>, why: impl Into<String>) -> Error {
        Error::InvalidConfig {
            what: what.into(),
            why: why.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = Error::invalid_config("l2.size", "must be a multiple of the line size");
        assert_eq!(
            e.to_string(),
            "invalid configuration for l2.size: must be a multiple of the line size"
        );
        let e = Error::AddressOutOfRange {
            addr: 0x100,
            capacity: 64,
        };
        assert!(e.to_string().contains("0x100"));
        assert_eq!(Error::OutOfSpace.to_string(), "flash device out of space");
        assert!(Error::UnknownWorkload("bogus".into())
            .to_string()
            .contains("bogus"));
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(Error::OutOfSpace);
        assert!(e.source().is_none());
    }
}
