//! The workspace-wide error type.

use std::error::Error as StdError;
use std::fmt;

use crate::time::Cycle;

/// Errors surfaced by the ZnG simulator's public API.
///
/// Simulation-internal invariant violations are bugs and panic instead;
/// `Error` covers conditions a caller can trigger through configuration or
/// workload input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value is out of range or inconsistent.
    InvalidConfig {
        /// Which parameter was rejected.
        what: String,
        /// Why it was rejected.
        why: String,
    },
    /// An address fell outside the configured device capacity.
    AddressOutOfRange {
        /// The raw offending address.
        addr: u64,
        /// The capacity it exceeded, in bytes.
        capacity: u64,
    },
    /// Flash protocol violation: programming a page out of order or
    /// overwriting without an erase (erase-before-write rule).
    FlashProtocol(String),
    /// The device ran out of free blocks and garbage collection could not
    /// reclaim space.
    OutOfSpace,
    /// A workload name was not recognised.
    UnknownWorkload(String),
    /// A page read stayed uncorrectable after exhausting the read-retry
    /// ladder (raw bit errors exceeded the ECC budget on every attempt).
    UncorrectableRead {
        /// Physical block index within the plane.
        block: u64,
        /// Page offset within the block.
        page: u32,
        /// Retry attempts performed before giving up.
        retries: u32,
    },
    /// The device wore out: so many blocks were retired that the FTL has
    /// no spare capacity left to remap around failures.
    DeviceWornOut {
        /// Blocks retired over the device's lifetime.
        retired_blocks: u64,
    },
    /// A bounded queue refused admission: the component is saturated and
    /// the caller should retry no earlier than `retry_at`.
    ///
    /// Only surfaced when overload control is enabled (a finite queue
    /// depth was configured); unbounded mode never rejects.
    Backpressure {
        /// Earliest cycle at which a queue slot is guaranteed free,
        /// assuming no competing arrivals in between.
        retry_at: Cycle,
    },
    /// A read hit a page whose program was interrupted by a power loss.
    /// Torn pages are detectable (their out-of-band metadata fails
    /// verification) and must be discarded by recovery, never served.
    TornPage {
        /// Physical block index within the plane.
        block: u64,
        /// Page offset within the block.
        page: u32,
    },
    /// A page's payload failed its end-to-end checksum after every
    /// recovery avenue (re-read, stripe reconstruction) was exhausted:
    /// the ECC engine silently miscorrected the data and the integrity
    /// layer refused to serve it.
    IntegrityViolation {
        /// Physical block index within the plane.
        block: u64,
        /// Page offset within the block.
        page: u32,
    },
    /// The device's advertised capacity shrank: end-of-life block
    /// retirement exhausted the spare pool, and the endurance subsystem
    /// stepped the advertised capacity down instead of failing the whole
    /// device. The refused write was never acknowledged; all previously
    /// acknowledged data stays readable.
    ///
    /// Only surfaced when graceful end-of-life degradation is enabled
    /// (`EnduranceConfig`); the default path keeps the hard
    /// [`Error::DeviceWornOut`] cliff.
    CapacityDegraded {
        /// Logical pages still mapped and serviceable after the step.
        remaining_pages: u64,
    },
    /// The simulation made no forward progress for longer than the
    /// configured watchdog budget (for example a retry/backoff livelock);
    /// aborted rather than spinning forever.
    Stalled {
        /// The cycle at which the watchdog fired.
        cycle: Cycle,
        /// The last cycle at which a request completed.
        last_progress: Cycle,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { what, why } => {
                write!(f, "invalid configuration for {what}: {why}")
            }
            Error::AddressOutOfRange { addr, capacity } => {
                write!(
                    f,
                    "address {addr:#x} out of range (capacity {capacity} bytes)"
                )
            }
            Error::FlashProtocol(msg) => write!(f, "flash protocol violation: {msg}"),
            Error::OutOfSpace => write!(f, "flash device out of space"),
            Error::UnknownWorkload(name) => write!(f, "unknown workload `{name}`"),
            Error::UncorrectableRead {
                block,
                page,
                retries,
            } => write!(
                f,
                "uncorrectable read at block {block} page {page} after {retries} retries"
            ),
            Error::DeviceWornOut { retired_blocks } => write!(
                f,
                "flash device worn out ({retired_blocks} blocks retired, spare pool exhausted)"
            ),
            Error::Backpressure { retry_at } => write!(
                f,
                "backpressure: queue full, retry at cycle {}",
                retry_at.raw()
            ),
            Error::TornPage { block, page } => write!(
                f,
                "torn page at block {block} page {page} (program interrupted by power loss)"
            ),
            Error::IntegrityViolation { block, page } => write!(
                f,
                "integrity violation at block {block} page {page} \
                 (payload checksum mismatch, ECC miscorrection)"
            ),
            Error::CapacityDegraded { remaining_pages } => write!(
                f,
                "device capacity degraded: write refused, {remaining_pages} mapped pages remain \
                 serviceable"
            ),
            Error::Stalled {
                cycle,
                last_progress,
            } => write!(
                f,
                "simulation stalled: no forward progress since cycle {} (watchdog fired at {})",
                last_progress.raw(),
                cycle.raw()
            ),
        }
    }
}

impl StdError for Error {}

impl Error {
    /// Convenience constructor for [`Error::InvalidConfig`].
    pub fn invalid_config(what: impl Into<String>, why: impl Into<String>) -> Error {
        Error::InvalidConfig {
            what: what.into(),
            why: why.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = Error::invalid_config("l2.size", "must be a multiple of the line size");
        assert_eq!(
            e.to_string(),
            "invalid configuration for l2.size: must be a multiple of the line size"
        );
        let e = Error::AddressOutOfRange {
            addr: 0x100,
            capacity: 64,
        };
        assert!(e.to_string().contains("0x100"));
        assert_eq!(Error::OutOfSpace.to_string(), "flash device out of space");
        assert!(Error::UnknownWorkload("bogus".into())
            .to_string()
            .contains("bogus"));
        let e = Error::UncorrectableRead {
            block: 7,
            page: 3,
            retries: 4,
        };
        assert_eq!(
            e.to_string(),
            "uncorrectable read at block 7 page 3 after 4 retries"
        );
        let e = Error::DeviceWornOut { retired_blocks: 12 };
        assert!(e.to_string().contains("12 blocks retired"));
        let e = Error::Backpressure {
            retry_at: Cycle(4096),
        };
        assert_eq!(
            e.to_string(),
            "backpressure: queue full, retry at cycle 4096"
        );
        let e = Error::IntegrityViolation { block: 5, page: 2 };
        assert_eq!(
            e.to_string(),
            "integrity violation at block 5 page 2 \
             (payload checksum mismatch, ECC miscorrection)"
        );
        let e = Error::CapacityDegraded {
            remaining_pages: 640,
        };
        assert_eq!(
            e.to_string(),
            "device capacity degraded: write refused, 640 mapped pages remain serviceable"
        );
        let e = Error::Stalled {
            cycle: Cycle(9000),
            last_progress: Cycle(1000),
        };
        assert_eq!(
            e.to_string(),
            "simulation stalled: no forward progress since cycle 1000 (watchdog fired at 9000)"
        );
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(Error::OutOfSpace);
        assert!(e.source().is_none());
        let e: Box<dyn std::error::Error> = Box::new(Error::DeviceWornOut { retired_blocks: 1 });
        assert!(e.source().is_none());
    }
}
