//! Hardware and software entity identifiers.
//!
//! All ids are thin `u16`/`u32`/`u64` newtypes so that, e.g., a plane index
//! can never be passed where a die index is expected (C-NEWTYPE).

use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident($inner:ty), $tag:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw id value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// Returns the id as a `usize` index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> $name {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $tag, self.0)
            }
        }
    };
}

id_newtype!(
    /// A streaming multiprocessor (Table I: 16 SMs).
    SmId(u16),
    "sm"
);
id_newtype!(
    /// A warp, unique within the whole simulation (SM-qualified by the GPU).
    WarpId(u32),
    "w"
);
id_newtype!(
    /// A co-running application (multi-app workloads, paper §V-D).
    AppId(u16),
    "app"
);
id_newtype!(
    /// An L2 cache bank (Table I: 6 banks).
    BankId(u16),
    "bank"
);
id_newtype!(
    /// A flash channel (Table I: 16 channels, one package each).
    ChannelId(u16),
    "ch"
);
id_newtype!(
    /// A flash package.
    PackageId(u16),
    "pkg"
);
id_newtype!(
    /// A die within a package (Table I: 8 dies).
    DieId(u16),
    "die"
);
id_newtype!(
    /// A plane within a die (Table I: 8 planes).
    PlaneId(u16),
    "pl"
);

/// A program-counter address of a LD/ST instruction.
///
/// The read-prefetch predictor (paper §IV-B) indexes its table by PC: all
/// memory requests born from the same static load exhibit the same access
/// pattern.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pc(pub u64);

impl Pc {
    /// Returns the raw PC value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for Pc {
    fn from(v: u64) -> Pc {
        Pc(v)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types() {
        // Compile-time property: a function taking DieId cannot take PlaneId.
        fn wants_die(d: DieId) -> usize {
            d.index()
        }
        assert_eq!(wants_die(DieId(3)), 3);
    }

    #[test]
    fn display_tags() {
        assert_eq!(SmId(2).to_string(), "sm2");
        assert_eq!(ChannelId(15).to_string(), "ch15");
        assert_eq!(Pc(0xabc).to_string(), "pc0xabc");
        assert_eq!(AppId(1).to_string(), "app1");
    }

    #[test]
    fn index_conversion() {
        assert_eq!(WarpId(80).index(), 80);
        assert_eq!(PlaneId(7).raw(), 7);
        let c: ChannelId = 4u16.into();
        assert_eq!(c, ChannelId(4));
    }
}
