//! Static device data behind the paper's Figures 3a, 3b and 4c.
//!
//! These are *device datasheet* numbers, not simulation outputs: the
//! paper's motivation figures compare memory density (GB per package),
//! power efficiency (W per GB) and peak throughput across GDDR5, DDR4,
//! LPDDR4 and Z-NAND. The key relations the figures establish:
//!
//! * Z-NAND density is **64×** GPU DRAM density (paper §II-B).
//! * GPU DRAM burns by far the most W/GB; Z-NAND the least.
//! * GPU DRAM throughput ≈ 80× a GPU-SSD and 40× HybridGPU (Fig. 4c).

/// The device families compared in the motivation figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// GPU on-board GDDR5.
    Gddr5,
    /// Desktop DDR4.
    Ddr4,
    /// Mobile LPDDR4.
    Lpddr4,
    /// Samsung Z-NAND (SLC, 48-layer).
    ZNand,
}

impl DeviceClass {
    /// All classes in the paper's figure order.
    pub const ALL: [DeviceClass; 4] = [
        DeviceClass::Gddr5,
        DeviceClass::Ddr4,
        DeviceClass::Lpddr4,
        DeviceClass::ZNand,
    ];
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceClass::Gddr5 => "GDDR5",
            DeviceClass::Ddr4 => "DDR4",
            DeviceClass::Lpddr4 => "LPDDR4",
            DeviceClass::ZNand => "Z-NAND",
        };
        f.write_str(s)
    }
}

/// Datasheet-level properties of one memory package.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceInfo {
    /// Which family.
    pub class: DeviceClass,
    /// Capacity of a single package in GB (Fig. 3a).
    pub density_gb: f64,
    /// Power per GB in watts (Fig. 3b).
    pub watt_per_gb: f64,
    /// Peak per-package throughput in GB/s (feeds Fig. 4c).
    pub peak_gbps: f64,
}

impl DeviceInfo {
    /// Looks up the datasheet record for `class`.
    pub fn of(class: DeviceClass) -> DeviceInfo {
        match class {
            // GDDR5: 1 GB/package (GTX580 era: 8Gb dies), hot.
            DeviceClass::Gddr5 => DeviceInfo {
                class,
                density_gb: 1.0,
                watt_per_gb: 2.5,
                peak_gbps: 32.0,
            },
            // DDR4: 4 GB/package.
            DeviceClass::Ddr4 => DeviceInfo {
                class,
                density_gb: 4.0,
                watt_per_gb: 0.9,
                peak_gbps: 19.2,
            },
            // LPDDR4: 4 GB/package, best DRAM power efficiency.
            DeviceClass::Lpddr4 => DeviceInfo {
                class,
                density_gb: 4.0,
                watt_per_gb: 0.35,
                peak_gbps: 17.0,
            },
            // Z-NAND: 64 GB/package (64x GDDR5), lowest W/GB.
            DeviceClass::ZNand => DeviceInfo {
                class,
                density_gb: 64.0,
                watt_per_gb: 0.05,
                peak_gbps: 3.2,
            },
        }
    }

    /// Density ratio of this device to GDDR5.
    pub fn density_vs_gddr5(&self) -> f64 {
        self.density_gb / DeviceInfo::of(DeviceClass::Gddr5).density_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn znand_is_64x_denser_than_gddr5() {
        // The paper's headline density claim (§II-B).
        let z = DeviceInfo::of(DeviceClass::ZNand);
        assert!((z.density_vs_gddr5() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn power_ordering_matches_fig3b() {
        // GDDR5 worst, Z-NAND best; LPDDR4 beats DDR4.
        let w = |c| DeviceInfo::of(c).watt_per_gb;
        assert!(w(DeviceClass::Gddr5) > w(DeviceClass::Ddr4));
        assert!(w(DeviceClass::Ddr4) > w(DeviceClass::Lpddr4));
        assert!(w(DeviceClass::Lpddr4) > w(DeviceClass::ZNand));
    }

    #[test]
    fn density_ordering_matches_fig3a() {
        let d = |c| DeviceInfo::of(c).density_gb;
        assert!(d(DeviceClass::ZNand) > d(DeviceClass::Ddr4));
        assert!(d(DeviceClass::Ddr4) >= d(DeviceClass::Lpddr4));
        assert!(d(DeviceClass::Lpddr4) > d(DeviceClass::Gddr5));
    }

    #[test]
    fn all_covers_each_class_once() {
        assert_eq!(DeviceClass::ALL.len(), 4);
        for c in DeviceClass::ALL {
            assert_eq!(DeviceInfo::of(c).class, c);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceClass::ZNand.to_string(), "Z-NAND");
        assert_eq!(DeviceClass::Gddr5.to_string(), "GDDR5");
    }
}
