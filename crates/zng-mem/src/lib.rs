//! Memory-device timing models for the ZnG simulator.
//!
//! This crate provides the *non-flash* memory substrates the paper
//! evaluates against:
//!
//! * [`MemSubsystem`] — a controller-interleaved latency/bandwidth model
//!   with presets for GDDR5 (the GTX580-like GPU memory), desktop DDR4,
//!   mobile LPDDR4, Optane DC PMM (Table I timings) and HybridGPU's
//!   single-package internal DRAM buffer.
//! * [`devices`] — static density / power / peak-throughput data behind
//!   the paper's Figures 3a, 3b and 4c.
//! * [`PcieLink`] — the host interconnect used by the discrete
//!   GPU-SSD (`Hetero`) platform.

pub mod devices;
pub mod pcie;
pub mod subsystem;

pub use devices::{DeviceClass, DeviceInfo};
pub use pcie::PcieLink;
pub use subsystem::{MemSubsystem, MemTiming};
