//! PCIe interconnect model for the discrete GPU-SSD (`Hetero`) platform.
//!
//! In the Hetero system (paper Fig. 4b) a page fault travels: GPU → host
//! interrupt → SSD read → host DRAM staging copy → PCIe DMA back to GPU
//! memory. The redundant host-side copy (user/privilege mode switches)
//! and the PCIe round trips dominate; this module models the link and the
//! fixed software overheads.

use zng_sim::Link;
use zng_types::{Cycle, Freq, Nanos};

/// A PCIe 3.0-style host link plus host-software fault overheads.
///
/// # Examples
///
/// ```
/// use zng_mem::PcieLink;
/// use zng_types::{Cycle, Freq};
///
/// let mut pcie = PcieLink::gen3_x16(Freq::default());
/// let done = pcie.dma(Cycle(0), 4096);
/// assert!(done > Cycle(0));
/// ```
#[derive(Debug, Clone)]
pub struct PcieLink {
    link: Link,
    /// One-way transaction latency.
    latency: Cycle,
    /// Host interrupt + driver + user/kernel switch cost per fault.
    fault_software_overhead: Cycle,
    transfers: u64,
}

impl PcieLink {
    /// PCIe 3.0 x16: ~15.75 GB/s effective, ~500 ns transaction latency.
    /// Page-fault software path (interrupt, driver, mode switches) is
    /// modelled at 5 µs, consistent with the paper's observation that
    /// fault servicing dominates Hetero latency.
    pub fn gen3_x16(freq: Freq) -> PcieLink {
        let bytes_per_cycle = 15.75e9 / freq.hz();
        PcieLink {
            link: Link::new(bytes_per_cycle, Cycle::ZERO),
            latency: Nanos(500.0).to_cycles(freq),
            fault_software_overhead: Nanos::from_micros(5.0).to_cycles(freq),
            transfers: 0,
        }
    }

    /// DMAs `bytes` across the link; returns arrival time of the last byte.
    pub fn dma(&mut self, now: Cycle, bytes: usize) -> Cycle {
        self.transfers += 1;
        self.link.transfer(now, bytes) + self.latency
    }

    /// The fixed host-software cost of servicing one page fault
    /// (interrupt delivery, driver, user/privilege switches).
    pub fn fault_software_overhead(&self) -> Cycle {
        self.fault_software_overhead
    }

    /// Total bytes DMAed.
    pub fn bytes_moved(&self) -> u64 {
        self.link.bytes_moved()
    }

    /// Number of DMA transactions issued.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Clears reservations and counters.
    pub fn reset(&mut self) {
        self.link.reset();
        self.transfers = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_includes_latency_and_occupancy() {
        let f = Freq::ghz(1.0);
        let mut p = PcieLink::gen3_x16(f);
        // 500ns latency at 1 GHz = 500 cycles; 4 KB at 15.75 B/cy ~ 261 cy.
        let done = p.dma(Cycle(0), 4096);
        assert!(done > Cycle(500));
        assert!(done < Cycle(1_000));
        assert_eq!(p.bytes_moved(), 4096);
        assert_eq!(p.transfers(), 1);
    }

    #[test]
    fn back_to_back_dmas_serialize() {
        let f = Freq::default();
        let mut p = PcieLink::gen3_x16(f);
        let a = p.dma(Cycle(0), 1 << 20);
        let b = p.dma(Cycle(0), 1 << 20);
        assert!(b.raw() > a.raw() + (a.raw() / 2), "{a} {b}");
    }

    #[test]
    fn fault_overhead_is_microseconds() {
        let f = Freq::ghz(1.2);
        let p = PcieLink::gen3_x16(f);
        assert_eq!(p.fault_software_overhead(), Cycle(6_000)); // 5us * 1.2GHz
    }

    #[test]
    fn reset_clears() {
        let f = Freq::default();
        let mut p = PcieLink::gen3_x16(f);
        p.dma(Cycle(0), 128);
        p.reset();
        assert_eq!(p.bytes_moved(), 0);
        assert_eq!(p.transfers(), 0);
    }
}
