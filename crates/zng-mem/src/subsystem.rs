//! A controller-interleaved memory-subsystem model.

use zng_sim::Link;
use zng_types::{AccessKind, Cycle, Freq, Nanos};

/// Timing/bandwidth parameters of a memory subsystem.
///
/// Latencies are expressed in nanoseconds and converted to GPU cycles when
/// the subsystem is instantiated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemTiming {
    /// Device name for reports.
    pub name: &'static str,
    /// Read access latency (array access, excluding bus occupancy).
    pub read_latency: Nanos,
    /// Write access latency.
    pub write_latency: Nanos,
    /// Number of memory controllers (address-interleaved).
    pub controllers: usize,
    /// Peak bandwidth per controller in GB/s.
    pub gbps_per_controller: f64,
    /// Internal media access granularity in bytes: a smaller request
    /// still moves this much internally (Optane's 256 B XPLine). Zero
    /// means byte-granular.
    pub media_granularity: usize,
}

impl MemTiming {
    /// GTX580-like GPU GDDR5: 6 controllers on a 384-bit bus,
    /// ~192 GB/s aggregate (paper Fig. 1b / §II-A).
    pub fn gddr5() -> MemTiming {
        MemTiming {
            name: "GDDR5",
            media_granularity: 0,
            read_latency: Nanos(167.0),
            write_latency: Nanos(167.0),
            controllers: 6,
            gbps_per_controller: 32.0,
        }
    }

    /// Desktop DDR4-2400 dual channel (~38 GB/s).
    pub fn ddr4() -> MemTiming {
        MemTiming {
            name: "DDR4",
            media_granularity: 0,
            read_latency: Nanos(90.0),
            write_latency: Nanos(90.0),
            controllers: 2,
            gbps_per_controller: 19.2,
        }
    }

    /// Mobile LPDDR4 (~34 GB/s over 2 channels).
    pub fn lpddr4() -> MemTiming {
        MemTiming {
            name: "LPDDR4",
            media_granularity: 0,
            read_latency: Nanos(110.0),
            write_latency: Nanos(110.0),
            controllers: 2,
            gbps_per_controller: 17.0,
        }
    }

    /// Optane DC PMM behind six controllers (paper platform (3)):
    /// tRCD 190 ns + tCL 8.9 ns reads, tRP 763 ns writes (Table I),
    /// ~39 GB/s accumulated read bandwidth (paper §V-B).
    pub fn optane() -> MemTiming {
        MemTiming {
            name: "Optane",
            media_granularity: 256,
            read_latency: Nanos(190.0 + 8.9),
            write_latency: Nanos(763.0),
            controllers: 6,
            gbps_per_controller: 6.5,
        }
    }

    /// HybridGPU's single internal DRAM-buffer package on a 32-bit bus
    /// (paper §I: 96 % lower bandwidth than the GPU memory subsystem).
    pub fn hybrid_buffer() -> MemTiming {
        MemTiming {
            name: "DRAM-buffer",
            media_granularity: 0,
            read_latency: Nanos(167.0),
            write_latency: Nanos(167.0),
            controllers: 1,
            gbps_per_controller: 8.0,
        }
    }

    /// Aggregate peak bandwidth in GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.controllers as f64 * self.gbps_per_controller
    }
}

/// A memory subsystem: `n` address-interleaved controllers, each a
/// bandwidth-limited [`Link`], plus a fixed array-access latency.
///
/// # Examples
///
/// ```
/// use zng_mem::{MemSubsystem, MemTiming};
/// use zng_types::{AccessKind, Cycle, Freq};
///
/// let mut gddr5 = MemSubsystem::new(MemTiming::gddr5(), Freq::default());
/// let done = gddr5.access(Cycle(0), 0x1000, AccessKind::Read, 128);
/// assert!(done > Cycle(0));
/// ```
#[derive(Debug, Clone)]
pub struct MemSubsystem {
    timing: MemTiming,
    read_latency: Cycle,
    write_latency: Cycle,
    channels: Vec<Link>,
    bytes_read: u64,
    bytes_written: u64,
}

impl MemSubsystem {
    /// Instantiates the subsystem under GPU clock `freq`.
    pub fn new(timing: MemTiming, freq: Freq) -> MemSubsystem {
        let bytes_per_cycle = timing.gbps_per_controller * 1e9 / freq.hz();
        MemSubsystem {
            timing,
            read_latency: timing.read_latency.to_cycles(freq),
            write_latency: timing.write_latency.to_cycles(freq),
            channels: (0..timing.controllers)
                .map(|_| Link::new(bytes_per_cycle, Cycle::ZERO))
                .collect(),
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// Performs one access of `bytes` at `addr`; returns completion time.
    ///
    /// The controller is chosen by interleaving 256 B address chunks, the
    /// standard GPU partition scheme.
    pub fn access(&mut self, now: Cycle, addr: u64, kind: AccessKind, bytes: usize) -> Cycle {
        let mc = ((addr / 256) % self.channels.len() as u64) as usize;
        // Media granularity: the device internally moves at least one
        // media line per access (Optane's 256 B XPLine), so small random
        // accesses consume disproportionate internal bandwidth.
        let moved = bytes.max(self.timing.media_granularity);
        let latency = match kind {
            AccessKind::Read => {
                self.bytes_read += bytes as u64;
                self.read_latency
            }
            AccessKind::Write => {
                self.bytes_written += bytes as u64;
                self.write_latency
            }
        };
        self.channels[mc].transfer(now, moved) + latency
    }

    /// Performs one access *without* reserving a controller: fixed array
    /// latency plus ideal transfer time.
    ///
    /// Use this for operations that happen at future timestamps relative
    /// to the simulation's event cursor (buffer fills, staging copies):
    /// reserving a serial controller out of time order would falsely
    /// queue every later-processed access behind them. Byte counters are
    /// still updated.
    pub fn access_unqueued(&mut self, now: Cycle, kind: AccessKind, bytes: usize) -> Cycle {
        let bytes_per_cycle = self.channels[0].bytes_per_cycle();
        let transfer = Cycle((bytes as f64 / bytes_per_cycle).ceil() as u64);
        let latency = match kind {
            AccessKind::Read => {
                self.bytes_read += bytes as u64;
                self.read_latency
            }
            AccessKind::Write => {
                self.bytes_written += bytes as u64;
                self.write_latency
            }
        };
        now + transfer + latency
    }

    /// The configured timing parameters.
    pub fn timing(&self) -> &MemTiming {
        &self.timing
    }

    /// Total bytes read since construction/reset.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written since construction/reset.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Achieved bandwidth in GB/s over the elapsed window under `freq`.
    pub fn achieved_gbps(&self, now: Cycle, freq: Freq) -> f64 {
        if now == Cycle::ZERO {
            return 0.0;
        }
        let secs = now.raw() as f64 / freq.hz();
        (self.bytes_read + self.bytes_written) as f64 / 1e9 / secs
    }

    /// Clears all reservations and byte counters.
    pub fn reset(&mut self) {
        for c in &mut self.channels {
            c.reset();
        }
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_aggregate_bandwidth() {
        assert!((MemTiming::gddr5().peak_gbps() - 192.0).abs() < 1e-9);
        assert!((MemTiming::optane().peak_gbps() - 39.0).abs() < 1e-9);
        assert!((MemTiming::hybrid_buffer().peak_gbps() - 8.0).abs() < 1e-9);
        // Paper Fig. 4c ordering: GPU DRAM > desktop > mobile > buffer.
        assert!(MemTiming::gddr5().peak_gbps() > MemTiming::ddr4().peak_gbps());
        assert!(MemTiming::ddr4().peak_gbps() > MemTiming::lpddr4().peak_gbps());
        assert!(MemTiming::lpddr4().peak_gbps() > MemTiming::hybrid_buffer().peak_gbps());
    }

    #[test]
    fn read_latency_applied() {
        let f = Freq::ghz(1.0);
        let mut m = MemSubsystem::new(MemTiming::gddr5(), f);
        let done = m.access(Cycle(0), 0, AccessKind::Read, 128);
        // 167 ns at 1 GHz = 167 cycles, plus >=1 cycle of bus occupancy.
        assert!(done >= Cycle(167));
        assert!(done <= Cycle(200));
        assert_eq!(m.bytes_read(), 128);
        assert_eq!(m.bytes_written(), 0);
    }

    #[test]
    fn optane_writes_slower_than_reads() {
        let f = Freq::default();
        let mut m = MemSubsystem::new(MemTiming::optane(), f);
        let r = m.access(Cycle(0), 0, AccessKind::Read, 128);
        let w = m.access(Cycle(0), 1 << 20, AccessKind::Write, 128);
        assert!(w > r, "tRP 763ns must exceed tRCD+tCL ~199ns: {r} vs {w}");
    }

    #[test]
    fn interleaving_spreads_load() {
        let f = Freq::default();
        let mut m = MemSubsystem::new(MemTiming::gddr5(), f);
        // Two accesses to different 256B chunks should overlap fully.
        let a = m.access(Cycle(0), 0, AccessKind::Read, 128);
        let b = m.access(Cycle(0), 256, AccessKind::Read, 128);
        assert_eq!(a, b);
        // Same chunk serializes on the channel occupancy.
        let c = m.access(Cycle(0), 0, AccessKind::Read, 128);
        assert!(c >= a);
    }

    #[test]
    fn single_buffer_channel_saturates() {
        let f = Freq::default();
        let mut buf = MemSubsystem::new(MemTiming::hybrid_buffer(), f);
        let mut gpu = MemSubsystem::new(MemTiming::gddr5(), f);
        let mut t_buf = Cycle::ZERO;
        let mut t_gpu = Cycle::ZERO;
        for i in 0..1000u64 {
            t_buf = t_buf.max(buf.access(Cycle(0), i * 128, AccessKind::Read, 128));
            t_gpu = t_gpu.max(gpu.access(Cycle(0), i * 128, AccessKind::Read, 128));
        }
        // The buffer should take far longer to stream the same bytes
        // (24x bandwidth gap).
        assert!(
            t_buf.raw() > t_gpu.raw() * 10,
            "buffer {t_buf} vs gpu {t_gpu}"
        );
    }

    #[test]
    fn optane_media_granularity_halves_small_access_bandwidth() {
        // 128 B requests internally move a 256 B XPLine: back-to-back
        // sector reads drain the controller twice as fast as the payload
        // suggests.
        let f = Freq::ghz(1.0);
        let mut opt = MemSubsystem::new(MemTiming::optane(), f);
        let mut ddr = MemSubsystem::new(MemTiming::ddr4(), f);
        let mut t_opt = Cycle::ZERO;
        let mut t_ddr = Cycle::ZERO;
        for _ in 0..1_000 {
            // Same controller every time: measure pure occupancy.
            t_opt = t_opt.max(opt.access(Cycle::ZERO, 0, AccessKind::Read, 128));
            t_ddr = t_ddr.max(ddr.access(Cycle::ZERO, 0, AccessKind::Read, 128));
        }
        // Optane occupancy per request ~ 256 B / 6.5 B/cy ~ 40cy;
        // DDR4 ~ 128 / 19.2 ~ 7cy. The ratio must exceed the pure
        // bandwidth ratio (x1.5) because of the 2x granularity factor.
        let per_opt = (t_opt.raw() - opt.timing().read_latency.to_cycles(f).raw()) as f64 / 1_000.0;
        let per_ddr = (t_ddr.raw() - ddr.timing().read_latency.to_cycles(f).raw()) as f64 / 1_000.0;
        assert!(per_opt / per_ddr > 4.0, "{per_opt} vs {per_ddr}");
    }

    #[test]
    fn unqueued_access_does_not_reserve_controllers() {
        let f = Freq::ghz(1.0);
        let mut m = MemSubsystem::new(MemTiming::ddr4(), f);
        // A far-future unqueued fill...
        let fill_done = m.access_unqueued(Cycle(1_000_000), AccessKind::Write, 4096);
        assert!(fill_done > Cycle(1_000_000));
        // ...must not delay an earlier-time demand access.
        let t = m.access(Cycle(0), 0, AccessKind::Read, 128);
        assert!(
            t < Cycle(1_000),
            "demand access poisoned by future fill: {t}"
        );
        assert_eq!(m.bytes_written(), 4096);
    }

    #[test]
    fn achieved_bandwidth_reporting() {
        let f = Freq::ghz(1.0);
        let mut m = MemSubsystem::new(MemTiming::ddr4(), f);
        assert_eq!(m.achieved_gbps(Cycle::ZERO, f), 0.0);
        m.access(Cycle(0), 0, AccessKind::Write, 1 << 20);
        let g = m.achieved_gbps(Cycle(1_000_000), f); // 1 MB in 1 ms = ~1 GB/s
        assert!((g - 1.0486e-3 * 1e3).abs() < 0.2, "{g}");
        m.reset();
        assert_eq!(m.bytes_written(), 0);
    }
}
