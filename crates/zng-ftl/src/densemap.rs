//! A direct-indexed map for dense-but-segmented integer key spaces.
//!
//! The ZnG mapping tables (DBMT, LBMT) are keyed by virtual block /
//! group numbers that are *dense within an application's segment* but
//! *sparse across segments* (each app's address space starts at a high
//! fixed offset, so one flat `Vec` over the whole key range would be
//! almost entirely empty). [`DenseMap`] splits the key into a segment
//! index and a slot: segments materialise lazily on first insert, and
//! every access within a segment is a direct array index — no hashing
//! at all on the FTL's per-access hot path.
//!
//! Iteration is in **ascending key order by construction**, which makes
//! every walk over a mapping table deterministic without collect-and-sort.
//!
//! # Examples
//!
//! ```
//! use zng_ftl::DenseMap;
//!
//! let mut m: DenseMap<&str> = DenseMap::new();
//! m.insert(3, "three");
//! m.insert(70_000, "far"); // a different segment, allocated lazily
//! assert_eq!(m.get(3), Some(&"three"));
//! assert_eq!(m.len(), 2);
//! let keys: Vec<u64> = m.iter().map(|(k, _)| k).collect();
//! assert_eq!(keys, vec![3, 70_000]); // ascending, always
//! ```

/// log2 of the segment length: 4096 slots per segment keeps one app's
/// whole working set of blocks in a handful of segments while an
/// untouched segment costs one `None`.
const SEG_BITS: u32 = 12;
/// Slots per segment.
const SEG_LEN: usize = 1 << SEG_BITS;

/// A lazily segmented direct-indexed map over `u64` keys.
#[derive(Debug, Clone, Default)]
pub struct DenseMap<V> {
    segs: Vec<Option<Box<[Option<V>]>>>,
    len: usize,
}

impl<V> DenseMap<V> {
    /// Creates an empty map.
    pub fn new() -> DenseMap<V> {
        DenseMap {
            segs: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn split(key: u64) -> (usize, usize) {
        (
            (key >> SEG_BITS) as usize,
            (key & (SEG_LEN as u64 - 1)) as usize,
        )
    }

    /// The value stored under `key`, if any.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        let (seg, slot) = Self::split(key);
        self.segs.get(seg)?.as_ref()?[slot].as_ref()
    }

    /// Mutable access to the value stored under `key`, if any.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let (seg, slot) = Self::split(key);
        self.segs.get_mut(seg)?.as_mut()?[slot].as_mut()
    }

    /// Whether `key` has a value.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `value` under `key`, returning the previous value.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        let (seg, slot) = Self::split(key);
        if seg >= self.segs.len() {
            self.segs.resize_with(seg + 1, || None);
        }
        let seg = self.segs[seg].get_or_insert_with(|| (0..SEG_LEN).map(|_| None).collect());
        let old = seg[slot].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value under `key`, if any.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let (seg, slot) = Self::split(key);
        let old = self.segs.get_mut(seg)?.as_mut()?[slot].take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every entry (segment storage is retained for reuse).
    pub fn clear(&mut self) {
        for seg in self.segs.iter_mut().flatten() {
            for slot in seg.iter_mut() {
                *slot = None;
            }
        }
        self.len = 0;
    }

    /// Iterates `(key, &value)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.segs.iter().enumerate().flat_map(|(si, seg)| {
            seg.iter().flat_map(move |slots| {
                slots.iter().enumerate().filter_map(move |(slot, v)| {
                    v.as_ref()
                        .map(|v| (((si as u64) << SEG_BITS) | slot as u64, v))
                })
            })
        })
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m: DenseMap<u32> = DenseMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, 50), None);
        assert_eq!(m.insert(5, 51), Some(50));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(5), Some(&51));
        assert_eq!(m.remove(5), Some(51));
        assert_eq!(m.remove(5), None);
        assert!(m.is_empty());
    }

    #[test]
    fn cross_segment_keys_are_independent() {
        let mut m: DenseMap<u64> = DenseMap::new();
        // Same slot in three different segments (app-style offsets).
        for app in 0..3u64 {
            m.insert((app << 16) + 7, app);
        }
        assert_eq!(m.len(), 3);
        for app in 0..3u64 {
            assert_eq!(m.get((app << 16) + 7), Some(&app));
        }
        assert_eq!(m.get(7 + (3 << 16)), None, "untouched segment");
    }

    #[test]
    fn iteration_is_ascending_by_key() {
        let mut m: DenseMap<&str> = DenseMap::new();
        for k in [900_000u64, 3, 70_000, 4_095, 4_096] {
            m.insert(k, "x");
        }
        let keys: Vec<u64> = m.keys().collect();
        assert_eq!(keys, vec![3, 4_095, 4_096, 70_000, 900_000]);
        assert_eq!(m.values().count(), 5);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m: DenseMap<Vec<u32>> = DenseMap::new();
        m.insert(9, vec![1]);
        m.get_mut(9).unwrap().push(2);
        assert_eq!(m.get(9), Some(&vec![1, 2]));
        assert_eq!(m.get_mut(10), None);
    }

    #[test]
    fn clear_retains_segments_but_drops_entries() {
        let mut m: DenseMap<u8> = DenseMap::new();
        for k in 0..100u64 {
            m.insert(k * 1000, 1);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
        m.insert(42, 2);
        assert_eq!(m.len(), 1);
    }
}
