//! Mapping checkpoints and the delta journal: bounded-time crash
//! recovery.
//!
//! The full-device OOB scan ([`crate::recovery`]) rebuilds every mapping
//! structure from media truth, but its cost grows linearly with device
//! size. This module bounds recovery time the way zoned flash caches do:
//! a background writer periodically serialises the mapping state into
//! reserved [`BlockKind::Checkpoint`] blocks (a *checkpoint*), and every
//! map mutation between checkpoints appends a record to a write-ahead
//! *journal* in the same block namespace. Recovery then loads the newest
//! verified checkpoint, replays the journal tail, and re-scans only the
//! blocks touched since the checkpoint stamp.
//!
//! # The trust model
//!
//! The checkpoint is never a trusted-metadata shortcut:
//!
//! * checkpoint and journal pages are programmed through the
//!   program-and-verify path (non-demand, like GC migrations): the
//!   writer confirms each page on media before chaining the next, so a
//!   power cut never leaves a *torn* checkpoint page — the discipline an
//!   enterprise controller buys with power-loss-protection capacitors;
//! * the fast path is taken only when the commit page, every payload
//!   page, and every journal page verify on media (present, checkpoint
//!   tag, expected key, not torn, not corrupt) and the journal has no
//!   gap;
//! * anything else falls back to the full scan — gracefully degraded,
//!   never silently wrong;
//! * debug and property builds additionally cross-check that the
//!   fast-path image equals a full scan of the same media, bit for bit.
//!
//! # What a checkpoint contains
//!
//! The serialised state is the per-block media image the recovery scan
//! would have produced: every block's intact OOB records plus its
//! programmed/erase/failure status, and the set of *open* blocks (kind
//! assigned and not yet full, or holding in-flight demand programs).
//! Between checkpoints the journal records which blocks were touched
//! (opened, erased, retired) — critical records, flushed write-ahead —
//! and which logical pages were remapped (batched, loss-tolerant: a
//! remap's own OOB record is rediscovered by the rescan). At recovery
//! the touched set plus the open set is exactly the set of blocks whose
//! media may differ from the checkpointed image; everything else is
//! restored from the checkpoint without a scan.

use std::collections::{BTreeMap, BTreeSet};

use zng_flash::{BlockKind, FlashDevice, PageOob};
use zng_types::{BlockAddr, Cycle};

use crate::allocator::BlockAllocator;
use crate::pacing::GcPacing;
use crate::rain::{Claim, RainState};
use crate::recovery::{self, Scan, ScannedBlock, OOB_SCAN_CYCLES_PER_PAGE};

/// Synthetic OOB key namespace for checkpoint and journal pages, outside
/// the logical space (like [`crate::rain`]'s parity key base, one bit
/// lower so the two namespaces never collide).
pub(crate) const CHECKPOINT_KEY_BASE: u64 = 1 << 61;

/// Mapping-table entries serialised per checkpoint payload page.
pub const CKPT_ENTRIES_PER_PAGE: u64 = 256;

/// Journal records packed per journal page.
pub const JOURNAL_RECORDS_PER_PAGE: usize = 128;

/// Modelled cost of loading one checkpoint or journal page at recovery
/// (a full-page read into controller SRAM, cheaper than a demand read's
/// transfer but dearer than an OOB sense). The allocator stripes the
/// epoch's blocks across the device, so loads on different channels
/// overlap: the recovery charge is this per page of the *deepest
/// channel's* share of the load.
pub const CKPT_LOAD_CYCLES_PER_PAGE: Cycle = Cycle(1_500);

/// Modelled cost of replaying one journal record against the loaded
/// tables.
pub const JOURNAL_REPLAY_CYCLES_PER_RECORD: Cycle = Cycle(24);

/// Checkpoint subsystem configuration. `off()` (the default) disables
/// checkpointing entirely and leaves every output byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Completed foreground operations between background checkpoints
    /// (the runner's cadence). Zero disables checkpointing.
    pub every_ops: u64,
    /// Journal records retained between checkpoints before the epoch is
    /// declared overflowed (its fast path falls back to the full scan
    /// until the next checkpoint). Zero means unbounded.
    pub journal_cap: u64,
    /// Stall budget for the background checkpoint writer, sharing the
    /// GC pacing contract: a checkpoint outliving its deadline blocks
    /// the foreground only up to the deadline and counts an overrun.
    pub pacing: Option<GcPacing>,
}

impl CheckpointConfig {
    /// Checkpointing disabled (the default).
    pub fn off() -> CheckpointConfig {
        CheckpointConfig {
            every_ops: 0,
            journal_cap: 0,
            pacing: None,
        }
    }

    /// Whether checkpointing is on.
    pub fn enabled(&self) -> bool {
        self.every_ops > 0
    }
}

impl Default for CheckpointConfig {
    fn default() -> CheckpointConfig {
        CheckpointConfig::off()
    }
}

/// Event counters of the checkpoint subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointCounters {
    /// Checkpoints committed.
    pub checkpoints: u64,
    /// Checkpoint payload + commit pages programmed.
    pub checkpoint_pages: u64,
    /// Journal records appended.
    pub journal_records: u64,
    /// Journal pages programmed.
    pub journal_pages: u64,
    /// Checkpoint writes that outlived their pacing deadline.
    pub overruns: u64,
    /// Epochs whose journal outgrew `journal_cap` (fast path disabled
    /// until the next checkpoint).
    pub journal_overflows: u64,
    /// Checkpoint writes aborted by media failures or pool exhaustion
    /// (the previous epoch stays in force).
    pub aborted: u64,
}

/// One delta-journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JournalRecord {
    /// A block was opened, erased, retired, or otherwise mutated outside
    /// its OOB records: recovery must re-scan it. Critical — flushed
    /// write-ahead before the owning operation acknowledges.
    Touched { idx: u64 },
    /// A logical page was remapped (demand write, GC merge, refresh,
    /// rebuild, levelling). Batched and loss-tolerant: the rescan of the
    /// touched destination block rediscovers the mapping from OOB.
    Remap { lpn: u64 },
}

impl JournalRecord {
    fn critical(&self) -> bool {
        matches!(self, JournalRecord::Touched { .. })
    }
}

/// A checkpoint or journal page's location and expected key on media.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MediaPage {
    addr: BlockAddr,
    page: u32,
    key: u64,
}

/// One committed checkpoint epoch.
#[derive(Debug, Clone)]
struct Epoch {
    /// Per-block media images at capture time.
    images: Vec<ScannedBlock>,
    /// Blocks that could still change without journal evidence: kind
    /// assigned and not full, or holding in-flight demand programs.
    open: BTreeSet<u64>,
    /// Serialised payload pages, verified at recovery.
    payload: Vec<MediaPage>,
    /// The generation-stamped commit page, programmed last: torn ⇒ the
    /// whole epoch is invalid.
    commit: MediaPage,
}

/// What the fast path would scan and rebuild, plus its accounting.
pub(crate) struct FastScan {
    pub scan: Scan,
    pub journal_replayed: u64,
    pub blocks_rescanned: u64,
    pub cycles_saved: Cycle,
}

/// Borrowed FTL internals the checkpoint writer programs through: the
/// same allocation chokepoint discipline (RAIN parity claims, dead-die
/// fencing) as data and log blocks.
pub(crate) struct CkptIo<'a> {
    pub device: &'a mut FlashDevice,
    pub allocator: &'a mut BlockAllocator,
    pub rain: Option<&'a mut RainState>,
    pub blocks_retired: &'a mut u64,
}

/// Checkpoint writer + journal state, owned by an FTL.
#[derive(Debug, Clone)]
pub(crate) struct CheckpointState {
    config: CheckpointConfig,
    counters: CheckpointCounters,
    /// Generation stamp of the current epoch (0 = none committed yet).
    generation: u64,
    /// Monotonic key suffix within [`CHECKPOINT_KEY_BASE`].
    key_seq: u64,
    epoch: Option<Epoch>,
    /// Journal records of the current epoch, in append order.
    journal: Vec<JournalRecord>,
    /// Records `journal[..flushed]` are covered by flushed pages.
    flushed: usize,
    /// One past the newest critical record (flush urgency watermark).
    critical_high: usize,
    /// Flushed journal pages with the record range each one covers.
    journal_pages: Vec<(MediaPage, usize)>,
    /// The checkpoint-namespace block currently taking appends.
    cur_block: Option<(BlockAddr, u64)>,
    /// Checkpoint-namespace blocks whose media postdates the current
    /// epoch's capture: always re-scanned by the fast path.
    epoch_blocks: Vec<u64>,
    /// Parity claims made while allocating checkpoint blocks during the
    /// current checkpoint write (re-journalled after the commit resets
    /// the journal).
    step_touched: Vec<u64>,
    /// Cleared when a checkpoint or journal program fails: the epoch can
    /// no longer be trusted and recovery falls back to the full scan.
    valid: bool,
    overflowed: bool,
    last_now: Cycle,
}

impl CheckpointState {
    pub(crate) fn new(config: CheckpointConfig) -> CheckpointState {
        CheckpointState {
            config,
            counters: CheckpointCounters::default(),
            generation: 0,
            key_seq: 0,
            epoch: None,
            journal: Vec::new(),
            flushed: 0,
            critical_high: 0,
            journal_pages: Vec::new(),
            cur_block: None,
            epoch_blocks: Vec::new(),
            step_touched: Vec::new(),
            valid: true,
            overflowed: false,
            last_now: Cycle::ZERO,
        }
    }

    pub(crate) fn config(&self) -> CheckpointConfig {
        self.config
    }

    pub(crate) fn counters(&self) -> CheckpointCounters {
        self.counters
    }

    pub(crate) fn bump_overrun(&mut self) {
        self.counters.overruns += 1;
    }

    /// Advances the journal clock (flushes issued at unknown call sites
    /// use the newest time any FTL entry point reported).
    pub(crate) fn tick(&mut self, now: Cycle) {
        self.last_now = self.last_now.max(now);
    }

    fn append(&mut self, rec: JournalRecord) {
        if self.epoch.is_none() || self.overflowed {
            return;
        }
        if self.config.journal_cap > 0 && self.journal.len() as u64 >= self.config.journal_cap {
            self.overflowed = true;
            self.counters.journal_overflows += 1;
            return;
        }
        self.journal.push(rec);
        self.counters.journal_records += 1;
        if rec.critical() {
            self.critical_high = self.journal.len();
        }
    }

    /// Notes a block whose media changed outside its own OOB appends
    /// (opened, erased, retired): the fast path must re-scan it.
    pub(crate) fn note_touched(&mut self, idx: u64) {
        self.append(JournalRecord::Touched { idx });
    }

    /// Notes a logical-page remap (batched, loss-tolerant).
    pub(crate) fn note_remap(&mut self, lpn: u64) {
        self.append(JournalRecord::Remap { lpn });
    }

    /// Whether unflushed records warrant a journal page now: any pending
    /// critical record, or a full batch of remaps.
    pub(crate) fn flush_ready(&self) -> bool {
        self.epoch.is_some()
            && self.valid
            && !self.overflowed
            && (self.critical_high > self.flushed
                || self.journal.len() - self.flushed >= JOURNAL_RECORDS_PER_PAGE)
    }

    fn next_key(&mut self) -> u64 {
        self.key_seq += 1;
        CHECKPOINT_KEY_BASE + self.key_seq
    }

    fn fail_epoch(&mut self) {
        if self.valid {
            self.counters.aborted += 1;
        }
        self.valid = false;
    }

    /// Drops all checkpoint bookkeeping after a crash recovery: the
    /// rebuilt state supersedes every epoch, and the recovery reclaim
    /// erased the checkpoint blocks along with the other dead blocks.
    /// Counters, generation, and the key stream survive.
    pub(crate) fn reset_after_recovery(&mut self) {
        self.epoch = None;
        self.journal.clear();
        self.flushed = 0;
        self.critical_high = 0;
        self.journal_pages.clear();
        self.cur_block = None;
        self.epoch_blocks.clear();
        self.step_touched.clear();
        self.valid = true;
        self.overflowed = false;
    }

    /// Plans the fast-path recovery scan, or `None` when the fallback
    /// ladder demands the full scan: no committed epoch, an invalidated
    /// or overflowed epoch, an unflushed critical record, or any
    /// checkpoint/journal page failing media verification.
    pub(crate) fn plan_fast_scan(&self, device: &FlashDevice) -> Option<FastScan> {
        let ep = self.epoch.as_ref()?;
        if !self.valid || self.overflowed || self.critical_high > self.flushed {
            return None;
        }
        for mp in ep.payload.iter().chain(std::iter::once(&ep.commit)) {
            if !page_intact(device, mp) {
                return None;
            }
        }
        let mut replayed = 0u64;
        for (mp, end) in &self.journal_pages {
            if !page_intact(device, mp) {
                return None;
            }
            replayed = *end as u64;
        }
        // The rescan set: open at capture, touched since (journalled),
        // plus the checkpoint namespace itself.
        let mut rescan: BTreeSet<u64> = ep.open.clone();
        rescan.extend(self.epoch_blocks.iter().copied());
        for rec in &self.journal[..self.flushed] {
            if let JournalRecord::Touched { idx } = rec {
                rescan.insert(*idx);
            }
        }
        let sub = recovery::scan_blocks(device, rescan.iter().copied());
        let blocks_rescanned = sub.blocks.len() as u64;
        let mut merged: BTreeMap<u64, ScannedBlock> = ep
            .images
            .iter()
            .filter(|b| !rescan.contains(&b.idx) && !device.die_is_dead(b.addr.channel, b.addr.die))
            .map(|b| (b.idx, b.clone()))
            .collect();
        for b in sub.blocks {
            merged.insert(b.idx, b);
        }
        let blocks: Vec<ScannedBlock> = merged.into_values().collect();
        let torn: u64 = blocks.iter().map(|b| b.torn as u64).sum();
        let corrupt: u64 = blocks.iter().map(|b| b.corrupt as u64).sum();
        let load_pages = (ep.payload.len() + 1 + self.journal_pages.len()) as u64;
        // Checkpoint blocks are allocator-striped across channels, so the
        // load runs channel-parallel; the wall time is the deepest
        // channel's share.
        let channels = device.geometry().channels as u64;
        let load_depth = load_pages.div_ceil(channels);
        let base = Cycle(
            CKPT_LOAD_CYCLES_PER_PAGE.0 * load_depth
                + JOURNAL_REPLAY_CYCLES_PER_RECORD.0 * replayed
                + sub.base_cycles.0,
        );
        let full_estimate =
            Cycle(OOB_SCAN_CYCLES_PER_PAGE.0 * recovery::busiest_plane_pages(&blocks));
        Some(FastScan {
            scan: Scan {
                blocks,
                pages_scanned: sub.pages_scanned,
                torn,
                corrupt,
                base_cycles: base,
            },
            journal_replayed: replayed,
            blocks_rescanned,
            cycles_saved: Cycle(full_estimate.0.saturating_sub(base.0)),
        })
    }
}

/// Whether a checkpoint/journal page survives on media exactly as
/// written: readable die, written (not torn), checkpoint-tagged, the
/// expected key, and an intact payload checksum.
fn page_intact(device: &FlashDevice, mp: &MediaPage) -> bool {
    if device.die_is_dead(mp.addr.channel, mp.addr.die) {
        return false;
    }
    let Some(b) = device.block(mp.addr) else {
        return false;
    };
    if mp.page >= b.programmed_pages() {
        return false;
    }
    match b.oob(mp.page) {
        PageOob::Written(m) => {
            m.lpn == mp.key && m.tag == BlockKind::Checkpoint && !b.is_corrupt(mp.page)
        }
        _ => false,
    }
}

/// The set of blocks whose media can change without journal evidence:
/// kind assigned and not yet full, or still holding in-flight demand
/// programs (which a later power cut could tear).
fn open_blocks(device: &FlashDevice, images: &[ScannedBlock], now: Cycle) -> BTreeSet<u64> {
    images
        .iter()
        .filter(|b| {
            let Some(blk) = device.block(b.addr) else {
                return false;
            };
            blk.kind() != BlockKind::Free
                && (!b.full
                    || b.entries
                        .iter()
                        .any(|(_, m)| m.demand && m.programmed_at > now))
        })
        .map(|b| b.idx)
        .collect()
}

/// Allocates one checkpoint-namespace block through the standard
/// chokepoint discipline: parity-reserved indices are claimed (and
/// journalled touched), dead-die indices fenced. `None` on exhaustion —
/// the epoch fails, foreground traffic is never killed by the writer.
fn alloc_ckpt_block(ck: &mut CheckpointState, io: &mut CkptIo<'_>) -> Option<(BlockAddr, u64)> {
    let idx = loop {
        let idx = io.allocator.allocate().ok()?;
        match io.rain.as_deref_mut() {
            Some(rain) => match rain.classify(io.device, idx).ok()? {
                Claim::Keep => break idx,
                Claim::Parity => {
                    // The claim postdates the epoch capture: the parity
                    // block must be re-scanned at recovery.
                    ck.note_touched(idx);
                    ck.step_touched.push(idx);
                }
                Claim::Fenced => io.allocator.retire(idx),
            },
            None => break idx,
        }
    };
    let addr = io.device.geometry().block_for_index(idx).ok()?;
    io.device
        .block_mut(addr)
        .ok()?
        .set_kind(BlockKind::Checkpoint);
    ck.epoch_blocks.push(idx);
    ck.cur_block = Some((addr, idx));
    Some((addr, idx))
}

/// Programs one checkpoint/journal page at `t`, rolling to a fresh block
/// when the current one is full and retiring blocks that burn mid-write.
/// `None` fails the epoch (pool exhausted or a device error).
///
/// Checkpoint appends go through the program-and-verify path
/// (non-demand): the writer confirms each page before chaining the next
/// and before any dependent record is trusted, so a power cut never
/// leaves a *torn* checkpoint page — the fallback ladder is exercised by
/// corruption, dead dies, journal overflow and aborted epochs instead.
fn program_page(
    ck: &mut CheckpointState,
    io: &mut CkptIo<'_>,
    mut t: Cycle,
) -> Option<(MediaPage, Cycle)> {
    loop {
        let cur = match ck.cur_block {
            Some((addr, idx))
                if io
                    .device
                    .block(addr)
                    .is_some_and(|b| !b.is_full() && !b.is_failed()) =>
            {
                (addr, idx)
            }
            _ => match alloc_ckpt_block(ck, io) {
                Some(c) => c,
                None => {
                    ck.fail_epoch();
                    return None;
                }
            },
        };
        let key = ck.next_key();
        match io.device.program_migrate(t, cur.0, key) {
            Ok(rep) if !rep.failed => {
                return Some((
                    MediaPage {
                        addr: cur.0,
                        page: rep.page,
                        key,
                    },
                    rep.done,
                ));
            }
            Ok(rep) => {
                // Burned mid-append: retire it and roll to another block
                // (it stays in `epoch_blocks`, so recovery re-scans it).
                io.allocator.retire(cur.1);
                *io.blocks_retired += 1;
                ck.cur_block = None;
                t = rep.done;
            }
            Err(_) => {
                ck.fail_epoch();
                return None;
            }
        }
    }
}

/// Flushes pending journal records to media, one page per
/// [`JOURNAL_RECORDS_PER_PAGE`] batch, until no critical record and no
/// full batch remains. Returns when the last flush completes.
pub(crate) fn flush_journal(ck: &mut CheckpointState, io: &mut CkptIo<'_>, now: Cycle) -> Cycle {
    ck.tick(now);
    let mut t = ck.last_now;
    while ck.flush_ready() {
        let end = (ck.flushed + JOURNAL_RECORDS_PER_PAGE).min(ck.journal.len());
        match program_page(ck, io, t) {
            Some((mp, done)) => {
                ck.journal_pages.push((mp, end));
                ck.flushed = end;
                ck.counters.journal_pages += 1;
                t = done;
            }
            None => break,
        }
    }
    ck.tick(t);
    t
}

/// Writes a full checkpoint: flush the journal tail, capture the media
/// image, serialise it into payload pages, commit with a
/// generation-stamped page, then erase the superseded epoch's blocks
/// back into the pool. An aborted write (burn or exhaustion) leaves the
/// previous epoch in force. Returns when the write completes (the caller
/// applies the pacing cap).
///
/// `stale` is the stale-checkpoint-block backlog a recovery deferred
/// (see [`crate::recovery`]): those blocks retire alongside the
/// superseded epoch, off the restore critical path.
pub(crate) fn write_checkpoint(
    ck: &mut CheckpointState,
    io: &mut CkptIo<'_>,
    now: Cycle,
    stale: Vec<u64>,
) -> Cycle {
    ck.tick(now);
    let mut t = flush_journal(ck, io, now);
    let scan = recovery::scan_device(io.device);
    let open = open_blocks(io.device, &scan.blocks, now);
    let images = scan.blocks;
    let entries: u64 =
        images.len() as u64 + images.iter().map(|b| b.entries.len() as u64).sum::<u64>();
    let pages = entries.div_ceil(CKPT_ENTRIES_PER_PAGE).max(1);
    let mut retiring = std::mem::take(&mut ck.epoch_blocks);
    retiring.extend(stale);
    ck.cur_block = None;
    ck.valid = true;
    let mut payload = Vec::with_capacity(pages as usize);
    let mut ok = true;
    for _ in 0..pages {
        match program_page(ck, io, t) {
            Some((mp, done)) => {
                payload.push(mp);
                t = done;
            }
            None => {
                ok = false;
                break;
            }
        }
    }
    let commit = if ok { program_page(ck, io, t) } else { None };
    match commit {
        Some((mp, done)) => {
            t = done;
            ck.generation += 1;
            ck.counters.checkpoints += 1;
            ck.counters.checkpoint_pages += payload.len() as u64 + 1;
            ck.epoch = Some(Epoch {
                images,
                open,
                payload,
                commit: mp,
            });
            ck.journal.clear();
            ck.flushed = 0;
            ck.critical_high = 0;
            ck.journal_pages.clear();
            ck.overflowed = false;
            // Parity claims made during this write postdate the capture:
            // re-journal them into the fresh epoch.
            for idx in std::mem::take(&mut ck.step_touched) {
                ck.note_touched(idx);
            }
            t = retire_old_blocks(ck, io, t, retiring);
            t = flush_journal(ck, io, t);
        }
        None => {
            // The previous epoch stays current; its fast path must
            // re-scan both its own blocks and the partial new ones.
            ck.epoch_blocks.extend(retiring);
            ck.step_touched.clear();
            t = flush_journal(ck, io, t);
        }
    }
    ck.tick(t);
    t
}

/// Erases the superseded epoch's checkpoint blocks back into the pool
/// (dead-die blocks are fenced, burned erases retire). Each retired
/// index is journalled `Touched` — the new epoch's image captured it
/// *before* the erase, so the fast path must re-scan it — and NOT put
/// back into `epoch_blocks`: that set is the next checkpoint's retiring
/// set, and once an index is released the foreground may re-allocate it
/// as a live data block (re-erasing it later would destroy data).
fn retire_old_blocks(
    ck: &mut CheckpointState,
    io: &mut CkptIo<'_>,
    start: Cycle,
    retiring: Vec<u64>,
) -> Cycle {
    let mut done = start;
    for idx in retiring {
        ck.note_touched(idx);
        let Ok(addr) = io.device.geometry().block_for_index(idx) else {
            continue;
        };
        if let Some(b) = io.device.block(addr) {
            // Burned mid-append: already retired (and charged) when the
            // program failed — never release it back into the pool.
            if b.is_failed() {
                continue;
            }
        }
        if io.device.die_is_dead(addr.channel, addr.die) {
            io.allocator.retire(idx);
            if let Some(rain) = io.rain.as_deref_mut() {
                rain.fenced_blocks += 1;
            }
            continue;
        }
        let valid: Vec<u32> = io
            .device
            .block(addr)
            .map(|b| b.valid_page_indices().collect())
            .unwrap_or_default();
        for page in valid {
            io.device.invalidate(zng_types::FlashAddr::new(addr, page));
        }
        match io.device.erase(start, addr) {
            Ok(rep) => {
                done = done.max(rep.done);
                if rep.failed {
                    io.allocator.retire(idx);
                    *io.blocks_retired += 1;
                } else {
                    let wear = io.device.block(addr).map(|b| b.erase_count()).unwrap_or(0);
                    io.allocator.release(idx, wear);
                }
            }
            Err(_) => {
                io.allocator.retire(idx);
                *io.blocks_retired += 1;
            }
        }
    }
    done
}
