//! Flash translation layers for the ZnG simulator.
//!
//! Two FTLs, matching the paper's two worlds:
//!
//! * [`PageMapFtl`] — the classic page-level FTL executed by an embedded
//!   [`SsdEngine`] inside a conventional SSD (the Hetero and HybridGPU
//!   platforms). Every request pays engine processing cost; the engine's
//!   2–5 low-power cores are the 67 %-of-latency bottleneck of
//!   Fig. 4d.
//! * [`ZngFtl`] — the paper's zero-overhead FTL (§IV-A): a block-granular
//!   **DBMT** resolved for free by the GPU MMU/TLB, per-log-block
//!   **LPMT**s living in programmable row decoders, an **LBMT** mapping
//!   data-block groups to over-provisioned log blocks, and a GPU
//!   helper-thread **garbage collector** with wear levelling.

/// Backstop on write re-drives after repeated program failures. Failed
/// programs burn slots and eventually exhaust the free pool into
/// [`zng_types::Error::DeviceWornOut`]; this bound only catches a broken
/// fault model looping forever.
pub(crate) const MAX_WRITE_REDRIVES: u32 = 64;

/// Read-retry attempts a GC migration read gets before the collector
/// gives up and propagates the uncorrectable read.
pub(crate) const GC_READ_ATTEMPTS: u32 = 4;

pub mod allocator;
pub mod checkpoint;
pub mod densemap;
pub mod engine;
pub mod health;
pub mod integrity;
pub mod pacing;
pub mod pagemap;
pub mod rain;
pub mod recovery;
pub mod refresh;
pub mod zngftl;

pub use allocator::{BlockAllocator, WearPolicy};
pub use densemap::DenseMap;

pub use checkpoint::{
    CheckpointConfig, CheckpointCounters, CKPT_ENTRIES_PER_PAGE, CKPT_LOAD_CYCLES_PER_PAGE,
    JOURNAL_RECORDS_PER_PAGE, JOURNAL_REPLAY_CYCLES_PER_RECORD,
};
pub use engine::SsdEngine;
pub use health::{HealthCounters, HealthPolicy, QUARANTINE_EXTRA_READ_ATTEMPTS, REHAB_CLEAN_TICKS};
pub use integrity::IntegrityCounters;
pub use pacing::GcPacing;
pub use pagemap::PageMapFtl;
pub use rain::{RainConfig, RainCounters, RainState, RAIN_XOR_CYCLES};
pub use recovery::{RecoveryReport, OOB_SCAN_CYCLES_PER_PAGE};
pub use refresh::{EnduranceCounters, RefreshPolicy, RefreshReason, REFRESH_SCAN_BLOCKS_PER_STEP};
pub use zngftl::{GcReport, WriteMode, ZngFtl};
