//! End-to-end data-integrity bookkeeping shared by both FTLs.
//!
//! Every program writes a payload checksum into the page's reserved OOB
//! namespace; every host/GPU-facing read verifies it (the simulator
//! carries no payload bytes, so the checksum check is modelled as the
//! device's per-page corruption flag — see
//! [`zng_flash::FlashDevice::page_is_corrupt`]). On a mismatch the FTL
//! escalates through a fixed ladder: one charged re-read, then stripe
//! reconstruction plus a healing rewrite when redundancy is on, then
//! [`zng_types::Error::IntegrityViolation`].

/// Event counters of the end-to-end integrity layer (per FTL instance).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityCounters {
    /// Host-facing reads whose payload checksum mismatched.
    pub detected: u64,
    /// Verification re-reads charged after a mismatch (the corruption is
    /// in the array, so they fail again — but a real controller cannot
    /// know that without trying).
    pub rereads: u64,
    /// Mismatched payloads recovered by stripe reconstruction.
    pub reconstructed: u64,
    /// Corrupt physical pages taken out of service: superseded by a
    /// healed clean copy, purged by the patrol scrubber, or excluded
    /// from the winners of a crash-recovery scan.
    pub quarantined: u64,
}

impl IntegrityCounters {
    /// Folds another counter snapshot into this one.
    pub fn merge(&mut self, other: IntegrityCounters) {
        self.detected += other.detected;
        self.rereads += other.rereads;
        self.reconstructed += other.reconstructed;
        self.quarantined += other.quarantined;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = IntegrityCounters {
            detected: 1,
            rereads: 2,
            reconstructed: 3,
            quarantined: 4,
        };
        a.merge(IntegrityCounters {
            detected: 10,
            rereads: 20,
            reconstructed: 30,
            quarantined: 40,
        });
        assert_eq!(
            a,
            IntegrityCounters {
                detected: 11,
                rereads: 22,
                reconstructed: 33,
                quarantined: 44,
            }
        );
    }
}
