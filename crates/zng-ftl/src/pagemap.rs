//! The classic page-level FTL of a conventional SSD (Hetero, HybridGPU).
//!
//! Logical pages map individually to flash pages; writes go to per-channel
//! active blocks (page-striped for parallelism); greedy garbage collection
//! migrates the least-valid sealed block when free space runs low. The
//! mapping table lives in SSD DRAM and is *consulted by the SSD engine* —
//! the engine cost is charged by the SSD module, not here.

use std::collections::HashMap;

use zng_flash::{BlockKind, FlashDevice};
use zng_types::{BlockAddr, Cycle, Error, FlashAddr, Result};

use crate::allocator::BlockAllocator;

/// A page-level FTL with greedy GC and wear-aware allocation.
#[derive(Debug, Clone)]
pub struct PageMapFtl {
    /// Logical page number -> current flash location.
    map: HashMap<u64, FlashAddr>,
    /// Reverse map: device block index -> per-page owner lpn.
    rmap: HashMap<u64, Vec<Option<u64>>>,
    allocator: BlockAllocator,
    /// One active write block per channel (page striping).
    active: Vec<Option<BlockAddr>>,
    cursor: usize,
    /// Sealed (fully programmed) blocks eligible for GC.
    sealed: Vec<BlockAddr>,
    gc_threshold: u64,
    gcs: u64,
    pages_migrated: u64,
}

impl PageMapFtl {
    /// Creates an FTL for `device`'s geometry.
    pub fn new(device: &FlashDevice) -> PageMapFtl {
        let g = device.geometry();
        let total = g.total_blocks() as u64;
        PageMapFtl {
            map: HashMap::new(),
            rmap: HashMap::new(),
            allocator: BlockAllocator::new(total),
            active: vec![None; g.channels],
            cursor: 0,
            sealed: Vec::new(),
            gc_threshold: (total / 64).max(2),
            gcs: 0,
            pages_migrated: 0,
        }
    }

    /// Current flash location of `lpn`, if mapped.
    pub fn translate(&self, lpn: u64) -> Option<FlashAddr> {
        self.map.get(&lpn).copied()
    }

    fn fresh_block(&mut self, device: &mut FlashDevice, now: Cycle) -> Result<BlockAddr> {
        if self.allocator.free() <= self.gc_threshold {
            self.gc(now, device)?;
        }
        let idx = self.allocator.allocate()?;
        let addr = device.geometry().block_for_index(idx)?;
        device.block_mut(addr)?.set_kind(BlockKind::Data);
        Ok(addr)
    }

    /// Picks (allocating if needed) the active block for the next write
    /// and rotates the channel cursor.
    fn next_slot(&mut self, device: &mut FlashDevice, now: Cycle) -> Result<BlockAddr> {
        let ch = self.cursor % self.active.len();
        self.cursor = self.cursor.wrapping_add(1);
        let need_new = match self.active[ch] {
            Some(addr) => device.block(addr).map(|b| b.is_full()).unwrap_or(false),
            None => true,
        };
        if need_new {
            if let Some(old) = self.active[ch] {
                self.sealed.push(old);
            }
            self.active[ch] = Some(self.fresh_block(device, now)?);
        }
        Ok(self.active[ch].expect("slot just ensured"))
    }

    fn record_mapping(&mut self, device: &FlashDevice, lpn: u64, addr: FlashAddr) {
        if let Some(old) = self.map.insert(lpn, addr) {
            // Superseded: mark stale both in media state and reverse map.
            let old_idx = device.geometry().index_for_block(old.block);
            if let Some(pages) = self.rmap.get_mut(&old_idx) {
                pages[old.page as usize] = None;
            }
        }
        let idx = device.geometry().index_for_block(addr.block);
        let pages = self
            .rmap
            .entry(idx)
            .or_insert_with(|| vec![None; device.geometry().pages_per_block]);
        pages[addr.page as usize] = Some(lpn);
    }

    /// Writes one logical page; returns program-complete time.
    ///
    /// # Errors
    ///
    /// Propagates allocation and flash-protocol errors.
    pub fn write_page(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        lpn: u64,
    ) -> Result<Cycle> {
        // Invalidate the superseded copy *before* programming so GC of the
        // old block never migrates stale data.
        if let Some(old) = self.map.get(&lpn).copied() {
            device.invalidate(old);
        }
        let block = self.next_slot(device, now)?;
        let (page, done) = device.program(now, block, lpn)?;
        self.record_mapping(device, lpn, FlashAddr::new(block, page));
        Ok(done)
    }

    /// Installs `lpn` as pre-loaded data (the workload's initial dataset
    /// resides on the SSD) without charging simulation time.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    pub fn install(&mut self, device: &mut FlashDevice, lpn: u64) -> Result<()> {
        if self.map.contains_key(&lpn) {
            return Ok(());
        }
        let block = self.next_slot(device, Cycle::ZERO)?;
        let page = device.block_mut(block)?.program_next()?;
        self.record_mapping(device, lpn, FlashAddr::new(block, page));
        Ok(())
    }

    /// Reads `lpn`, installing it first if it was part of the initial
    /// dataset; delivers `transfer_bytes` to the controller.
    ///
    /// # Errors
    ///
    /// Propagates flash-protocol errors.
    pub fn read_page(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        lpn: u64,
        transfer_bytes: usize,
    ) -> Result<Cycle> {
        if !self.map.contains_key(&lpn) {
            self.install(device, lpn)?;
        }
        let addr = self.map[&lpn];
        device.read(now, addr, lpn, transfer_bytes)
    }

    /// Greedy garbage collection: migrate the least-valid sealed block's
    /// live pages and erase it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfSpace`] when no sealed block exists to
    /// reclaim.
    pub fn gc(&mut self, now: Cycle, device: &mut FlashDevice) -> Result<Cycle> {
        let victim_pos = self
            .sealed
            .iter()
            .enumerate()
            .min_by_key(|(_, addr)| {
                device
                    .block(**addr)
                    .map(|b| b.valid_pages())
                    .unwrap_or(u32::MAX)
            })
            .map(|(i, _)| i)
            .ok_or(Error::OutOfSpace)?;
        let victim = self.sealed.swap_remove(victim_pos);
        let victim_idx = device.geometry().index_for_block(victim);
        self.gcs += 1;

        // Migrate live pages, chained serially on the GC thread.
        let live: Vec<(u32, u64)> = self
            .rmap
            .get(&victim_idx)
            .map(|pages| {
                pages
                    .iter()
                    .enumerate()
                    .filter_map(|(p, lpn)| lpn.map(|l| (p as u32, l)))
                    .collect()
            })
            .unwrap_or_default();
        let mut t = now;
        for (page, lpn) in live {
            t = device.read(t, FlashAddr::new(victim, page), lpn, device.geometry().page_bytes)?;
            device.invalidate(FlashAddr::new(victim, page));
            let dest = self.next_slot(device, t)?;
            let (new_page, done) = device.program_migrate(t, dest)?;
            self.record_mapping(device, lpn, FlashAddr::new(dest, new_page));
            t = done;
            self.pages_migrated += 1;
        }
        let erased = device.erase(t, victim)?;
        let wear = device.block(victim).map(|b| b.erase_count()).unwrap_or(0);
        self.rmap.remove(&victim_idx);
        self.allocator.release(victim_idx, wear);
        Ok(erased)
    }

    /// Garbage collections performed.
    pub fn gcs(&self) -> u64 {
        self.gcs
    }

    /// Pages migrated by GC (write amplification numerator).
    pub fn pages_migrated(&self) -> u64 {
        self.pages_migrated
    }

    /// Mapped logical pages.
    pub fn mapped(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zng_flash::{FlashGeometry, RegisterTopology};
    use zng_types::Freq;

    fn setup() -> (FlashDevice, PageMapFtl) {
        let d = FlashDevice::zng_config(
            FlashGeometry::tiny(),
            Freq::default(),
            RegisterTopology::Private,
        )
        .unwrap();
        let f = PageMapFtl::new(&d);
        (d, f)
    }

    #[test]
    fn write_then_read() {
        let (mut d, mut f) = setup();
        let t = f.write_page(Cycle(0), &mut d, 42).unwrap();
        assert!(t >= Cycle(120_000));
        let addr = f.translate(42).expect("mapped");
        let r = f.read_page(t, &mut d, 42, 4096).unwrap();
        assert!(r > t);
        assert_eq!(f.translate(42), Some(addr));
    }

    #[test]
    fn overwrite_remaps_and_invalidates() {
        let (mut d, mut f) = setup();
        f.write_page(Cycle(0), &mut d, 1).unwrap();
        let first = f.translate(1).unwrap();
        f.write_page(Cycle(0), &mut d, 1).unwrap();
        let second = f.translate(1).unwrap();
        assert_ne!(first, second);
        let b = d.block(first.block).unwrap();
        assert!(!b.is_valid(first.page), "old copy must be stale");
    }

    #[test]
    fn reads_install_initial_data_for_free() {
        let (mut d, mut f) = setup();
        let t = f.read_page(Cycle(0), &mut d, 99, 128).unwrap();
        // Only the read cost, no program cost (data pre-resided).
        assert!(t < Cycle(120_000), "{t}");
        assert!(f.translate(99).is_some());
        assert_eq!(f.mapped(), 1);
    }

    #[test]
    fn page_striping_spreads_channels() {
        let (mut d, mut f) = setup();
        f.write_page(Cycle(0), &mut d, 1).unwrap();
        f.write_page(Cycle(0), &mut d, 2).unwrap();
        let a = f.translate(1).unwrap();
        let b = f.translate(2).unwrap();
        assert_ne!(a.block.channel, b.block.channel);
    }

    #[test]
    fn gc_reclaims_space_under_churn() {
        let (mut d, mut f) = setup();
        // tiny geometry: 4*2*2*64 = 1024 blocks x 16 pages = 16384 pages.
        // Overwrite a small working set far beyond capacity.
        let mut t = Cycle(0);
        for i in 0..40_000u64 {
            t = f.write_page(t, &mut d, i % 256).unwrap();
        }
        assert!(f.gcs() > 0, "GC must have run");
        assert!(f.pages_migrated() < 40_000, "migration is bounded");
        // All 256 logical pages still readable.
        for lpn in 0..256 {
            assert!(f.translate(lpn).is_some());
            f.read_page(t, &mut d, lpn, 128).unwrap();
        }
    }
}
