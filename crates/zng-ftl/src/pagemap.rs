//! The classic page-level FTL of a conventional SSD (Hetero, HybridGPU).
//!
//! Logical pages map individually to flash pages; writes go to per-channel
//! active blocks (page-striped for parallelism); greedy garbage collection
//! migrates the least-valid sealed block when free space runs low. The
//! mapping table lives in SSD DRAM and is *consulted by the SSD engine* —
//! the engine cost is charged by the SSD module, not here.

use std::collections::BTreeMap;

use fxhash::FxHashMap;
use zng_flash::{BlockKind, FlashDevice};
use zng_types::{BlockAddr, Cycle, Error, FlashAddr, Result};

use crate::allocator::BlockAllocator;
use crate::health::{HealthCounters, HealthPolicy, HealthState};
use crate::integrity::IntegrityCounters;
use crate::rain::{Claim, RainConfig, RainState};
use crate::refresh::{EnduranceCounters, EnduranceState, RefreshPolicy};
use crate::MAX_WRITE_REDRIVES;

/// A page-level FTL with greedy GC and wear-aware allocation.
#[derive(Debug, Clone)]
pub struct PageMapFtl {
    /// Logical page number -> current flash location. LPNs are sparse
    /// (per-app segments), so this stays a hash map — on the
    /// deterministic Fx hasher; every iteration over it is sorted before
    /// use.
    map: FxHashMap<u64, FlashAddr>,
    /// Reverse map, direct-indexed by device block index (a contiguous
    /// `0..total_blocks` key space): `rmap[idx]` is the per-page owner
    /// lpn table of block `idx`, `None` for blocks holding no mapping.
    /// Index-order iteration is ascending-block order, so walks are
    /// deterministic without sorting.
    rmap: Vec<Option<Vec<Option<u64>>>>,
    allocator: BlockAllocator,
    /// One active write block per channel (page striping).
    active: Vec<Option<BlockAddr>>,
    cursor: usize,
    /// Sealed (fully programmed) blocks eligible for GC.
    sealed: Vec<BlockAddr>,
    gc_threshold: u64,
    /// Re-entry guard: GC's own migration programs must not trigger a
    /// nested collection (unbounded recursion when the pool can't refill,
    /// e.g. at end of life); they allocate directly instead.
    gc_active: bool,
    gcs: u64,
    pages_migrated: u64,
    /// Blocks permanently retired after failed programs/erases.
    blocks_retired: u64,
    /// Writes re-driven to a new block after a program failure.
    write_redrives: u64,
    /// Opt-in RAIN redundancy: `None` (the default) preserves baseline
    /// behaviour bit-for-bit.
    rain: Option<RainState>,
    /// End-to-end payload verification on host-facing reads; off by
    /// default (bit-for-bit baseline).
    integrity: bool,
    icounters: IntegrityCounters,
    /// Endurance management (refresh scheduler, static wear leveler,
    /// graceful end-of-life degradation); `None` (the default) preserves
    /// baseline behaviour bit-for-bit, including the hard
    /// [`Error::DeviceWornOut`] cliff.
    endurance: Option<EnduranceState>,
    /// Mapping checkpoints + delta journal for bounded-time recovery;
    /// `None` (the default) preserves baseline behaviour bit-for-bit.
    checkpoint: Option<crate::checkpoint::CheckpointState>,
    /// Stale checkpoint blocks a recovery deferred; the next checkpoint
    /// write erases them off the restore critical path.
    stale_ckpt: Vec<u64>,
    /// Predictive health monitor (suspect-die quarantine + pre-emptive
    /// evacuation); `None` (the default) preserves baseline behaviour
    /// bit-for-bit.
    health: Option<HealthState>,
}

impl PageMapFtl {
    /// Creates an FTL for `device`'s geometry.
    pub fn new(device: &FlashDevice) -> PageMapFtl {
        let g = device.geometry();
        let total = g.total_blocks() as u64;
        PageMapFtl {
            map: FxHashMap::default(),
            rmap: vec![None; total as usize],
            allocator: BlockAllocator::new(total),
            active: vec![None; g.channels],
            cursor: 0,
            sealed: Vec::new(),
            gc_threshold: (total / 64).max(2),
            gc_active: false,
            gcs: 0,
            pages_migrated: 0,
            blocks_retired: 0,
            write_redrives: 0,
            rain: None,
            integrity: false,
            icounters: IntegrityCounters::default(),
            endurance: None,
            checkpoint: None,
            stale_ckpt: Vec::new(),
            health: None,
        }
    }

    /// Installs (or clears) the predictive health policy: per-die scoring,
    /// suspect quarantine, pre-emptive evacuation and rehabilitation
    /// activate together. `None` keeps the baseline bit-for-bit.
    pub fn set_health(&mut self, policy: Option<HealthPolicy>) {
        self.health = policy.map(HealthState::new);
    }

    /// Whether predictive health monitoring is enabled.
    pub fn health_enabled(&self) -> bool {
        self.health.is_some()
    }

    /// Event counters of the health subsystem, when enabled.
    pub fn health_counters(&self) -> Option<HealthCounters> {
        self.health.as_ref().map(|h| h.counters)
    }

    /// The currently quarantined dies, sorted; empty when health is off.
    pub fn quarantined_dies(&self) -> Vec<(u16, u16)> {
        self.health
            .as_ref()
            .map(|h| h.quarantined())
            .unwrap_or_default()
    }

    /// Installs (or clears) the endurance policy: the refresh scheduler,
    /// the static wear leveler and graceful end-of-life capacity
    /// degradation activate together. `None` keeps the baseline
    /// bit-for-bit, including the hard [`Error::DeviceWornOut`] cliff.
    pub fn set_endurance(&mut self, policy: Option<RefreshPolicy>) {
        self.endurance = policy.map(EnduranceState::new);
    }

    /// Whether endurance management is enabled.
    pub fn endurance_enabled(&self) -> bool {
        self.endurance.is_some()
    }

    /// Event counters of the endurance subsystem, when enabled.
    pub fn endurance_counters(&self) -> Option<EnduranceCounters> {
        self.endurance.as_ref().map(|s| s.counters)
    }

    /// Enables (or disables) RAIN redundancy. Enable before the first
    /// write: stripes only protect pages programmed while redundancy is
    /// on.
    pub fn set_redundancy(&mut self, device: &FlashDevice, config: Option<RainConfig>) {
        self.rain = config.map(|c| RainState::new(device, c));
    }

    /// The redundancy state, when enabled.
    pub fn redundancy(&self) -> Option<&RainState> {
        self.rain.as_ref()
    }

    /// Enables (or disables) end-to-end payload verification: every
    /// host-facing read checks the page's OOB checksum and escalates on a
    /// mismatch (re-read → stripe reconstruction → fail loudly). Off by
    /// default, preserving baseline behaviour bit-for-bit.
    pub fn set_integrity(&mut self, enabled: bool) {
        self.integrity = enabled;
    }

    /// Whether end-to-end payload verification is enabled.
    pub fn integrity_enabled(&self) -> bool {
        self.integrity
    }

    /// Event counters of the integrity layer.
    pub fn integrity_counters(&self) -> IntegrityCounters {
        self.icounters
    }

    /// Installs (or clears) mapping checkpoints + the delta journal.
    /// `None` (or a disabled config) keeps the baseline bit-for-bit:
    /// no checkpoint blocks are allocated and recovery always runs the
    /// full OOB scan.
    pub fn set_checkpointing(&mut self, config: Option<crate::checkpoint::CheckpointConfig>) {
        self.checkpoint = config
            .filter(|c| c.enabled())
            .map(crate::checkpoint::CheckpointState::new);
    }

    /// Whether checkpointing is enabled.
    pub fn checkpoint_enabled(&self) -> bool {
        self.checkpoint.is_some()
    }

    /// Event counters of the checkpoint subsystem, when enabled.
    pub fn checkpoint_counters(&self) -> Option<crate::checkpoint::CheckpointCounters> {
        self.checkpoint.as_ref().map(|ck| ck.counters())
    }

    /// Flushes pending journal records at the end of a mutating entry
    /// point, so every critical (touched-block) record is on media before
    /// the operation acknowledges. A no-op without checkpointing or with
    /// nothing flush-worthy pending.
    fn ckpt_sync(&mut self, now: Cycle, device: &mut FlashDevice) {
        let Some(mut ck) = self.checkpoint.take() else {
            return;
        };
        if ck.flush_ready() {
            let mut io = crate::checkpoint::CkptIo {
                device,
                allocator: &mut self.allocator,
                rain: self.rain.as_mut(),
                blocks_retired: &mut self.blocks_retired,
            };
            crate::checkpoint::flush_journal(&mut ck, &mut io, now);
        } else {
            ck.tick(now);
        }
        self.checkpoint = Some(ck);
    }

    /// One background checkpoint write, run by the SSD engine between
    /// demand requests: flush the journal tail, serialise the mapping
    /// image into checkpoint blocks, commit, and erase the superseded
    /// epoch. Media failures abort the write (the previous epoch stays in
    /// force) rather than surfacing — the checkpoint is an accelerator,
    /// never a correctness dependency. Returns when the foreground may
    /// resume, capped by the configured pacing budget.
    pub fn checkpoint_step(&mut self, now: Cycle, device: &mut FlashDevice) -> Cycle {
        let Some(mut ck) = self.checkpoint.take() else {
            return now;
        };
        let done = {
            let mut io = crate::checkpoint::CkptIo {
                device,
                allocator: &mut self.allocator,
                rain: self.rain.as_mut(),
                blocks_retired: &mut self.blocks_retired,
            };
            crate::checkpoint::write_checkpoint(
                &mut ck,
                &mut io,
                now,
                std::mem::take(&mut self.stale_ckpt),
            )
        };
        let resumed = match ck.config().pacing {
            Some(p) => {
                let deadline = p.deadline(now);
                if done > deadline {
                    ck.bump_overrun();
                }
                done.min(deadline)
            }
            None => done,
        };
        self.checkpoint = Some(ck);
        resumed
    }

    /// Current flash location of `lpn`, if mapped.
    pub fn translate(&self, lpn: u64) -> Option<FlashAddr> {
        self.map.get(&lpn).copied()
    }

    fn fresh_block(&mut self, device: &mut FlashDevice, now: Cycle) -> Result<BlockAddr> {
        self.fresh_block_with(device, now, false)
    }

    /// The one allocation chokepoint. `most_worn` picks the tired end of
    /// the recycled pool instead of the coldest block — the static wear
    /// leveler's destination, so cold data parks on high-wear cells.
    fn fresh_block_with(
        &mut self,
        device: &mut FlashDevice,
        now: Cycle,
        most_worn: bool,
    ) -> Result<BlockAddr> {
        if self.allocator.free() <= self.gc_threshold && !self.gc_active {
            self.gc(now, device)?;
        }
        let idx = loop {
            let idx = if most_worn {
                self.allocator.allocate_most_worn()?
            } else {
                self.allocator.allocate()?
            };
            if let Some(h) = self.health.as_mut() {
                let addr = device.geometry().block_for_index(idx)?;
                if device.die_is_dead(addr.channel, addr.die) {
                    // Dead silicon never returns: retire, exactly like
                    // RAIN's fencing classification would.
                    self.allocator.retire(idx);
                    continue;
                }
                let key = (addr.channel.index() as u16, addr.die.index() as u16);
                if h.is_quarantined(key) {
                    // Quarantine is reversible: park the block instead of
                    // retiring it, so rehabilitation can hand it back.
                    h.park(idx, key);
                    continue;
                }
            }
            match self.rain.as_mut() {
                Some(rain) => match rain.classify(device, idx)? {
                    Claim::Keep => break idx,
                    // The superblock's reserved parity member: RAIN keeps
                    // it, the FTL allocates again. Parity programs land
                    // here later, so the fast-path rescan must cover it.
                    Claim::Parity => {
                        if let Some(ck) = self.checkpoint.as_mut() {
                            ck.note_touched(idx);
                        }
                    }
                    Claim::Fenced => self.allocator.retire(idx),
                },
                None => break idx,
            }
        };
        if let Some(ck) = self.checkpoint.as_mut() {
            ck.note_touched(idx);
        }
        let addr = device.geometry().block_for_index(idx)?;
        device.block_mut(addr)?.set_kind(BlockKind::Data);
        Ok(addr)
    }

    /// Picks (allocating if needed) the active block for the next write
    /// and rotates the channel cursor.
    fn next_slot(&mut self, device: &mut FlashDevice, now: Cycle) -> Result<BlockAddr> {
        let ch = self.cursor % self.active.len();
        self.cursor = self.cursor.wrapping_add(1);
        let need_new = match self.active[ch] {
            Some(addr) => device
                .block(addr)
                .map(|b| b.is_full() || b.is_failed())
                .unwrap_or(false),
            None => true,
        };
        if need_new {
            if let Some(old) = self.active[ch] {
                self.sealed.push(old);
            }
            self.active[ch] = Some(self.fresh_block(device, now)?);
        }
        Ok(self.active[ch].expect("slot just ensured"))
    }

    fn record_mapping(&mut self, device: &FlashDevice, lpn: u64, addr: FlashAddr) {
        if let Some(old) = self.map.insert(lpn, addr) {
            // Superseded: mark stale both in media state and reverse map.
            let old_idx = device.geometry().index_for_block(old.block) as usize;
            if let Some(Some(pages)) = self.rmap.get_mut(old_idx) {
                pages[old.page as usize] = None;
            }
        }
        let idx = device.geometry().index_for_block(addr.block) as usize;
        let pages =
            self.rmap[idx].get_or_insert_with(|| vec![None; device.geometry().pages_per_block]);
        pages[addr.page as usize] = Some(lpn);
        if let Some(ck) = self.checkpoint.as_mut() {
            ck.note_remap(lpn);
        }
    }

    /// Seals the active block that just failed a program so GC salvages
    /// its live pages and retires it; new writes go elsewhere.
    fn seal_active(&mut self, block: BlockAddr) {
        for slot in self.active.iter_mut() {
            if *slot == Some(block) {
                *slot = None;
                self.sealed.push(block);
            }
        }
    }

    /// Writes one logical page; returns program-complete time.
    ///
    /// A program that fails verification seals the stricken block and
    /// re-drives the write into another channel's active block; the
    /// superseded copy is invalidated only after the replacement program
    /// verifies, so a failure never strands acknowledged data.
    ///
    /// # Errors
    ///
    /// Propagates allocation and flash-protocol errors.
    pub fn write_page(&mut self, now: Cycle, device: &mut FlashDevice, lpn: u64) -> Result<Cycle> {
        let r = self
            .write_page_inner(now, device, lpn)
            .map_err(|e| self.degrade_worn(e));
        let t = *r.as_ref().unwrap_or(&now);
        self.ckpt_sync(t, device);
        r
    }

    fn write_page_inner(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        lpn: u64,
    ) -> Result<Cycle> {
        for _ in 0..MAX_WRITE_REDRIVES {
            let block = self.next_slot(device, now)?;
            let report = device.program(now, block, lpn)?;
            if report.failed {
                self.write_redrives += 1;
                self.seal_active(block);
                continue;
            }
            if let Some(old) = self.map.get(&lpn).copied() {
                device.invalidate(old);
            }
            self.record_mapping(device, lpn, FlashAddr::new(block, report.page));
            if let Some(rain) = self.rain.as_mut() {
                rain.note_program(report.done, device, block)?;
            }
            return Ok(report.done);
        }
        Err(Error::FlashProtocol(format!(
            "write of lpn {lpn} still failing after {MAX_WRITE_REDRIVES} re-drives"
        )))
    }

    /// Installs `lpn` as pre-loaded data (the workload's initial dataset
    /// resides on the SSD) without charging simulation time. The page
    /// still gets an OOB record so it survives a crash-recovery scan.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    pub fn install(&mut self, device: &mut FlashDevice, lpn: u64) -> Result<()> {
        if self.map.contains_key(&lpn) {
            return Ok(());
        }
        let block = self.next_slot(device, Cycle::ZERO)?;
        let page = device.preload_page(block, lpn)?;
        if let Some(rain) = self.rain.as_mut() {
            rain.note_preload(device, block)?;
        }
        self.record_mapping(device, lpn, FlashAddr::new(block, page));
        self.ckpt_sync(Cycle::ZERO, device);
        Ok(())
    }

    /// Reads `lpn`, installing it first if it was part of the initial
    /// dataset; delivers `transfer_bytes` to the controller.
    ///
    /// # Errors
    ///
    /// Propagates flash-protocol errors.
    pub fn read_page(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        lpn: u64,
        transfer_bytes: usize,
    ) -> Result<Cycle> {
        if !self.map.contains_key(&lpn) {
            // The install allocates; at end of life it can hit the spare
            // pool cliff, which endurance mode reports as a capacity
            // step (already-mapped pages read without allocating).
            self.install(device, lpn)
                .map_err(|e| self.degrade_worn(e))?;
        }
        let addr = *self.map.get(&lpn).expect("lpn just installed above");
        let done = self.retried_read(now, device, addr, lpn, transfer_bytes)?;
        let r = self.verify_read(done, device, addr, lpn, transfer_bytes);
        // The read path mutates media too (install preloads, integrity
        // heals): flush any critical journal records before acking.
        let t = *r.as_ref().unwrap_or(&done);
        self.ckpt_sync(t, device);
        r
    }

    /// Validates the delivered payload against its OOB checksum and
    /// escalates on a mismatch. The corruption lives in the array (a
    /// consistent ECC miscorrection), so the charged re-read fails again;
    /// with redundancy on, the page is reconstructed from its stripe and
    /// healed onto a fresh location, else the read fails loudly — a
    /// corrupted payload is never served as a successful read.
    fn verify_read(
        &mut self,
        done: Cycle,
        device: &mut FlashDevice,
        addr: FlashAddr,
        lpn: u64,
        bytes: usize,
    ) -> Result<Cycle> {
        if !self.integrity || !device.page_is_corrupt(addr) {
            return Ok(done);
        }
        self.icounters.detected += 1;
        let t = device.read(done, addr, lpn, bytes).unwrap_or(done);
        self.icounters.rereads += 1;
        if self.rain.is_none() {
            return Err(Error::IntegrityViolation {
                block: addr.block.block as u64,
                page: addr.page,
            });
        }
        let t = self
            .rain
            .as_mut()
            .expect("checked above")
            .reconstruct(t, device, addr, bytes)?;
        self.icounters.reconstructed += 1;
        let t = self.heal_migrate(t, device, addr, lpn)?;
        self.icounters.quarantined += 1;
        Ok(t)
    }

    /// Migrates a reconstructed page off its corrupt physical location
    /// through the normal write path, quarantining the stale copy.
    fn heal_migrate(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        src: FlashAddr,
        lpn: u64,
    ) -> Result<Cycle> {
        let mut t = now;
        let mut redrives = 0;
        loop {
            let dest = self.next_slot(device, t)?;
            let report = device.program_migrate(t, dest, lpn)?;
            if report.failed {
                self.write_redrives += 1;
                self.seal_active(dest);
                redrives += 1;
                if redrives >= MAX_WRITE_REDRIVES {
                    return Err(Error::FlashProtocol(format!(
                        "integrity heal of lpn {lpn} still failing after \
                         {MAX_WRITE_REDRIVES} re-drives"
                    )));
                }
                continue;
            }
            device.invalidate(src);
            self.record_mapping(device, lpn, FlashAddr::new(dest, report.page));
            if let Some(rain) = self.rain.as_mut() {
                rain.note_program(report.done, device, dest)?;
            }
            t = report.done;
            break;
        }
        Ok(t)
    }

    /// A read with a bounded retry budget against transient
    /// ECC-uncorrectable senses; with redundancy on, an exhausted ladder
    /// falls back to stripe reconstruction. A quarantined die's data
    /// gets an elevated retry budget.
    fn retried_read(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        addr: FlashAddr,
        lpn: u64,
        bytes: usize,
    ) -> Result<Cycle> {
        let extra = match self.health.as_ref() {
            Some(h)
                if h.is_quarantined((
                    addr.block.channel.index() as u16,
                    addr.block.die.index() as u16,
                )) =>
            {
                crate::health::QUARANTINE_EXTRA_READ_ATTEMPTS
            }
            _ => 0,
        };
        crate::engine::retried_read(device, now, addr, lpn, bytes, self.rain.as_mut(), extra)
    }

    /// Greedy garbage collection: migrate the least-valid sealed block's
    /// live pages and erase it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfSpace`] when no sealed block exists to
    /// reclaim.
    pub fn gc(&mut self, now: Cycle, device: &mut FlashDevice) -> Result<Cycle> {
        self.gc_active = true;
        let r = self.gc_inner(now, device);
        self.gc_active = false;
        let t = *r.as_ref().unwrap_or(&now);
        self.ckpt_sync(t, device);
        r
    }

    fn gc_inner(&mut self, now: Cycle, device: &mut FlashDevice) -> Result<Cycle> {
        let victim_pos = self
            .sealed
            .iter()
            .enumerate()
            .min_by_key(|(_, addr)| {
                device
                    .block(**addr)
                    .map(|b| b.valid_pages())
                    .unwrap_or(u32::MAX)
            })
            .map(|(i, _)| i)
            .ok_or(Error::OutOfSpace)?;
        let victim = self.sealed.swap_remove(victim_pos);
        let victim_idx = device.geometry().index_for_block(victim);
        self.gcs += 1;

        // Migrate live pages, chained serially on the GC thread.
        let live: Vec<(u32, u64)> = self
            .rmap
            .get(victim_idx as usize)
            .and_then(|p| p.as_ref())
            .map(|pages| {
                pages
                    .iter()
                    .enumerate()
                    .filter_map(|(p, lpn)| lpn.map(|l| (p as u32, l)))
                    .collect()
            })
            .unwrap_or_default();
        let mut t = now;
        let page_bytes = device.geometry().page_bytes;
        for (page, lpn) in live {
            let src = FlashAddr::new(victim, page);
            t = self.retried_read(t, device, src, lpn, page_bytes)?;
            // Re-drive the migration program until it verifies; the
            // source copy stays valid until the new one lands.
            let mut redrives = 0;
            loop {
                let dest = self.next_slot(device, t)?;
                let report = device.program_migrate(t, dest, lpn)?;
                if report.failed {
                    self.write_redrives += 1;
                    self.seal_active(dest);
                    redrives += 1;
                    if redrives >= MAX_WRITE_REDRIVES {
                        return Err(Error::FlashProtocol(format!(
                            "GC migration of lpn {lpn} still failing after \
                             {MAX_WRITE_REDRIVES} re-drives"
                        )));
                    }
                    continue;
                }
                if device.page_is_corrupt(src) {
                    // GC must not launder corruption: the moved copy is
                    // byte-identical to the source, checksum mismatch
                    // included.
                    device.mark_page_corrupt(FlashAddr::new(dest, report.page))?;
                }
                device.invalidate(src);
                self.record_mapping(device, lpn, FlashAddr::new(dest, report.page));
                if let Some(rain) = self.rain.as_mut() {
                    rain.note_program(report.done, device, dest)?;
                }
                t = report.done;
                break;
            }
            self.pages_migrated += 1;
        }
        let erase = device.erase(t, victim)?;
        self.rmap[victim_idx as usize] = None;
        // A failed erase (or earlier failed program) retires the block.
        match device.block(victim) {
            Some(b) if b.is_failed() => {
                self.allocator.retire(victim_idx);
                self.blocks_retired += 1;
            }
            b => {
                let wear = b.map(|blk| blk.erase_count()).unwrap_or(0);
                self.allocator.release(victim_idx, wear);
            }
        }
        if let Some(ck) = self.checkpoint.as_mut() {
            ck.note_touched(victim_idx);
        }
        Ok(erase.done)
    }

    /// Rebuilds the mapping tables after a power loss.
    ///
    /// Call after [`FlashDevice::power_loss`]: the page map, reverse map,
    /// sealed list and per-channel active blocks are reconstructed from a
    /// full-device OOB scan. Duplicate logical pages resolve by program
    /// stamp (newest intact copy wins), torn pages are discarded, dead
    /// blocks are erased back into the free pool, and the allocator is
    /// re-derived. Deterministic and idempotent: scanning the same media
    /// twice rebuilds the same mapping state.
    ///
    /// # Errors
    ///
    /// Propagates flash-protocol errors from the dead-block reclaim.
    pub fn recover(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
    ) -> Result<crate::recovery::RecoveryReport> {
        use crate::recovery;
        // The checkpoint fast path: load the newest verified checkpoint,
        // replay the journal tail, and re-scan only the blocks touched
        // since the stamp. Any verification failure falls back to the
        // full scan below — the two paths feed the identical rebuild, so
        // the fast path can only save time, never change the outcome.
        let planned = self
            .checkpoint
            .as_ref()
            .and_then(|ck| ck.plan_fast_scan(device));
        let fast_path = planned.is_some();
        let fallback = self.checkpoint.is_some() && !fast_path;
        let (scan, journal_replayed, blocks_rescanned, cycles_saved) = match planned {
            Some(f) => {
                #[cfg(debug_assertions)]
                debug_assert_eq!(
                    f.scan.blocks,
                    recovery::scan_device(device).blocks,
                    "fast-path image must equal a full scan of the same media"
                );
                (
                    f.scan,
                    f.journal_replayed,
                    f.blocks_rescanned,
                    f.cycles_saved,
                )
            }
            None => (recovery::scan_device(device), 0, 0, Cycle::ZERO),
        };
        let winners = recovery::resolve_winners(&scan.blocks);
        let candidates: u64 = scan.blocks.iter().map(|b| b.entries.len() as u64).sum();
        let geo = *device.geometry();

        self.map.clear();
        self.rmap.iter_mut().for_each(|p| *p = None);
        self.sealed.clear();
        self.active = vec![None; geo.channels];
        self.cursor = 0;

        // Winners per owning block; rebuilding map + rmap together.
        let mut live_by_block: BTreeMap<u64, Vec<(u32, u64)>> = BTreeMap::new();
        for (&lpn, &(_, addr)) in &winners {
            self.map.insert(lpn, addr);
            live_by_block
                .entry(geo.index_for_block(addr.block))
                .or_default()
                .push((addr.page, lpn));
        }

        let mut referenced = 0u64;
        let mut dead = Vec::new();
        for blk in &scan.blocks {
            let Some(live) = live_by_block.get(&blk.idx) else {
                dead.push(blk);
                continue;
            };
            referenced += 1;
            let b = device.block_mut(blk.addr)?;
            b.set_kind(BlockKind::Data);
            let mut pages = vec![None; geo.pages_per_block];
            for &(page, lpn) in live {
                b.restore_valid(page);
                pages[page as usize] = Some(lpn);
            }
            self.rmap[blk.idx as usize] = Some(pages);
            // A partial healthy block resumes in-order writes as its
            // channel's active block; everything else (full, failed, or a
            // second partial on the same channel) is sealed for GC.
            let ch = blk.addr.channel.index();
            if !blk.full && !blk.failed && self.active[ch].is_none() {
                self.active[ch] = Some(blk.addr);
            } else {
                self.sealed.push(blk.addr);
            }
        }

        let pool = recovery::rebuild_free_pool(
            device,
            &scan.blocks,
            dead,
            referenced,
            now + scan.base_cycles,
            self.allocator.policy(),
            self.allocator.retired(),
        )?;
        // Only retirements discovered by this recovery count as new; the
        // rest were already charged when they happened.
        self.blocks_retired += pool.retired_delta;
        self.allocator = pool.allocator;
        self.stale_ckpt = pool.deferred;
        let done = pool.done;
        if let Some(rain) = self.rain.as_mut() {
            // Open-stripe parity lived in SRAM (lost with power) and
            // flushed parity blocks were reclaimed by the scan just now:
            // stripes restart empty.
            rain.reset_after_recovery();
        }
        if let Some(st) = self.endurance.as_mut() {
            st.reset_after_recovery();
        }
        if let Some(h) = self.health.as_mut() {
            h.reset_after_recovery();
        }
        self.icounters.quarantined += scan.corrupt;
        if let Some(ck) = self.checkpoint.as_mut() {
            ck.reset_after_recovery();
        }
        Ok(recovery::RecoveryReport {
            pages_scanned: scan.pages_scanned,
            torn_discarded: scan.torn,
            stale_dropped: candidates - winners.len() as u64,
            blocks_erased: pool.blocks_erased,
            corrupt_quarantined: scan.corrupt,
            scan_cycles: done - now,
            fast_path,
            fallback,
            journal_replayed,
            blocks_rescanned,
            cycles_saved,
        })
    }

    /// Fences a freshly failed die: active write slots on it are dropped
    /// (the next write allocates elsewhere) and its sealed blocks leave
    /// the GC candidate list, while their live pages stay mapped — reads
    /// reconstruct from the stripe — until
    /// [`PageMapFtl::rebuild_dead_die`] migrates them. A no-op without
    /// redundancy.
    ///
    /// # Errors
    ///
    /// Infallible today; `Result` for parity with
    /// [`crate::ZngFtl::fence_dead_die`].
    pub fn fence_dead_die(&mut self, now: Cycle, device: &mut FlashDevice) -> Result<Cycle> {
        let Some(rain) = self.rain.as_mut() else {
            return Ok(now);
        };
        let mut fenced = 0u64;
        for slot in self.active.iter_mut() {
            if let Some(addr) = *slot {
                if device.die_is_dead(addr.channel, addr.die) {
                    *slot = None;
                    fenced += 1;
                }
            }
        }
        self.sealed.retain(|addr| {
            let dead = device.die_is_dead(addr.channel, addr.die);
            if dead {
                fenced += 1;
            }
            !dead
        });
        rain.fenced_blocks += fenced;
        Ok(now)
    }

    /// Migrates every logical page lost to a dead die onto healthy
    /// blocks: each is reconstructed from its surviving stripe members
    /// and re-programmed through the normal write path, then the dead
    /// blocks are retired. Returns the completion time and the pages
    /// rebuilt; a no-op without redundancy.
    ///
    /// # Errors
    ///
    /// Propagates allocation and flash-protocol errors, and
    /// [`Error::UncorrectableRead`] when a stripe has lost a second
    /// member.
    pub fn rebuild_dead_die(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
    ) -> Result<(Cycle, u64)> {
        if self.rain.is_none() {
            return Ok((now, 0));
        }
        let page_bytes = device.geometry().page_bytes;
        let mut lost: Vec<(u64, FlashAddr)> = self
            .map
            .iter()
            .filter(|(_, a)| device.die_is_dead(a.block.channel, a.block.die))
            .map(|(&l, &a)| (l, a))
            .collect();
        lost.sort_unstable();
        let mut t = now;
        let mut pages = 0u64;
        'rebuild: for (lpn, old) in lost {
            t = self
                .rain
                .as_mut()
                .expect("rebuild requires redundancy")
                .reconstruct(t, device, old, page_bytes)?;
            let mut redrives = 0;
            loop {
                let dest = match self.next_slot(device, t) {
                    Ok(d) => d,
                    // Spare pool ran dry mid-rebuild: stop and report the
                    // partial progress instead of aborting. The remaining
                    // pages stay mapped and degraded — their reads keep
                    // reconstructing from the stripe.
                    Err(Error::DeviceWornOut { .. }) | Err(Error::OutOfSpace) => break 'rebuild,
                    Err(e) => return Err(e),
                };
                let report = device.program_migrate(t, dest, lpn)?;
                if report.failed {
                    self.write_redrives += 1;
                    self.seal_active(dest);
                    redrives += 1;
                    if redrives >= MAX_WRITE_REDRIVES {
                        return Err(Error::FlashProtocol(format!(
                            "rebuild of lpn {lpn} still failing after \
                             {MAX_WRITE_REDRIVES} re-drives"
                        )));
                    }
                    continue;
                }
                device.invalidate(old);
                self.record_mapping(device, lpn, FlashAddr::new(dest, report.page));
                if let Some(rain) = self.rain.as_mut() {
                    rain.note_program(report.done, device, dest)?;
                }
                t = report.done;
                break;
            }
            pages += 1;
        }
        // A fully rebuilt dead block is entirely stale: drop its reverse
        // map and retire it so the pool never hands it out again. Blocks
        // still holding live pages (a partial rebuild that ran the pool
        // dry) keep their maps so reads keep reconstructing.
        let dead_idxs: Vec<u64> = self
            .rmap
            .iter()
            .enumerate()
            .filter_map(|(i, pages)| Some((i as u64, pages.as_ref()?)))
            .filter(|&(idx, pages)| {
                device
                    .geometry()
                    .block_for_index(idx)
                    .map(|a| device.die_is_dead(a.channel, a.die))
                    .unwrap_or(false)
                    && pages.iter().all(Option::is_none)
            })
            .map(|(idx, _)| idx)
            .collect();
        for idx in dead_idxs {
            self.rmap[idx as usize] = None;
            self.allocator.retire(idx);
            self.blocks_retired += 1;
            if let Some(rain) = self.rain.as_mut() {
                rain.fenced_blocks += 1;
            }
            if let Some(ck) = self.checkpoint.as_mut() {
                ck.note_touched(idx);
            }
        }
        if let Some(rain) = self.rain.as_mut() {
            rain.rebuild_pages += pages;
        }
        self.ckpt_sync(t, device);
        Ok((t, pages))
    }

    /// One patrol-scrub step: sense the next live page and migrate it to
    /// a fresh location when its retry depth reached the scrub threshold
    /// (or the sense needed the stripe outright). The foreground stall is
    /// capped by the configured pacing budget; the media work always
    /// completes. A no-op without redundancy.
    ///
    /// # Errors
    ///
    /// Propagates allocation and flash-protocol errors.
    pub fn scrub_step(&mut self, now: Cycle, device: &mut FlashDevice) -> Result<Cycle> {
        if self.rain.is_none() {
            return Ok(now);
        }
        let Some((addr, lpn)) = self
            .rain
            .as_mut()
            .expect("checked above")
            .scrub_scan(device)
        else {
            return Ok(now);
        };
        let page_bytes = device.geometry().page_bytes;
        let retries_before = device.stats().read_retries();
        let unc_before = device.stats().uncorrectable_reads();
        let mut t = self.retried_read(now, device, addr, lpn, page_bytes)?;
        let depth = device.stats().read_retries() - retries_before;
        let strained = device.stats().uncorrectable_reads() > unc_before;
        // The patrol validates checksums too: a corrupt page is always
        // rewritten, fed by a clean stripe reconstruction (rewriting the
        // sensed payload would just copy the corruption along).
        let corrupt = self.integrity && device.page_is_corrupt(addr);
        let config = self.rain.as_ref().expect("checked above").config();
        self.rain.as_mut().expect("checked above").scrub_scanned += 1;
        if (depth >= config.scrub_threshold as u64 || strained || corrupt)
            && self.translate(lpn) == Some(addr)
        {
            if corrupt {
                self.icounters.detected += 1;
                t = self
                    .rain
                    .as_mut()
                    .expect("checked above")
                    .reconstruct(t, device, addr, page_bytes)?;
                self.icounters.reconstructed += 1;
                self.icounters.quarantined += 1;
            }
            let mut redrives = 0;
            loop {
                let dest = self.next_slot(device, t)?;
                let report = device.program_migrate(t, dest, lpn)?;
                if report.failed {
                    self.write_redrives += 1;
                    self.seal_active(dest);
                    redrives += 1;
                    if redrives >= MAX_WRITE_REDRIVES {
                        return Err(Error::FlashProtocol(format!(
                            "scrub rewrite of lpn {lpn} still failing after \
                             {MAX_WRITE_REDRIVES} re-drives"
                        )));
                    }
                    continue;
                }
                device.invalidate(addr);
                self.record_mapping(device, lpn, FlashAddr::new(dest, report.page));
                if let Some(rain) = self.rain.as_mut() {
                    rain.note_program(report.done, device, dest)?;
                }
                t = report.done;
                break;
            }
            self.rain.as_mut().expect("checked above").scrub_rewrites += 1;
        }
        let capped = match config.pacing {
            Some(p) if t > p.deadline(now) => {
                self.rain.as_mut().expect("checked above").scrub_overruns += 1;
                p.deadline(now)
            }
            _ => t,
        };
        self.ckpt_sync(t, device);
        Ok(capped)
    }

    /// Converts an end-of-life allocator failure into the graceful
    /// [`Error::CapacityDegraded`] step when endurance management is on;
    /// passes every other error — and the baseline's hard cliff — through
    /// untouched.
    fn degrade_worn(&mut self, e: Error) -> Error {
        let mapped = self.map.len() as u64;
        match self.endurance.as_mut() {
            Some(st) => st.degrade(e, mapped),
            None => e,
        }
    }

    /// One endurance step, run between demand requests: walk the refresh
    /// cursor and relocate the first sealed block whose disturb count or
    /// retention age crossed its threshold (verified reads → re-program →
    /// remap → erase, which resets both clocks); with no refresh
    /// candidate, run one static-levelling migration when the device
    /// wear spread exceeds the configured ratio. The foreground stall is
    /// capped by the policy's pacing budget; the media work always
    /// completes. A no-op without an endurance policy.
    ///
    /// At end of life a step that cannot allocate a destination block is
    /// skipped, not surfaced — the data is no safer anywhere else, the
    /// mapping stays consistent, and capacity degradation is the write
    /// path's to report.
    ///
    /// # Errors
    ///
    /// Propagates flash-protocol errors.
    pub fn refresh_step(&mut self, now: Cycle, device: &mut FlashDevice) -> Result<Cycle> {
        let Some(st) = self.endurance.as_mut() else {
            return Ok(now);
        };
        if let Some((addr, reason)) = st.scan_candidate(device, now) {
            // An active block is mid-write (in-order programming can't be
            // disturbed); it seals soon and refreshes on a later pass.
            let idx = device.geometry().index_for_block(addr);
            if self.active.contains(&Some(addr)) || self.rmap[idx as usize].is_none() {
                return Ok(now);
            }
            self.sealed.retain(|a| *a != addr);
            let (done, pages) = match self.relocate_block(now, device, addr, None) {
                Ok(r) => r,
                Err(Error::DeviceWornOut { .. }) => {
                    // No spare to refresh into; the victim keeps serving
                    // (and stays tracked) until capacity frees up.
                    self.sealed.push(addr);
                    return Ok(now);
                }
                Err(e) => return Err(e),
            };
            let st = self.endurance.as_mut().expect("checked above");
            st.note_refresh(reason, pages);
            let paced = st.pace(now, done);
            self.ckpt_sync(done, device);
            return Ok(paced);
        }
        if self
            .endurance
            .as_ref()
            .expect("checked above")
            .wants_levelling(device)
        {
            let done = match self.level_step(now, device) {
                Ok(done) => done,
                Err(Error::DeviceWornOut { .. }) => now,
                Err(e) => return Err(e),
            };
            let paced = self
                .endurance
                .as_mut()
                .expect("checked above")
                .pace(now, done);
            self.ckpt_sync(done, device);
            return Ok(paced);
        }
        Ok(now)
    }

    /// One predictive-health step, run by the SSD engine between demand
    /// requests: advance the degrading-die clock, fence + rebuild any
    /// die that died since the last tick (once per death), score the
    /// per-die telemetry (flagging new suspects into quarantine and
    /// rehabilitating false positives, whose parked blocks rejoin the
    /// pool), and — when evacuation is on — relocate one victim block's
    /// live pages off a suspect die onto healthy spares. The relocation
    /// reuses the refresh machinery, so it is journalled,
    /// checkpoint-aware and never launders corrupt pages. The foreground
    /// stall is capped by the policy's pacing budget; the media work
    /// always completes. A no-op without a health policy.
    ///
    /// A step that cannot allocate a destination (no healthy spares) is
    /// skipped, not surfaced: the data is no safer anywhere else and a
    /// later step retries.
    ///
    /// # Errors
    ///
    /// Propagates flash-protocol errors.
    pub fn health_step(&mut self, now: Cycle, device: &mut FlashDevice) -> Result<Cycle> {
        if self.health.is_none() {
            return Ok(now);
        }
        // A quiet device never reaches its own lazy death check: advance
        // the degrading-die clock here so the monitor sees the death.
        device.degrade_tick(now);
        self.health.as_mut().expect("checked above").counters.ticks += 1;
        let mut t = now;

        // Dies that died since the last tick: fence + rebuild, once each.
        let newly_dead: Vec<(u16, u16)> = device
            .dead_dies()
            .iter()
            .copied()
            .filter(|&key| self.health.as_mut().expect("checked above").note_dead(key))
            .collect();
        for _ in newly_dead {
            t = self.fence_dead_die(t, device)?;
            let (done, _pages) = self.rebuild_dead_die(t, device)?;
            t = done;
        }

        // Score the telemetry; rehabilitated dies get their parked
        // blocks back (with their real wear, for levelling).
        let snapshot = device.stats().die_health_sorted();
        let dead: Vec<(u16, u16)> = device.dead_dies().to_vec();
        let rehabbed = self
            .health
            .as_mut()
            .expect("checked above")
            .observe(&snapshot, &dead);
        for key in rehabbed {
            let parked = self.health.as_mut().expect("checked above").unpark(key);
            for idx in parked {
                let wear = device
                    .geometry()
                    .block_for_index(idx)
                    .ok()
                    .and_then(|a| device.block(a))
                    .map(|b| b.erase_count())
                    .unwrap_or(0);
                self.allocator.release(idx, wear);
            }
        }

        if self.health.as_ref().expect("checked above").policy.evacuate {
            // Stop the stripe cursors from landing new writes on a
            // suspect: seal active blocks sitting on quarantined dies.
            let quarantined: Vec<BlockAddr> = self
                .active
                .iter()
                .flatten()
                .copied()
                .filter(|a| {
                    self.health
                        .as_ref()
                        .expect("checked above")
                        .is_quarantined((a.channel.index() as u16, a.die.index() as u16))
                })
                .collect();
            for addr in quarantined {
                self.seal_active(addr);
            }
            match self.next_evacuation_victim(device) {
                Some(victim) => {
                    self.sealed.retain(|a| *a != victim);
                    match self.relocate_block(t, device, victim, None) {
                        Ok((done, pages)) => {
                            self.health
                                .as_mut()
                                .expect("checked above")
                                .note_evacuated(pages);
                            t = done;
                        }
                        Err(Error::DeviceWornOut { .. }) | Err(Error::OutOfSpace) => {
                            // No healthy spares: the victim keeps serving
                            // (and stays tracked) until capacity frees up.
                            self.sealed.push(victim);
                        }
                        Err(e) => return Err(e),
                    }
                }
                None => {
                    // Nothing live remains on any quarantined die: its
                    // eventual death can no longer cost a single read.
                    let h = self.health.as_mut().expect("checked above");
                    for key in h.quarantined() {
                        h.mark_evacuated(key);
                    }
                }
            }
        }
        let paced = self.health.as_mut().expect("checked above").pace(now, t);
        self.ckpt_sync(t, device);
        Ok(paced)
    }

    /// The lowest-indexed block holding live pages on a quarantined
    /// (but not dead) die, if any — the next evacuation victim.
    fn next_evacuation_victim(&self, device: &FlashDevice) -> Option<BlockAddr> {
        let h = self.health.as_ref()?;
        // Index order is ascending-block order: no sort needed.
        let idxs: Vec<u64> = self
            .rmap
            .iter()
            .enumerate()
            .filter(|(_, pages)| {
                pages
                    .as_ref()
                    .is_some_and(|pages| pages.iter().any(Option::is_some))
            })
            .map(|(idx, _)| idx as u64)
            .collect();
        for idx in idxs {
            let Ok(addr) = device.geometry().block_for_index(idx) else {
                continue;
            };
            if device.die_is_dead(addr.channel, addr.die) {
                continue;
            }
            if h.is_quarantined((addr.channel.index() as u16, addr.die.index() as u16))
                && !self.active.contains(&Some(addr))
            {
                return Some(addr);
            }
        }
        None
    }

    /// One static-levelling migration: the coldest sealed block (lowest
    /// erase count, holding live pages) is relocated into the most-worn
    /// spare block, and its freed low-wear cells rejoin the allocation
    /// pool where the wear-levelled allocator hands them to hot traffic.
    /// A no-op when the recycled pool is empty (a fresh block has zero
    /// wear — migrating cold data onto it would widen the spread) or no
    /// eligible victim exists.
    fn level_step(&mut self, now: Cycle, device: &mut FlashDevice) -> Result<Cycle> {
        if self.allocator.recycled_available() == 0 {
            return Ok(now);
        }
        let victim = self
            .sealed
            .iter()
            .copied()
            .filter(|&a| {
                !device.die_is_dead(a.channel, a.die)
                    && device.block(a).is_some_and(|b| !b.is_failed())
                    && self
                        .rmap
                        .get(device.geometry().index_for_block(a) as usize)
                        .and_then(|p| p.as_ref())
                        .is_some_and(|pages| pages.iter().any(Option::is_some))
            })
            .min_by_key(|&a| {
                let wear = device.block(a).map(|b| b.erase_count()).unwrap_or(0);
                (wear, device.geometry().index_for_block(a))
            });
        let Some(victim) = victim else {
            return Ok(now);
        };
        let dest = self.fresh_block_with(device, now, true)?;
        self.sealed.retain(|a| *a != victim);
        let (done, pages) = match self.relocate_block(now, device, victim, Some(dest)) {
            Ok(r) => r,
            Err(e @ Error::DeviceWornOut { .. }) => {
                // Keep the partially drained victim tracked; the caller
                // skips the step.
                self.sealed.push(victim);
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        if let Some(st) = self.endurance.as_mut() {
            st.note_levelling(pages);
        }
        Ok(done)
    }

    /// Migrates every live page of `victim` (verified reads with the
    /// retry/reconstruction ladder; corrupt flags move along, never
    /// laundered), then erases the victim and returns it to the pool.
    /// Pages land in `dest` while it has room (the static leveler's
    /// worn-block destination), overflowing into the normal striped
    /// write path; `None` uses the striped path throughout. The caller
    /// must have removed `victim` from the sealed list.
    fn relocate_block(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        victim: BlockAddr,
        dest: Option<BlockAddr>,
    ) -> Result<(Cycle, u64)> {
        let victim_idx = device.geometry().index_for_block(victim);
        let live: Vec<(u32, u64)> = self
            .rmap
            .get(victim_idx as usize)
            .and_then(|p| p.as_ref())
            .map(|pages| {
                pages
                    .iter()
                    .enumerate()
                    .filter_map(|(p, lpn)| lpn.map(|l| (p as u32, l)))
                    .collect()
            })
            .unwrap_or_default();
        let mut t = now;
        let mut moved = 0u64;
        let page_bytes = device.geometry().page_bytes;
        for (page, lpn) in live {
            let src = FlashAddr::new(victim, page);
            t = self.retried_read(t, device, src, lpn, page_bytes)?;
            let mut redrives = 0;
            loop {
                let target = match dest {
                    Some(d)
                        if device
                            .block(d)
                            .is_some_and(|b| !b.is_full() && !b.is_failed()) =>
                    {
                        d
                    }
                    _ => self.next_slot(device, t)?,
                };
                let report = device.program_migrate(t, target, lpn)?;
                if report.failed {
                    self.write_redrives += 1;
                    // A burned striped block is sealed for salvage; a
                    // burned dedicated destination just stops accepting
                    // (it joins the sealed list below for GC to retire).
                    if Some(target) != dest {
                        self.seal_active(target);
                    }
                    redrives += 1;
                    if redrives >= MAX_WRITE_REDRIVES {
                        return Err(Error::FlashProtocol(format!(
                            "relocation of lpn {lpn} still failing after \
                             {MAX_WRITE_REDRIVES} re-drives"
                        )));
                    }
                    continue;
                }
                if device.page_is_corrupt(src) {
                    // Relocation must not launder corruption: the moved
                    // copy is byte-identical, checksum mismatch included.
                    device.mark_page_corrupt(FlashAddr::new(target, report.page))?;
                }
                device.invalidate(src);
                self.record_mapping(device, lpn, FlashAddr::new(target, report.page));
                if let Some(rain) = self.rain.as_mut() {
                    rain.note_program(report.done, device, target)?;
                }
                t = report.done;
                break;
            }
            moved += 1;
        }
        let erase = device.erase(t, victim)?;
        self.rmap[victim_idx as usize] = None;
        match device.block(victim) {
            Some(b) if b.is_failed() => {
                self.allocator.retire(victim_idx);
                self.blocks_retired += 1;
            }
            b => {
                let wear = b.map(|blk| blk.erase_count()).unwrap_or(0);
                self.allocator.release(victim_idx, wear);
            }
        }
        if let Some(ck) = self.checkpoint.as_mut() {
            ck.note_touched(victim_idx);
        }
        if let Some(d) = dest {
            // The dedicated destination is sealed (partial or full): GC
            // sees it, and a burned one gets retired at its next erase.
            self.sealed.push(d);
        }
        Ok((erase.done, moved))
    }

    /// Garbage collections performed.
    pub fn gcs(&self) -> u64 {
        self.gcs
    }

    /// Pages migrated by GC (write amplification numerator).
    pub fn pages_migrated(&self) -> u64 {
        self.pages_migrated
    }

    /// Mapped logical pages.
    pub fn mapped(&self) -> usize {
        self.map.len()
    }

    /// Blocks permanently retired after failed programs/erases.
    pub fn blocks_retired(&self) -> u64 {
        self.blocks_retired
    }

    /// Writes re-driven to a new block after a program failure.
    pub fn write_redrives(&self) -> u64 {
        self.write_redrives
    }

    /// Free blocks (fresh + recycled) in the allocator's pool.
    pub fn free_blocks(&self) -> u64 {
        self.allocator.free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zng_flash::{FlashGeometry, RegisterTopology};
    use zng_types::Freq;

    fn setup() -> (FlashDevice, PageMapFtl) {
        let d = FlashDevice::zng_config(
            FlashGeometry::tiny(),
            Freq::default(),
            RegisterTopology::Private,
        )
        .unwrap();
        let f = PageMapFtl::new(&d);
        (d, f)
    }

    #[test]
    fn write_then_read() {
        let (mut d, mut f) = setup();
        let t = f.write_page(Cycle(0), &mut d, 42).unwrap();
        assert!(t >= Cycle(120_000));
        let addr = f.translate(42).expect("mapped");
        let r = f.read_page(t, &mut d, 42, 4096).unwrap();
        assert!(r > t);
        assert_eq!(f.translate(42), Some(addr));
    }

    #[test]
    fn overwrite_remaps_and_invalidates() {
        let (mut d, mut f) = setup();
        f.write_page(Cycle(0), &mut d, 1).unwrap();
        let first = f.translate(1).unwrap();
        f.write_page(Cycle(0), &mut d, 1).unwrap();
        let second = f.translate(1).unwrap();
        assert_ne!(first, second);
        let b = d.block(first.block).unwrap();
        assert!(!b.is_valid(first.page), "old copy must be stale");
    }

    #[test]
    fn reads_install_initial_data_for_free() {
        let (mut d, mut f) = setup();
        let t = f.read_page(Cycle(0), &mut d, 99, 128).unwrap();
        // Only the read cost, no program cost (data pre-resided).
        assert!(t < Cycle(120_000), "{t}");
        assert!(f.translate(99).is_some());
        assert_eq!(f.mapped(), 1);
    }

    #[test]
    fn page_striping_spreads_channels() {
        let (mut d, mut f) = setup();
        f.write_page(Cycle(0), &mut d, 1).unwrap();
        f.write_page(Cycle(0), &mut d, 2).unwrap();
        let a = f.translate(1).unwrap();
        let b = f.translate(2).unwrap();
        assert_ne!(a.block.channel, b.block.channel);
    }

    #[test]
    fn gc_reclaims_space_under_churn() {
        let (mut d, mut f) = setup();
        // tiny geometry: 4*2*2*64 = 1024 blocks x 16 pages = 16384 pages.
        // Overwrite a small working set far beyond capacity.
        let mut t = Cycle(0);
        for i in 0..40_000u64 {
            t = f.write_page(t, &mut d, i % 256).unwrap();
        }
        assert!(f.gcs() > 0, "GC must have run");
        assert!(f.pages_migrated() < 40_000, "migration is bounded");
        // All 256 logical pages still readable.
        for lpn in 0..256 {
            assert!(f.translate(lpn).is_some());
            f.read_page(t, &mut d, lpn, 128).unwrap();
        }
    }

    #[test]
    fn eol_churn_wears_out_gracefully() {
        let (mut d, mut f) = setup();
        d.set_fault_config(&zng_flash::FaultConfig::end_of_life());
        let mut t = Cycle(0);
        let mut worn = false;
        for i in 0..400_000u64 {
            match f.write_page(t, &mut d, i % 256) {
                Ok(done) => t = done,
                Err(Error::DeviceWornOut { retired_blocks }) => {
                    assert!(retired_blocks > 0);
                    worn = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(worn, "sustained EOL churn must wear the device out");
        assert!(f.blocks_retired() > 0);
        assert!(f.write_redrives() > 0);
    }

    #[test]
    fn refresh_relocates_aged_blocks_and_stays_readable() {
        use crate::refresh::RefreshPolicy;
        let (mut d, mut f) = setup();
        f.set_endurance(Some(RefreshPolicy {
            disturb_threshold: 0,
            retention_threshold: 1_000_000,
            wear_spread: 0.0,
            pacing: None,
        }));
        let t = f.write_page(Cycle(0), &mut d, 42).unwrap();
        let addr = f.translate(42).unwrap();
        f.seal_active(addr.block);
        // Long idle: the copy ages past the retention threshold.
        let mut t = t + Cycle(10_000_000);
        for _ in 0..64 {
            t = f.refresh_step(t, &mut d).unwrap();
            if f.endurance_counters().unwrap().refreshes > 0 {
                break;
            }
        }
        let c = f.endurance_counters().unwrap();
        assert_eq!(c.refreshes, 1, "the aged block must refresh");
        assert_eq!(c.retention_refreshes, 1);
        let moved = f.translate(42).unwrap();
        assert_ne!(moved.block, addr.block, "data moved to fresh cells");
        f.read_page(t, &mut d, 42, 128).unwrap();
        // The victim was erased back into the pool: nothing maps to it.
        assert!(d
            .block(addr.block)
            .is_some_and(|b| !b.is_programmed(addr.page)));
    }

    #[test]
    fn endurance_turns_worn_out_cliff_into_capacity_steps() {
        use crate::refresh::RefreshPolicy;
        let (mut d, mut f) = setup();
        d.set_fault_config(&zng_flash::FaultConfig::end_of_life());
        f.set_endurance(Some(RefreshPolicy {
            disturb_threshold: 0,
            retention_threshold: 0,
            wear_spread: 0.0,
            pacing: None,
        }));
        let mut t = Cycle(0);
        let mut degraded = None;
        for i in 0..400_000u64 {
            match f.write_page(t, &mut d, i % 256) {
                Ok(done) => t = done,
                Err(Error::CapacityDegraded { remaining_pages }) => {
                    degraded = Some(remaining_pages);
                    break;
                }
                Err(Error::DeviceWornOut { .. }) => {
                    panic!("endurance mode must degrade the cliff away")
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let remaining = degraded.expect("sustained EOL churn must exhaust the pool");
        assert!(remaining > 0, "mapped data remains advertised");
        assert_eq!(f.endurance_counters().unwrap().capacity_steps, 1);
        for lpn in 0..256u64 {
            if f.translate(lpn).is_none() {
                continue; // never successfully acked under EOL faults
            }
            match f.read_page(t, &mut d, lpn, 128) {
                Ok(_) | Err(Error::UncorrectableRead { .. }) => {}
                Err(e) => panic!("read of acked lpn {lpn} failed: {e}"),
            }
        }
    }

    #[test]
    fn recovery_rebuilds_map_after_power_loss() {
        let (mut d, mut f) = setup();
        let mut t = Cycle(0);
        for i in 0..500u64 {
            t = f.write_page(t, &mut d, i % 64).unwrap();
        }
        let before: Vec<_> = (0..64u64).map(|l| f.translate(l)).collect();
        // `t` is the last program's completion, so nothing is in flight.
        d.power_loss(t);
        let rep = f.recover(t, &mut d).unwrap();
        assert!(rep.pages_scanned >= 500);
        assert!(rep.stale_dropped > 0, "overwrites left stale versions");
        assert_eq!(rep.torn_discarded, 0);
        let after: Vec<_> = (0..64u64).map(|l| f.translate(l)).collect();
        assert_eq!(before, after, "mappings survive the crash exactly");
        for l in 0..64u64 {
            f.read_page(t + rep.scan_cycles, &mut d, l, 128).unwrap();
        }
        f.write_page(t + rep.scan_cycles, &mut d, 7).unwrap();
    }

    #[test]
    fn recovery_rolls_torn_write_back_to_previous_copy() {
        let (mut d, mut f) = setup();
        let t1 = f.write_page(Cycle(0), &mut d, 9).unwrap();
        let a1 = f.translate(9).unwrap();
        // Second write of the same page is cut mid-program.
        f.write_page(t1, &mut d, 9).unwrap();
        let cut = t1 + Cycle(1);
        let lost = d.power_loss(cut);
        assert_eq!(lost.pages_torn, 1);
        let rep = f.recover(cut, &mut d).unwrap();
        assert_eq!(rep.torn_discarded, 1);
        assert_eq!(f.translate(9), Some(a1), "rolls back to the acked copy");
        f.read_page(cut + rep.scan_cycles, &mut d, 9, 128).unwrap();
    }

    #[test]
    fn recovery_is_idempotent_under_midflight_cut() {
        let (mut d, mut f) = setup();
        let mut t = Cycle(0);
        for i in 0..300u64 {
            t = f.write_page(t, &mut d, i % 64).unwrap();
        }
        let cut = t - Cycle(60_000); // the last program is mid-flight
        d.power_loss(cut);
        f.recover(cut, &mut d).unwrap();
        let first: Vec<_> = (0..64u64).map(|l| f.translate(l)).collect();
        let free = f.free_blocks();
        // Crash during recovery, recover again: same mapping state.
        d.power_loss(cut);
        f.recover(cut, &mut d).unwrap();
        let second: Vec<_> = (0..64u64).map(|l| f.translate(l)).collect();
        assert_eq!(first, second);
        assert_eq!(f.free_blocks(), free);
    }

    fn ckpt_cfg(journal_cap: u64) -> crate::checkpoint::CheckpointConfig {
        crate::checkpoint::CheckpointConfig {
            every_ops: 100,
            journal_cap,
            pacing: None,
        }
    }

    /// The first checkpoint-tagged page on media (for fault injection).
    fn first_checkpoint_page(d: &FlashDevice) -> zng_types::addr::FlashAddr {
        let total = d.geometry().total_blocks() as u64;
        for idx in 0..total {
            let addr = d.geometry().block_for_index(idx).unwrap();
            let b = d.block(addr).unwrap();
            if b.kind() == zng_flash::BlockKind::Checkpoint && b.programmed_pages() > 0 {
                return zng_types::addr::FlashAddr::new(addr, 0);
            }
        }
        panic!("no checkpoint block written yet");
    }

    #[test]
    fn checkpointed_recovery_takes_the_fast_path_and_matches_full_scan() {
        let (mut d, mut f) = setup();
        f.set_checkpointing(Some(ckpt_cfg(0)));
        let mut t = Cycle(0);
        for i in 0..400u64 {
            t = f.write_page(t, &mut d, i % 64).unwrap();
        }
        t = f.checkpoint_step(t, &mut d);
        // Enough post-checkpoint churn to flush at least one journal
        // page (remaps batch up; a full batch forces a flush).
        for i in 0..200u64 {
            t = f.write_page(t, &mut d, i % 16).unwrap();
        }
        // Clone the crashed state: one twin recovers fast, the other is
        // stripped of its checkpoint and must full-scan the same media.
        d.power_loss(t);
        let (mut d2, mut f2) = (d.clone(), f.clone());
        f2.set_checkpointing(None);
        let rep = f.recover(t, &mut d).unwrap();
        assert!(rep.fast_path && !rep.fallback, "{rep:?}");
        assert!(rep.journal_replayed > 0, "{rep:?}");
        assert!(rep.blocks_rescanned > 0, "{rep:?}");
        let full = f2.recover(t, &mut d2).unwrap();
        assert!(!full.fast_path && !full.fallback, "{full:?}");
        let a: Vec<_> = (0..64u64).map(|l| f.translate(l)).collect();
        let b: Vec<_> = (0..64u64).map(|l| f2.translate(l)).collect();
        assert_eq!(a, b, "fast path rebuilds the exact full-scan mapping");
        assert_eq!(f.free_blocks(), f2.free_blocks());
    }

    #[test]
    fn crash_before_first_checkpoint_full_scans() {
        let (mut d, mut f) = setup();
        f.set_checkpointing(Some(ckpt_cfg(0)));
        let mut t = Cycle(0);
        for i in 0..100u64 {
            t = f.write_page(t, &mut d, i % 32).unwrap();
        }
        d.power_loss(t);
        let rep = f.recover(t, &mut d).unwrap();
        assert!(!rep.fast_path && rep.fallback, "{rep:?}");
        for l in 0..32u64 {
            assert!(f.translate(l).is_some());
        }
    }

    #[test]
    fn corrupt_checkpoint_page_forces_clean_fallback() {
        let (mut d, mut f) = setup();
        f.set_checkpointing(Some(ckpt_cfg(0)));
        let mut t = Cycle(0);
        for i in 0..200u64 {
            t = f.write_page(t, &mut d, i % 64).unwrap();
        }
        t = f.checkpoint_step(t, &mut d);
        let before: Vec<_> = (0..64u64).map(|l| f.translate(l)).collect();
        d.mark_page_corrupt(first_checkpoint_page(&d)).unwrap();
        d.power_loss(t);
        let rep = f.recover(t, &mut d).unwrap();
        assert!(!rep.fast_path && rep.fallback, "{rep:?}");
        let after: Vec<_> = (0..64u64).map(|l| f.translate(l)).collect();
        assert_eq!(before, after, "the fallback still rebuilds everything");
    }

    #[test]
    fn dead_die_under_checkpoint_forces_fallback() {
        let (mut d, mut f) = setup();
        f.set_checkpointing(Some(ckpt_cfg(0)));
        let mut t = Cycle(0);
        for i in 0..200u64 {
            t = f.write_page(t, &mut d, i % 64).unwrap();
        }
        t = f.checkpoint_step(t, &mut d);
        let ck = first_checkpoint_page(&d);
        d.fail_die(ck.block.channel, ck.block.die);
        d.power_loss(t);
        let rep = f.recover(t, &mut d).unwrap();
        assert!(!rep.fast_path && rep.fallback, "{rep:?}");
    }

    #[test]
    fn journal_overflow_forces_fallback() {
        let (mut d, mut f) = setup();
        f.set_checkpointing(Some(ckpt_cfg(8)));
        let mut t = Cycle(0);
        for i in 0..100u64 {
            t = f.write_page(t, &mut d, i % 32).unwrap();
        }
        t = f.checkpoint_step(t, &mut d);
        // Far more map mutations than the cap: the journal overflows and
        // the epoch stops being trustworthy.
        for i in 0..200u64 {
            t = f.write_page(t, &mut d, i % 32).unwrap();
        }
        let c = f.checkpoint_counters().unwrap();
        assert!(c.journal_overflows > 0, "{c:?}");
        d.power_loss(t);
        let rep = f.recover(t, &mut d).unwrap();
        assert!(!rep.fast_path && rep.fallback, "{rep:?}");
        for l in 0..32u64 {
            assert!(f.translate(l).is_some());
        }
    }

    #[test]
    fn recovery_resets_the_epoch_and_the_next_checkpoint_restores_the_fast_path() {
        let (mut d, mut f) = setup();
        f.set_checkpointing(Some(ckpt_cfg(0)));
        let mut t = Cycle(0);
        for i in 0..200u64 {
            t = f.write_page(t, &mut d, i % 64).unwrap();
        }
        t = f.checkpoint_step(t, &mut d);
        d.power_loss(t);
        let rep = f.recover(t, &mut d).unwrap();
        assert!(rep.fast_path, "{rep:?}");
        // The epoch died with the crash: a second cut right away must
        // full-scan, but a fresh checkpoint re-arms the fast path.
        d.power_loss(t + rep.scan_cycles);
        let rep2 = f.recover(t + rep.scan_cycles, &mut d).unwrap();
        assert!(!rep2.fast_path && rep2.fallback, "{rep2:?}");
        let mut t2 = t + rep.scan_cycles + rep2.scan_cycles;
        for i in 0..50u64 {
            t2 = f.write_page(t2, &mut d, i % 16).unwrap();
        }
        t2 = f.checkpoint_step(t2, &mut d);
        d.power_loss(t2);
        let rep3 = f.recover(t2, &mut d).unwrap();
        assert!(rep3.fast_path, "{rep3:?}");
    }

    #[test]
    fn integrity_off_serves_corrupt_pages_unchanged() {
        let (mut d, mut f) = setup();
        let t = f.write_page(Cycle(0), &mut d, 5).unwrap();
        let addr = f.translate(5).unwrap();
        d.mark_page_corrupt(addr).unwrap();
        // Baseline semantics: without the opt-in there is no checksum to
        // fail, so the corrupt payload flows through silently.
        f.read_page(t, &mut d, 5, 128).unwrap();
        assert_eq!(f.integrity_counters(), IntegrityCounters::default());
    }

    #[test]
    fn integrity_read_fails_loudly_without_redundancy() {
        let (mut d, mut f) = setup();
        f.set_integrity(true);
        let t = f.write_page(Cycle(0), &mut d, 5).unwrap();
        let addr = f.translate(5).unwrap();
        d.mark_page_corrupt(addr).unwrap();
        match f.read_page(t, &mut d, 5, 128) {
            Err(Error::IntegrityViolation { .. }) => {}
            other => panic!("expected IntegrityViolation, got {other:?}"),
        }
        let c = f.integrity_counters();
        assert_eq!(c.detected, 1);
        assert_eq!(c.rereads, 1, "one charged re-read before giving up");
        assert_eq!(c.reconstructed, 0);
    }

    #[test]
    fn integrity_read_reconstructs_and_heals_with_redundancy() {
        let (mut d, mut f) = setup();
        f.set_redundancy(&d, Some(RainConfig::default()));
        f.set_integrity(true);
        let t = f.write_page(Cycle(0), &mut d, 5).unwrap();
        let addr = f.translate(5).unwrap();
        d.mark_page_corrupt(addr).unwrap();
        let t = f.read_page(t, &mut d, 5, 128).unwrap();
        let c = f.integrity_counters();
        assert_eq!(c.detected, 1);
        assert_eq!(c.reconstructed, 1);
        assert_eq!(c.quarantined, 1);
        // Healed: the lpn now maps to a clean copy; re-reading it detects
        // nothing new.
        let healed = f.translate(5).unwrap();
        assert_ne!(healed, addr);
        assert!(!d.page_is_corrupt(healed));
        f.read_page(t, &mut d, 5, 128).unwrap();
        assert_eq!(f.integrity_counters().detected, 1);
    }

    #[test]
    fn gc_never_launders_corruption() {
        let (mut d, mut f) = setup();
        f.set_integrity(true);
        let t = f.write_page(Cycle(0), &mut d, 5).unwrap();
        let addr = f.translate(5).unwrap();
        d.mark_page_corrupt(addr).unwrap();
        // Seal the stricken block and migrate its one live page.
        f.seal_active(addr.block);
        let t = f.gc(t, &mut d).unwrap();
        let moved = f.translate(5).unwrap();
        assert_ne!(moved.block, addr.block);
        assert!(
            d.page_is_corrupt(moved),
            "the migrated copy carries the bad checksum along"
        );
        // The verified read still refuses to serve it.
        assert!(matches!(
            f.read_page(t, &mut d, 5, 128),
            Err(Error::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn rebuild_reports_partial_progress_when_spares_run_dry() {
        use zng_types::ids::{ChannelId, DieId};
        let (mut d, mut f) = setup();
        f.set_redundancy(&d, Some(RainConfig::default()));
        let mut t = Cycle(0);
        for lpn in 0..2048u64 {
            t = f.write_page(t, &mut d, lpn).unwrap();
        }
        d.fail_die(ChannelId(0), DieId(0));
        let lost: Vec<u64> = f
            .map
            .iter()
            .filter(|(_, a)| d.die_is_dead(a.block.channel, a.block.die))
            .map(|(&l, _)| l)
            .collect();
        assert!(lost.len() > 64, "striping must strand many pages");
        // Starve the spare pool so the rebuild runs dry part-way through
        // (the active write heads only hold a few dozen free slots).
        let mut drained = Vec::new();
        while f.allocator.free() > 0 {
            drained.push(f.allocator.allocate().unwrap());
        }
        let (t, pages) = f
            .rebuild_dead_die(t, &mut d)
            .expect("a dry spare pool must not abort the rebuild");
        assert!(
            pages < lost.len() as u64,
            "the dry pool must stop the rebuild part-way ({pages} pages)"
        );
        // Stranded pages stay mapped and readable via reconstruction.
        let stranded: Vec<u64> = lost
            .iter()
            .copied()
            .filter(|l| {
                let a = f.map[l];
                d.die_is_dead(a.block.channel, a.block.die)
            })
            .collect();
        assert!(!stranded.is_empty(), "some pages must still await spares");
        let mut t = t;
        for &lpn in &stranded {
            t = f.read_page(t, &mut d, lpn, 128).unwrap();
        }
        // Once spares return, a second pass finishes the job.
        for idx in drained {
            f.allocator.release(idx, 0);
        }
        let (_, more) = f.rebuild_dead_die(t, &mut d).unwrap();
        assert!(more > 0, "the resumed rebuild must make progress");
        assert!(
            f.map
                .values()
                .all(|a| !d.die_is_dead(a.block.channel, a.block.die)),
            "a resumed rebuild moves everything off the dead die"
        );
    }

    #[test]
    fn recovery_quarantines_corrupt_copies() {
        let (mut d, mut f) = setup();
        f.set_integrity(true);
        let t1 = f.write_page(Cycle(0), &mut d, 9).unwrap();
        let a1 = f.translate(9).unwrap();
        let t2 = f.write_page(t1, &mut d, 9).unwrap();
        let a2 = f.translate(9).unwrap();
        d.mark_page_corrupt(a2).unwrap();
        d.power_loss(t2);
        let rep = f.recover(t2, &mut d).unwrap();
        assert_eq!(rep.corrupt_quarantined, 1);
        assert_eq!(f.integrity_counters().quarantined, 1);
        assert_eq!(
            f.translate(9),
            Some(a1),
            "rolls back to the newest intact copy"
        );
        f.read_page(t2 + rep.scan_cycles, &mut d, 9, 128).unwrap();
    }

    #[test]
    fn nominal_faults_keep_data_readable_under_churn() {
        let (mut d, mut f) = setup();
        d.set_fault_config(&zng_flash::FaultConfig::nominal());
        let mut t = Cycle(0);
        for i in 0..20_000u64 {
            t = f.write_page(t, &mut d, i % 256).unwrap();
        }
        for lpn in 0..256 {
            assert!(f.translate(lpn).is_some());
            f.read_page(t, &mut d, lpn, 128).unwrap();
        }
    }

    fn degrading(onset: u64, death: u64) -> zng_flash::FaultConfig {
        zng_flash::FaultConfig::none().with_degrading(zng_flash::DegradingDie {
            channel: 0,
            die: 0,
            onset,
            death,
        })
    }

    /// Pages of the working set whose current copy sits on die (0, 0).
    fn live_on_suspect(f: &PageMapFtl) -> usize {
        (0..256u64)
            .filter(|&l| {
                f.translate(l)
                    .is_some_and(|a| a.block.channel.index() == 0 && a.block.die.index() == 0)
            })
            .count()
    }

    #[test]
    fn health_off_step_is_inert() {
        let (mut d, mut f) = setup();
        assert!(!f.health_enabled());
        assert_eq!(f.health_step(Cycle(123), &mut d).unwrap(), Cycle(123));
        assert!(f.health_counters().is_none());
        assert!(f.quarantined_dies().is_empty());
    }

    #[test]
    fn health_evacuates_degrading_die_before_death() {
        let (mut d, mut f) = setup();
        f.set_health(Some(HealthPolicy {
            window: 32,
            suspect_threshold: 0.05,
            evacuate: true,
            pacing: None,
        }));
        let mut t = Cycle(0);
        for lpn in 0..256u64 {
            t = f.write_page(t, &mut d, lpn).unwrap();
        }
        assert!(live_on_suspect(&f) > 0, "working set must touch die (0,0)");
        let onset = t.raw() + 1_000_000;
        let death = onset + 2_000_000_000;
        d.set_fault_config(&degrading(onset, death));
        let step = (death - onset) / 200;
        let mut clock = Cycle(onset);
        let mut completed = false;
        for _ in 0..96 {
            for lpn in 0..256u64 {
                let _ = f.read_page(clock, &mut d, lpn, 128);
            }
            clock += Cycle(step);
            f.health_step(clock, &mut d).unwrap();
            if f.health_counters().unwrap().evacuations_completed > 0 {
                completed = true;
                break;
            }
        }
        let c = f.health_counters().unwrap();
        assert!(completed, "evacuation must complete before death: {c:?}");
        assert!(c.suspects_flagged >= 1, "{c:?}");
        assert!(c.pages_evacuated > 0, "{c:?}");
        assert_eq!(f.quarantined_dies(), vec![(0, 0)]);
        assert_eq!(
            live_on_suspect(&f),
            0,
            "no live page remains on the suspect"
        );
        // The die dies; the monitor fences it on its next tick. With the
        // data long gone, the death never costs a single read.
        clock = Cycle(death + 1);
        f.health_step(clock, &mut d).unwrap();
        assert!(d.dead_dies().contains(&(0, 0)));
        assert_eq!(f.health_counters().unwrap().dead_dies_fenced, 1);
        for lpn in 0..256u64 {
            f.read_page(clock, &mut d, lpn, 128).unwrap();
        }
        assert_eq!(d.dead_die_reads(), 0, "the death cost zero reads");
    }
}
