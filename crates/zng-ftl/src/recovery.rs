//! Crash recovery shared by both FTLs: the full-device OOB scan.
//!
//! A power loss destroys every volatile mapping structure — the DBMT in
//! the GPU MMU, the LBMT in shared memory, the row-decoder LPMTs, the
//! page-map table in SSD DRAM — but the flash arrays survive, and every
//! programmed page carries an out-of-band record written atomically with
//! its data: the logical page number, a device-wide monotonic program
//! stamp, and the block's role tag ([`zng_flash::OobMeta`]). Recovery is
//! therefore a scan: read every touched block's OOB area, resolve
//! duplicate logical pages by stamp (newest wins), discard torn pages,
//! and re-derive the free pool and per-block wear.

use std::collections::BTreeMap;

use zng_flash::{BlockKind, FlashDevice, OobMeta, PageOob};
use zng_types::{BlockAddr, Cycle, FlashAddr, Result};

use crate::allocator::{BlockAllocator, WearPolicy};

/// Modelled cost of sensing one programmed page's OOB area during the
/// recovery scan. The spare bytes are a tiny fraction of the 4 KB page,
/// so an OOB sense is far cheaper than the 3 µs full-page read; planes
/// scan their own blocks in parallel, so the scan's wall time is the
/// busiest plane's chain.
pub const OOB_SCAN_CYCLES_PER_PAGE: Cycle = Cycle(450);

/// What a full-device recovery scan found and rebuilt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Programmed pages whose OOB records were scanned.
    pub pages_scanned: u64,
    /// Torn pages (programs interrupted by the power cut) discarded.
    pub torn_discarded: u64,
    /// Superseded page versions dropped in favour of a newer stamp.
    pub stale_dropped: u64,
    /// Dead blocks erased back into the free pool during recovery.
    pub blocks_erased: u64,
    /// Pages whose payload checksum failed verification during the scan:
    /// quarantined (never resurrected as winners), like torn pages. The
    /// logical page rolls back to its newest *intact* copy, if any.
    pub corrupt_quarantined: u64,
    /// Modelled duration of the scan plus dead-block reclaim, in device
    /// cycles; the platform blocks resumed apps for this long.
    pub scan_cycles: Cycle,
    /// Whether the checkpoint fast path rebuilt the state (checkpoint
    /// load + journal replay + touched-blocks rescan) instead of the
    /// full-device OOB scan.
    pub fast_path: bool,
    /// Whether checkpointing was enabled but the fast path had to fall
    /// back to the full scan (torn/missing checkpoint, torn journal
    /// page, or a journal overflow).
    pub fallback: bool,
    /// Journal records replayed by the fast path.
    pub journal_replayed: u64,
    /// Blocks the fast path re-scanned from media (those touched since
    /// the checkpoint stamp, plus the checkpoint blocks themselves).
    pub blocks_rescanned: u64,
    /// Scan cycles the fast path saved versus the full-device scan it
    /// replaced (zero on the full-scan path).
    pub cycles_saved: Cycle,
}

/// One touched block's surviving media state.
///
/// `Clone + PartialEq` so a checkpoint can hold a serialised image of the
/// block and debug builds can assert the fast-path rebuild saw exactly
/// what a full scan would have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ScannedBlock {
    /// Device-wide block index (the allocator's currency).
    pub idx: u64,
    pub addr: BlockAddr,
    /// Intact OOB records by page index (torn pages excluded).
    pub entries: Vec<(u32, OobMeta)>,
    /// Pages programmed (the in-order high-water mark survives).
    pub programmed: u32,
    pub erase_count: u32,
    /// Sticky failure flag (survives the power loss).
    pub failed: bool,
    pub full: bool,
    /// Torn pages found in this block.
    pub torn: u32,
    /// Written-but-corrupt pages quarantined in this block.
    pub corrupt: u32,
}

impl ScannedBlock {
    /// The newest program stamp in the block — its age when choosing
    /// between duplicate copies of the same content.
    pub fn max_seq(&self) -> u64 {
        self.entries.iter().map(|(_, m)| m.seq).max().unwrap_or(0)
    }
}

/// The raw scan: every touched block in ascending device index.
pub(crate) struct Scan {
    pub blocks: Vec<ScannedBlock>,
    pub pages_scanned: u64,
    pub torn: u64,
    /// Pages whose payload checksum failed verification (quarantined).
    pub corrupt: u64,
    /// The busiest plane's OOB chain (planes scan in parallel).
    pub base_cycles: Cycle,
}

/// Scans the OOB area of every block ever touched. Pure inspection: no
/// media mutation, deterministic (ascending block index).
pub(crate) fn scan_device(device: &FlashDevice) -> Scan {
    let total = device.geometry().total_blocks() as u64;
    scan_blocks(device, 0..total)
}

/// Reads one block's surviving media state, or `None` when its die is
/// dead (a dead die refuses array access: its OOB is as unreadable as
/// its payload, so its blocks are invisible to the scan and are never
/// reclaimed or chosen as winners).
pub(crate) fn image_block(device: &FlashDevice, idx: u64) -> Option<ScannedBlock> {
    let addr = device.geometry().block_for_index(idx).ok()?;
    if device.die_is_dead(addr.channel, addr.die) {
        return None;
    }
    let b = device.block(addr)?;
    let programmed = b.programmed_pages();
    let mut entries = Vec::new();
    let mut torn = 0u32;
    let mut corrupt = 0u32;
    for page in 0..programmed {
        match b.oob(page) {
            // A record whose payload checksum fails is quarantined
            // exactly like a torn page: it must never become a
            // winner, or recovery would resurrect corrupted data.
            PageOob::Written(_) if b.is_corrupt(page) => corrupt += 1,
            PageOob::Written(m) => entries.push((page, m)),
            PageOob::Torn => torn += 1,
            PageOob::Blank => {}
        }
    }
    Some(ScannedBlock {
        idx,
        addr,
        entries,
        programmed,
        erase_count: b.erase_count(),
        failed: b.is_failed(),
        full: b.is_full(),
        torn,
        corrupt,
    })
}

/// The busiest plane's programmed-page chain across `blocks` — the
/// scan's wall time in page units, since planes scan in parallel.
pub(crate) fn busiest_plane_pages(blocks: &[ScannedBlock]) -> u64 {
    let mut per_plane: BTreeMap<(usize, usize, usize), u64> = BTreeMap::new();
    for b in blocks {
        *per_plane
            .entry((
                b.addr.channel.index(),
                b.addr.die.index(),
                b.addr.plane.index(),
            ))
            .or_insert(0) += b.programmed as u64;
    }
    per_plane.values().copied().max().unwrap_or(0)
}

/// Scans the OOB area of the given block indices (ascending order is the
/// caller's responsibility for determinism; a `BTreeSet` or a range both
/// qualify). The subset form is the checkpoint fast path's rescan.
pub(crate) fn scan_blocks(device: &FlashDevice, indices: impl IntoIterator<Item = u64>) -> Scan {
    let mut blocks = Vec::new();
    let mut pages_scanned = 0u64;
    let mut torn = 0u64;
    let mut corrupt = 0u64;
    for idx in indices {
        let Some(blk) = image_block(device, idx) else {
            continue;
        };
        pages_scanned += blk.programmed as u64;
        torn += blk.torn as u64;
        corrupt += blk.corrupt as u64;
        blocks.push(blk);
    }
    let busiest = busiest_plane_pages(&blocks);
    Scan {
        blocks,
        pages_scanned,
        torn,
        corrupt,
        base_cycles: Cycle(OOB_SCAN_CYCLES_PER_PAGE.0 * busiest),
    }
}

/// Resolves every logical page to its newest intact copy: the winner is
/// the highest program stamp among non-torn pages. Returns
/// `lpn -> (stamp, location)` in logical-page order.
pub(crate) fn resolve_winners(blocks: &[ScannedBlock]) -> BTreeMap<u64, (u64, FlashAddr)> {
    let mut winners: BTreeMap<u64, (u64, FlashAddr)> = BTreeMap::new();
    for blk in blocks {
        for &(page, m) in &blk.entries {
            if m.tag == BlockKind::Parity || m.tag == BlockKind::Checkpoint {
                // RAIN parity and checkpoint/journal pages carry
                // synthetic keys outside the logical space; they protect
                // stripes or persist metadata but never name a logical
                // page.
                continue;
            }
            let cand = (m.seq, FlashAddr::new(blk.addr, page));
            match winners.get_mut(&m.lpn) {
                Some(w) if w.0 >= m.seq => {}
                Some(w) => *w = cand,
                None => {
                    winners.insert(m.lpn, cand);
                }
            }
        }
    }
    winners
}

/// What reclaiming the dead (unreferenced) blocks produced.
pub(crate) struct Reclaim {
    /// `(index, erase_count)` of blocks returned clean to the pool, in
    /// ascending index order.
    pub recycled: Vec<(u64, u32)>,
    /// Dead blocks out of service: previously failed ones plus any whose
    /// reclaim erase failed verification.
    pub retired: u64,
    /// Erase operations actually performed.
    pub erased: u64,
    /// Stale checkpoint blocks whose erase is deferred to the next
    /// checkpoint tick (see [`reclaim_dead`]); they stay allocated.
    pub deferred: Vec<u64>,
    /// When the slowest reclaim erase completes.
    pub done: Cycle,
}

/// Erases dead blocks back into the free pool. Failed blocks are never
/// trusted again; blocks with no programmed pages are already clean and
/// skip the erase. Erases start at `start` (after the OOB scan) and run
/// in parallel across planes — each reserves its plane's array resource.
///
/// Checkpoint-namespace blocks are the exception: a recovery supersedes
/// every checkpoint epoch, so the blocks holding the old epoch are dead,
/// but erasing them here would serialise several ~ms erases per plane
/// onto the critical restore path. They are *deferred* instead — left
/// allocated (never handed out) and queued for the next checkpoint
/// write, which already erases superseded epochs in the background
/// ([`crate::checkpoint`]). Recovery only pays for erases that data
/// blocks actually need.
pub(crate) fn reclaim_dead<'a>(
    device: &mut FlashDevice,
    dead: impl IntoIterator<Item = &'a ScannedBlock>,
    start: Cycle,
) -> Result<Reclaim> {
    let mut out = Reclaim {
        recycled: Vec::new(),
        retired: 0,
        erased: 0,
        deferred: Vec::new(),
        done: start,
    };
    for blk in dead {
        if blk.failed {
            out.retired += 1;
            continue;
        }
        if blk.programmed == 0 {
            out.recycled.push((blk.idx, blk.erase_count));
            continue;
        }
        // The volatile role kind is lost with power; the durable marker
        // is the OOB tag each checkpoint page carries.
        if blk
            .entries
            .iter()
            .any(|(_, m)| m.tag == BlockKind::Checkpoint)
        {
            out.deferred.push(blk.idx);
            continue;
        }
        let rep = device.erase(start, blk.addr)?;
        out.done = out.done.max(rep.done);
        out.erased += 1;
        if rep.failed {
            out.retired += 1;
        } else {
            let wear = device
                .block(blk.addr)
                .map(|b| b.erase_count())
                .unwrap_or(blk.erase_count + 1);
            out.recycled.push((blk.idx, wear));
        }
    }
    Ok(out)
}

/// The free pool and wear accounting a recovery rebuilt, shared by both
/// FTLs' post-scan plumbing.
pub(crate) struct RebuiltPool {
    /// The allocator rebuilt from the scan (recycled pool, retirements,
    /// fresh suffix).
    pub allocator: BlockAllocator,
    /// Retirements discovered by *this* recovery (the rest were already
    /// charged when they happened).
    pub retired_delta: u64,
    /// Erase operations the dead-block reclaim performed.
    pub blocks_erased: u64,
    /// Stale checkpoint blocks left for the next checkpoint tick to
    /// erase (still counted allocated in the rebuilt allocator).
    pub deferred: Vec<u64>,
    /// When the scan plus the slowest reclaim erase completes.
    pub done: Cycle,
}

/// The post-scan rebuild tail shared by [`crate::ZngFtl::recover`] and
/// [`crate::PageMapFtl::recover`]: reclaim the dead (unreferenced)
/// blocks, then rebuild the block allocator from what the scan and the
/// reclaim learned. `start` is when the scan finishes (`now +
/// base_cycles`); `prior_retired` is the allocator's pre-crash
/// retirement count, so only newly discovered retirements are charged.
pub(crate) fn rebuild_free_pool<'a>(
    device: &mut FlashDevice,
    blocks: &[ScannedBlock],
    dead: impl IntoIterator<Item = &'a ScannedBlock>,
    referenced: u64,
    start: Cycle,
    policy: WearPolicy,
    prior_retired: u64,
) -> Result<RebuiltPool> {
    let reclaim = reclaim_dead(device, dead, start)?;
    let next_fresh = blocks.last().map(|b| b.idx + 1).unwrap_or(0);
    // Deferred checkpoint blocks are still occupied until the next
    // checkpoint tick erases them, so they count as allocated.
    let allocator = BlockAllocator::rebuild(
        device.geometry().total_blocks() as u64,
        policy,
        next_fresh,
        referenced + reclaim.deferred.len() as u64,
        reclaim.retired,
        reclaim.recycled,
    );
    Ok(RebuiltPool {
        allocator,
        retired_delta: reclaim.retired.saturating_sub(prior_retired),
        blocks_erased: reclaim.erased,
        deferred: reclaim.deferred,
        done: reclaim.done.max(start),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zng_flash::{FlashGeometry, RegisterTopology};
    use zng_types::Freq;

    fn device() -> FlashDevice {
        FlashDevice::zng_config(
            FlashGeometry::tiny(),
            Freq::default(),
            RegisterTopology::Private,
        )
        .unwrap()
    }

    #[test]
    fn scan_cost_is_per_page_for_a_single_block() {
        let mut d = device();
        let addr = d.geometry().block_for_index(0).unwrap();
        let mut t = Cycle(0);
        for lpn in 0..5u64 {
            t = d.program(t, addr, lpn).unwrap().done;
        }
        d.power_loss(t);
        let scan = scan_device(&d);
        assert_eq!(scan.pages_scanned, 5);
        assert_eq!(scan.base_cycles, Cycle(OOB_SCAN_CYCLES_PER_PAGE.0 * 5));
    }

    #[test]
    fn planes_scan_in_parallel_so_the_busiest_governs() {
        let mut d = device();
        let geo = *d.geometry();
        // Channel-first striping puts consecutive indices on different
        // channels: 7 pages on one plane, 2 on another -> the busiest
        // plane's chain sets the wall time.
        let a = geo.block_for_index(0).unwrap();
        let b = geo.block_for_index(1).unwrap();
        assert_ne!(a.channel, b.channel);
        let mut t = Cycle(0);
        for lpn in 0..7u64 {
            t = d.program(t, a, lpn).unwrap().done;
        }
        for lpn in 7..9u64 {
            t = d.program(t, b, lpn).unwrap().done;
        }
        d.power_loss(t);
        let scan = scan_device(&d);
        assert_eq!(scan.pages_scanned, 9);
        assert_eq!(scan.base_cycles, Cycle(OOB_SCAN_CYCLES_PER_PAGE.0 * 7));
    }

    #[test]
    fn preloaded_pages_cost_scan_time_like_programmed_ones() {
        let mut d = device();
        let addr = d.geometry().block_for_index(2).unwrap();
        for lpn in 0..4u64 {
            d.preload_page(addr, lpn).unwrap();
        }
        let scan = scan_device(&d);
        assert_eq!(scan.pages_scanned, 4);
        assert_eq!(scan.base_cycles, Cycle(OOB_SCAN_CYCLES_PER_PAGE.0 * 4));
    }

    #[test]
    fn corrupt_records_are_quarantined_not_resurrected() {
        let mut d = device();
        let geo = *d.geometry();
        let a = geo.block_for_index(0).unwrap();
        let b = geo.block_for_index(1).unwrap();
        // Two versions of lpn 7: the newer one silently corrupted.
        let r1 = d.program(Cycle(0), a, 7).unwrap();
        let r2 = d.program(r1.done, b, 7).unwrap();
        d.mark_page_corrupt(FlashAddr::new(b, r2.page)).unwrap();
        d.power_loss(r2.done + Cycle(10_000_000));
        let scan = scan_device(&d);
        assert_eq!(scan.corrupt, 1, "the corrupt record is quarantined");
        assert_eq!(scan.pages_scanned, 2);
        let winners = resolve_winners(&scan.blocks);
        let (_, addr) = winners.get(&7).copied().expect("intact copy survives");
        assert_eq!(addr.block, a, "rolls back to the newest intact copy");
    }

    #[test]
    fn parity_tagged_records_never_win_a_logical_page() {
        let mut d = device();
        let geo = *d.geometry();
        let data = geo.block_for_index(0).unwrap();
        let parity = geo.block_for_index(4).unwrap();
        let t = d.program(Cycle(0), data, 7).unwrap().done;
        d.block_mut(parity).unwrap().set_kind(BlockKind::Parity);
        // Newer stamp than the data copy: without the tag filter this
        // parity record would shadow lpn 7.
        d.program(t, parity, 7).unwrap();
        let scan = scan_device(&d);
        let winners = resolve_winners(&scan.blocks);
        let (_, addr) = winners.get(&7).copied().expect("data copy survives");
        assert_eq!(addr.block, data);
    }
}
