//! Endurance management: background refresh, static wear levelling and
//! graceful end-of-life capacity degradation.
//!
//! Flash blocks age in two ways the demand path never repairs on its own:
//!
//! * **Read disturb** — every array sense of a block weakly stresses its
//!   sibling pages; the charge accumulates until the next erase. The
//!   media layer counts senses per block
//!   ([`zng_flash::Block::disturb_reads`]) and amplifies RBER/SDC
//!   probabilities accordingly when endurance tracking is on.
//! * **Retention** — charge leaks from programmed cells over time. Each
//!   block carries a first-programmed stamp
//!   ([`zng_flash::Block::first_programmed`]) so its oldest data's age is
//!   queryable.
//!
//! The **refresh scheduler** walks the device between demand requests
//! (driven by the platform's patrol ticker) and rewrites any block whose
//! disturb count or retention age crossed its threshold: verified reads,
//! re-program to fresh cells, remap, erase — which resets both clocks.
//! The **static wear leveler** watches the device wear spread (max/mean
//! erase fraction) and, when it exceeds the configured ratio, migrates
//! cold valid data *into* the most-worn free blocks so the freed cold
//! blocks rejoin the hot allocation pool. Both piggyback on the GC pacing
//! contract: the media work always completes, but the foreground stall
//! per step is capped at the stall budget.
//!
//! At end of life the spare pool runs dry. Without endurance management
//! the FTL surfaces the hard [`zng_types::Error::DeviceWornOut`] cliff;
//! with it, the write is refused with
//! [`zng_types::Error::CapacityDegraded`] instead — the advertised
//! capacity steps down to what is currently mapped, the refused write is
//! never acknowledged, and every previously acknowledged page stays
//! readable (reads allocate nothing).

use zng_flash::{BlockKind, FlashDevice};
use zng_types::{BlockAddr, Cycle, Error};

use crate::pacing::GcPacing;

/// Blocks examined per refresh step before the walk yields. Bounds the
/// foreground cost of a step on an idle (no-candidate) device.
pub const REFRESH_SCAN_BLOCKS_PER_STEP: u64 = 64;

/// Endurance policy knobs for the FTL-side scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshPolicy {
    /// Disturb-read count at or above which a block is refreshed
    /// (0 disables disturb-driven refresh).
    pub disturb_threshold: u64,
    /// Retention age in cycles (now minus the block's first-programmed
    /// stamp) at or above which a block is refreshed (0 disables
    /// retention-driven refresh).
    pub retention_threshold: u64,
    /// Device wear spread (max/mean erase fraction) above which the
    /// static wear leveler migrates one cold block per step into the
    /// most-worn spare (0.0 disables static levelling).
    pub wear_spread: f64,
    /// Foreground stall bound for one refresh step, reusing the GC
    /// pacing machinery. `None` blocks for the full step.
    pub pacing: Option<GcPacing>,
}

impl Default for RefreshPolicy {
    fn default() -> RefreshPolicy {
        RefreshPolicy {
            disturb_threshold: 8_192,
            retention_threshold: 2_000_000_000,
            wear_spread: 4.0,
            pacing: None,
        }
    }
}

/// Why a block was selected for refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshReason {
    /// Its accumulated disturb-read count crossed the threshold.
    Disturb,
    /// Its oldest data's retention age crossed the threshold.
    Retention,
}

/// A snapshot of the endurance subsystem's event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnduranceCounters {
    /// Blocks rewritten by the refresh scheduler.
    pub refreshes: u64,
    /// Of those, blocks refreshed for read disturb.
    pub disturb_refreshes: u64,
    /// Of those, blocks refreshed for retention age.
    pub retention_refreshes: u64,
    /// Pages moved by refresh rewrites.
    pub refreshed_pages: u64,
    /// Cold blocks migrated into worn spares by the static leveler.
    pub level_migrations: u64,
    /// Pages moved by those migrations.
    pub leveled_pages: u64,
    /// Refresh steps whose media time overran the pacing budget (the
    /// foreground stall was capped at the budget).
    pub refresh_overruns: u64,
    /// Times the advertised capacity stepped down at end of life.
    pub capacity_steps: u64,
}

/// Per-FTL endurance state: the policy, the refresh walk cursor, the
/// event counters and the advertised-capacity floor.
#[derive(Debug, Clone)]
pub(crate) struct EnduranceState {
    pub(crate) policy: RefreshPolicy,
    pub(crate) counters: EnduranceCounters,
    /// Refresh walk position as a device-global block index.
    cursor: u64,
    /// Advertised capacity in logical pages after the last end-of-life
    /// step; `None` until the first step (full capacity).
    advertised_pages: Option<u64>,
}

impl EnduranceState {
    pub(crate) fn new(policy: RefreshPolicy) -> EnduranceState {
        EnduranceState {
            policy,
            counters: EnduranceCounters::default(),
            cursor: 0,
            advertised_pages: None,
        }
    }

    /// Advances the refresh cursor over up to
    /// [`REFRESH_SCAN_BLOCKS_PER_STEP`] blocks and returns the first one
    /// whose disturb count or retention age crossed its threshold.
    ///
    /// Parity, failed, dead-die, untouched and fully-stale blocks are
    /// skipped: there is nothing (or nothing live) to preserve, and a
    /// stale block's clocks reset at its upcoming erase anyway.
    pub(crate) fn scan_candidate(
        &mut self,
        device: &FlashDevice,
        now: Cycle,
    ) -> Option<(BlockAddr, RefreshReason)> {
        let geo = device.geometry();
        let total = geo.total_blocks() as u64;
        if total == 0 {
            return None;
        }
        let limit = REFRESH_SCAN_BLOCKS_PER_STEP.min(total);
        for _ in 0..limit {
            let idx = self.cursor % total;
            self.cursor = (idx + 1) % total;
            let Ok(addr) = geo.block_for_index(idx) else {
                continue;
            };
            if device.die_is_dead(addr.channel, addr.die) {
                continue;
            }
            let Some(b) = device.block(addr) else {
                continue;
            };
            if b.kind() == BlockKind::Parity
                || b.kind() == BlockKind::Checkpoint
                || b.is_failed()
                || b.programmed_pages() == 0
                || b.valid_pages() == 0
            {
                continue;
            }
            if self.policy.disturb_threshold > 0
                && b.disturb_reads() >= self.policy.disturb_threshold
            {
                return Some((addr, RefreshReason::Disturb));
            }
            if self.policy.retention_threshold > 0 {
                if let Some(fp) = b.first_programmed() {
                    if now.raw().saturating_sub(fp.raw()) >= self.policy.retention_threshold {
                        return Some((addr, RefreshReason::Retention));
                    }
                }
            }
        }
        None
    }

    /// Whether the device wear spread warrants a static-levelling
    /// migration this step.
    pub(crate) fn wants_levelling(&self, device: &FlashDevice) -> bool {
        self.policy.wear_spread > 0.0 && device.endurance().wear_spread() > self.policy.wear_spread
    }

    /// Charges one refresh to the counters.
    pub(crate) fn note_refresh(&mut self, reason: RefreshReason, pages: u64) {
        self.counters.refreshes += 1;
        self.counters.refreshed_pages += pages;
        match reason {
            RefreshReason::Disturb => self.counters.disturb_refreshes += 1,
            RefreshReason::Retention => self.counters.retention_refreshes += 1,
        }
    }

    /// Charges one static-levelling migration to the counters.
    pub(crate) fn note_levelling(&mut self, pages: u64) {
        self.counters.level_migrations += 1;
        self.counters.leveled_pages += pages;
    }

    /// Caps a step's foreground stall at the pacing deadline, counting an
    /// overrun when the media work ran longer.
    pub(crate) fn pace(&mut self, started: Cycle, done: Cycle) -> Cycle {
        match self.policy.pacing {
            Some(p) if done > p.deadline(started) => {
                self.counters.refresh_overruns += 1;
                p.deadline(started)
            }
            _ => done,
        }
    }

    /// Restarts the refresh walk from block zero after a crash recovery,
    /// for determinism (mirroring the patrol scrubber). The policy, the
    /// counters and the advertised-capacity floor survive: they describe
    /// the device, not the lost volatile mapping state.
    pub(crate) fn reset_after_recovery(&mut self) {
        self.cursor = 0;
    }

    /// Converts an end-of-life allocator failure into the graceful
    /// capacity-degradation error: the advertised capacity steps down to
    /// `mapped_pages` (counted once per shrink) and the caller surfaces
    /// [`Error::CapacityDegraded`] instead of the hard cliff. Any other
    /// error passes through untouched.
    pub(crate) fn degrade(&mut self, e: Error, mapped_pages: u64) -> Error {
        if !matches!(e, Error::DeviceWornOut { .. }) {
            return e;
        }
        match self.advertised_pages {
            Some(adv) if adv <= mapped_pages => {}
            _ => {
                self.advertised_pages = Some(mapped_pages);
                self.counters.capacity_steps += 1;
            }
        }
        Error::CapacityDegraded {
            remaining_pages: mapped_pages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zng_flash::{FlashGeometry, RegisterTopology};
    use zng_types::Freq;

    fn device() -> FlashDevice {
        FlashDevice::zng_config(
            FlashGeometry::tiny(),
            Freq::default(),
            RegisterTopology::NiF,
        )
        .unwrap()
    }

    #[test]
    fn scan_finds_disturbed_and_aged_blocks() {
        let mut d = device();
        d.set_endurance_tracking(Some(1));
        let geo = *d.geometry();
        let a = geo.block_for_index(3).unwrap();
        d.program(Cycle(0), a, 7).unwrap();
        d.program(Cycle(0), a, 8).unwrap();
        let mut st = EnduranceState::new(RefreshPolicy {
            disturb_threshold: 4,
            retention_threshold: 1_000_000,
            wear_spread: 0.0,
            pacing: None,
        });
        // Young and undisturbed: nothing to do.
        assert_eq!(st.scan_candidate(&d, Cycle(10)), None);
        // Cross the disturb threshold via repeated array senses:
        // alternating pages defeat the plane's sense latch and distinct
        // lookup keys defeat the register cache, so every read senses.
        for i in 0..8u64 {
            let _ = d.read(
                Cycle(1_000_000_000),
                zng_types::FlashAddr::new(a, (i % 2) as u32),
                1_000 + i,
                128,
            );
        }
        st.cursor = 0;
        assert_eq!(
            st.scan_candidate(&d, Cycle(10)),
            Some((a, RefreshReason::Disturb))
        );
        // With disturb disabled, the same block trips on retention age.
        let mut st = EnduranceState::new(RefreshPolicy {
            disturb_threshold: 0,
            retention_threshold: 1_000_000,
            wear_spread: 0.0,
            pacing: None,
        });
        assert_eq!(
            st.scan_candidate(&d, Cycle(2_000_000)),
            Some((a, RefreshReason::Retention))
        );
    }

    #[test]
    fn scan_skips_stale_failed_and_parity_blocks() {
        let mut d = device();
        d.set_endurance_tracking(Some(1));
        let geo = *d.geometry();
        let a = geo.block_for_index(5).unwrap();
        let rep = d.program(Cycle(0), a, 9).unwrap();
        d.invalidate(zng_types::FlashAddr::new(a, rep.page));
        let mut st = EnduranceState::new(RefreshPolicy {
            disturb_threshold: 0,
            retention_threshold: 1,
            wear_spread: 0.0,
            pacing: None,
        });
        // The only programmed block is fully stale: nothing to refresh.
        for _ in 0..(geo.total_blocks() as u64 / REFRESH_SCAN_BLOCKS_PER_STEP + 2) {
            assert_eq!(st.scan_candidate(&d, Cycle(1_000_000_000)), None);
        }
    }

    #[test]
    fn pacing_caps_the_stall_and_counts_overruns() {
        let mut st = EnduranceState::new(RefreshPolicy {
            pacing: Some(GcPacing {
                stall_budget: Cycle(1_000),
                credit_writes: 4,
            }),
            ..RefreshPolicy::default()
        });
        assert_eq!(st.pace(Cycle(0), Cycle(500)), Cycle(500));
        assert_eq!(st.counters.refresh_overruns, 0);
        assert_eq!(st.pace(Cycle(0), Cycle(5_000)), Cycle(1_000));
        assert_eq!(st.counters.refresh_overruns, 1);
    }

    #[test]
    fn degrade_steps_capacity_once_per_shrink() {
        let mut st = EnduranceState::new(RefreshPolicy::default());
        let worn = Error::DeviceWornOut { retired_blocks: 9 };
        match st.degrade(worn.clone(), 640) {
            Error::CapacityDegraded { remaining_pages } => assert_eq!(remaining_pages, 640),
            other => panic!("expected CapacityDegraded, got {other:?}"),
        }
        assert_eq!(st.counters.capacity_steps, 1);
        // Refusing again at the same capacity is not a new step.
        st.degrade(worn.clone(), 640);
        assert_eq!(st.counters.capacity_steps, 1);
        // A larger mapped count later (more preloads) is not a shrink.
        st.degrade(worn, 700);
        assert_eq!(st.counters.capacity_steps, 1);
        // Other errors pass through untouched.
        match st.degrade(Error::OutOfSpace, 640) {
            Error::OutOfSpace => {}
            other => panic!("expected OutOfSpace, got {other:?}"),
        }
    }
}
