//! Free-block allocation with wear levelling.
//!
//! The allocator hands out device-wide block indices (decoded to physical
//! coordinates by [`zng_flash::FlashGeometry::block_for_index`]).
//! Fresh blocks are served in striping order (maximising channel/die/plane
//! parallelism for consecutive data blocks); recycled blocks are served
//! lowest-erase-count-first, which is the wear-levelling policy the
//! paper's GPU helper thread applies (§IV-A).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use zng_types::{Error, Result};

/// How recycled blocks are chosen (paper §VI: "we can also apply
/// different wear-levelling algorithms in our GPU helper thread").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WearPolicy {
    /// Reuse the least-erased block first (wear levelling).
    #[default]
    LeastErased,
    /// Reuse blocks in release order (round-robin, mild levelling).
    Fifo,
    /// Reuse the most recently released block (no levelling: wear
    /// concentrates on whichever blocks churn fastest).
    Lifo,
}

/// A wear-aware free-block allocator.
///
/// # Examples
///
/// ```
/// use zng_ftl::BlockAllocator;
///
/// let mut a = BlockAllocator::new(4);
/// assert_eq!(a.allocate()?, 0);
/// assert_eq!(a.allocate()?, 1);
/// a.release(0, 1); // erased once
/// assert_eq!(a.allocate()?, 2); // fresh blocks first
/// # Ok::<(), zng_types::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlockAllocator {
    total_blocks: u64,
    next_fresh: u64,
    /// Recycled blocks ordered by the policy key ascending.
    recycled: BinaryHeap<Reverse<(u64, u64)>>,
    allocated: u64,
    policy: WearPolicy,
    release_seq: u64,
    /// Blocks permanently removed from service (failed program/erase).
    retired: u64,
}

impl BlockAllocator {
    /// Creates a wear-levelling allocator over `total_blocks` blocks.
    pub fn new(total_blocks: u64) -> BlockAllocator {
        BlockAllocator::with_policy(total_blocks, WearPolicy::LeastErased)
    }

    /// Creates an allocator with an explicit recycling policy.
    pub fn with_policy(total_blocks: u64, policy: WearPolicy) -> BlockAllocator {
        BlockAllocator {
            total_blocks,
            next_fresh: 0,
            recycled: BinaryHeap::new(),
            allocated: 0,
            policy,
            release_seq: 0,
            retired: 0,
        }
    }

    /// The active recycling policy.
    pub fn policy(&self) -> WearPolicy {
        self.policy
    }

    /// Rebuilds an allocator from a crash-recovery OOB scan.
    ///
    /// * `next_fresh` — one past the highest block index ever touched
    ///   (allocation hands out fresh indices in order, so every untouched
    ///   index is a contiguous suffix);
    /// * `allocated` — blocks the recovered mapping tables reference;
    /// * `retired` — blocks permanently out of service (sticky failure);
    /// * `recycled` — erased blocks returned to the pool as
    ///   `(index, erase_count)`.
    ///
    /// Release order is lost with the crash, so the `Fifo`/`Lifo`
    /// policies fall back to the iteration order of `recycled` (the scan
    /// feeds it in ascending block index, keeping recovery deterministic).
    pub fn rebuild(
        total_blocks: u64,
        policy: WearPolicy,
        next_fresh: u64,
        allocated: u64,
        retired: u64,
        recycled: impl IntoIterator<Item = (u64, u32)>,
    ) -> BlockAllocator {
        let mut a = BlockAllocator::with_policy(total_blocks, policy);
        a.next_fresh = next_fresh.min(total_blocks);
        a.allocated = allocated;
        a.retired = retired;
        for (index, erase_count) in recycled {
            a.release_seq += 1;
            let key = match policy {
                WearPolicy::LeastErased => erase_count as u64,
                WearPolicy::Fifo => a.release_seq,
                WearPolicy::Lifo => u64::MAX - a.release_seq,
            };
            a.recycled.push(Reverse((key, index)));
        }
        a
    }

    /// Allocates one block index: fresh blocks in striping order first,
    /// then recycled blocks lowest-wear-first.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfSpace`] when neither fresh nor recycled
    /// blocks remain, or [`Error::DeviceWornOut`] when block retirement
    /// is what exhausted the pool — the device reached end of life.
    pub fn allocate(&mut self) -> Result<u64> {
        if self.next_fresh < self.total_blocks {
            let idx = self.next_fresh;
            self.next_fresh += 1;
            self.allocated += 1;
            return Ok(idx);
        }
        match self.recycled.pop() {
            Some(Reverse((_wear, idx))) => {
                self.allocated += 1;
                Ok(idx)
            }
            None if self.retired > 0 => Err(Error::DeviceWornOut {
                retired_blocks: self.retired,
            }),
            None => Err(Error::OutOfSpace),
        }
    }

    /// Allocates the *most*-worn recycled block: the static wear
    /// leveler's destination for cold data, so tired blocks hold bits
    /// that rarely churn while low-wear blocks return to the hot pool.
    /// Falls back to [`BlockAllocator::allocate`] when the recycle pool
    /// is empty (a fresh block is then the only choice).
    ///
    /// # Errors
    ///
    /// Same exhaustion errors as [`BlockAllocator::allocate`].
    pub fn allocate_most_worn(&mut self) -> Result<u64> {
        if self.recycled.is_empty() {
            return self.allocate();
        }
        let mut items: Vec<(u64, u64)> = self.recycled.drain().map(|Reverse(p)| p).collect();
        // Deterministic pick: highest key, then highest index.
        let pos = items
            .iter()
            .enumerate()
            .max_by_key(|&(_, &pair)| pair)
            .map(|(i, _)| i)
            .expect("non-empty");
        let (_key, idx) = items.swap_remove(pos);
        self.recycled.extend(items.into_iter().map(Reverse));
        self.allocated += 1;
        Ok(idx)
    }

    /// Returns an erased block to the pool with its lifetime erase count.
    pub fn release(&mut self, index: u64, erase_count: u32) {
        debug_assert!(index < self.total_blocks, "released unknown block {index}");
        self.allocated = self.allocated.saturating_sub(1);
        self.release_seq += 1;
        let key = match self.policy {
            WearPolicy::LeastErased => erase_count as u64,
            WearPolicy::Fifo => self.release_seq,
            // Invert the sequence so the most recent release sorts first.
            WearPolicy::Lifo => u64::MAX - self.release_seq,
        };
        self.recycled.push(Reverse((key, index)));
    }

    /// Permanently removes a block from service instead of recycling it
    /// (a program or erase on it failed verification). The index never
    /// returns from [`BlockAllocator::allocate`] again.
    pub fn retire(&mut self, index: u64) {
        debug_assert!(index < self.total_blocks, "retired unknown block {index}");
        self.allocated = self.allocated.saturating_sub(1);
        self.retired += 1;
    }

    /// Blocks permanently retired.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Blocks currently handed out.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Blocks never handed out yet.
    pub fn fresh_remaining(&self) -> u64 {
        self.total_blocks - self.next_fresh
    }

    /// Erased blocks waiting for reuse.
    pub fn recycled_available(&self) -> usize {
        self.recycled.len()
    }

    /// Total free blocks (fresh + recycled).
    pub fn free(&self) -> u64 {
        self.fresh_remaining() + self.recycled.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_blocks_in_order() {
        let mut a = BlockAllocator::new(3);
        assert_eq!(a.allocate().unwrap(), 0);
        assert_eq!(a.allocate().unwrap(), 1);
        assert_eq!(a.allocate().unwrap(), 2);
        assert!(matches!(a.allocate(), Err(Error::OutOfSpace)));
    }

    #[test]
    fn wear_levelling_prefers_least_erased() {
        let mut a = BlockAllocator::new(3);
        for _ in 0..3 {
            a.allocate().unwrap();
        }
        a.release(0, 5);
        a.release(1, 2);
        a.release(2, 9);
        assert_eq!(a.allocate().unwrap(), 1); // wear 2
        assert_eq!(a.allocate().unwrap(), 0); // wear 5
        assert_eq!(a.allocate().unwrap(), 2); // wear 9
    }

    #[test]
    fn ties_break_by_index_for_determinism() {
        let mut a = BlockAllocator::new(4);
        for _ in 0..4 {
            a.allocate().unwrap();
        }
        a.release(3, 1);
        a.release(1, 1);
        assert_eq!(a.allocate().unwrap(), 1);
        assert_eq!(a.allocate().unwrap(), 3);
    }

    #[test]
    fn fifo_policy_ignores_wear() {
        let mut a = BlockAllocator::with_policy(3, WearPolicy::Fifo);
        for _ in 0..3 {
            a.allocate().unwrap();
        }
        a.release(2, 9); // released first, reused first despite high wear
        a.release(1, 0);
        assert_eq!(a.policy(), WearPolicy::Fifo);
        assert_eq!(a.allocate().unwrap(), 2);
        assert_eq!(a.allocate().unwrap(), 1);
    }

    #[test]
    fn lifo_policy_reuses_hottest() {
        let mut a = BlockAllocator::with_policy(3, WearPolicy::Lifo);
        for _ in 0..3 {
            a.allocate().unwrap();
        }
        a.release(0, 1);
        a.release(2, 1); // most recent: reused first
        assert_eq!(a.allocate().unwrap(), 2);
        assert_eq!(a.allocate().unwrap(), 0);
    }

    #[test]
    fn most_worn_allocation_picks_the_tired_end() {
        let mut a = BlockAllocator::new(4);
        for _ in 0..4 {
            a.allocate().unwrap();
        }
        a.release(0, 5);
        a.release(1, 2);
        a.release(2, 9);
        assert_eq!(a.allocate_most_worn().unwrap(), 2); // wear 9
        assert_eq!(a.allocate().unwrap(), 1); // normal path still coldest
        assert_eq!(a.allocate_most_worn().unwrap(), 0);
        // Pool empty: falls back to the normal exhaustion contract.
        assert!(matches!(a.allocate_most_worn(), Err(Error::OutOfSpace)));
        a.retire(0);
        assert!(matches!(
            a.allocate_most_worn(),
            Err(Error::DeviceWornOut { .. })
        ));
    }

    #[test]
    fn retirement_shrinks_the_pool_for_good() {
        let mut a = BlockAllocator::new(2);
        let b0 = a.allocate().unwrap();
        a.allocate().unwrap();
        a.retire(b0);
        assert_eq!(a.retired(), 1);
        assert_eq!(a.free(), 0);
        // The worn-out signal replaces plain out-of-space once any block
        // has been retired.
        assert!(matches!(
            a.allocate(),
            Err(Error::DeviceWornOut { retired_blocks: 1 })
        ));
    }

    #[test]
    fn rebuild_restores_pool_shape() {
        let mut a = BlockAllocator::rebuild(
            8,
            WearPolicy::LeastErased,
            5, // indices 0..5 were touched
            2, // two still referenced by the recovered tables
            1, // one retired for good
            [(1u64, 3u32), (4, 1)],
        );
        assert_eq!(a.allocated(), 2);
        assert_eq!(a.retired(), 1);
        assert_eq!(a.fresh_remaining(), 3);
        assert_eq!(a.free(), 5);
        // Recycled blocks come back wear-levelled, then fresh suffix…
        assert_eq!(a.allocate().unwrap(), 5);
        assert_eq!(a.allocate().unwrap(), 6);
        assert_eq!(a.allocate().unwrap(), 7);
        assert_eq!(a.allocate().unwrap(), 4); // wear 1
        assert_eq!(a.allocate().unwrap(), 1); // wear 3
        assert!(matches!(
            a.allocate(),
            Err(Error::DeviceWornOut { retired_blocks: 1 })
        ));
    }

    #[test]
    fn accounting() {
        let mut a = BlockAllocator::new(10);
        a.allocate().unwrap();
        a.allocate().unwrap();
        assert_eq!(a.allocated(), 2);
        assert_eq!(a.fresh_remaining(), 8);
        assert_eq!(a.free(), 8);
        a.release(0, 1);
        assert_eq!(a.allocated(), 1);
        assert_eq!(a.recycled_available(), 1);
        assert_eq!(a.free(), 9);
    }
}
