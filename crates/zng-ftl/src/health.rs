//! Predictive die-health monitoring, suspect quarantine and pre-emptive
//! evacuation.
//!
//! A die rarely fails out of nowhere: its raw bit error rate creeps up
//! first, surfacing as deeper read-retry ladders, program verification
//! failures and the odd uncorrectable sense. The media layer rolls those
//! signals up per die ([`zng_flash::DieHealth`]); this module turns them
//! into action *before* the die dies:
//!
//! * **Scoring** — each maintenance tick folds the per-die telemetry
//!   delta into a health score (retry-depth EWMA, windowed program/erase
//!   failure fractions, uncorrectable fraction). A die whose score
//!   crosses the suspect threshold — after at least
//!   [`HealthPolicy::window`] lifetime observations, so cold dies are
//!   never flagged on noise — is **quarantined**.
//! * **Quarantine** — the allocation chokepoints stop placing new blocks
//!   on a quarantined die (candidate blocks are *parked*, not retired:
//!   quarantine is reversible), and reads that still target it get an
//!   elevated retry budget ([`QUARANTINE_EXTRA_READ_ATTEMPTS`]).
//! * **Evacuation** — when enabled, the maintenance tick migrates live
//!   data off suspects onto healthy spares, one victim per step, reusing
//!   the same crash-safe migration machinery as refresh and dead-die
//!   rebuild (journalled, checkpoint-aware, corrupt flags move along and
//!   are never laundered). Foreground stalls are capped by the GC pacing
//!   contract; the media work always completes.
//! * **Rehabilitation** — a suspect that stays clean for
//!   [`REHAB_CLEAN_TICKS`] consecutive observed ticks was a false
//!   positive: it leaves quarantine and its parked blocks rejoin the
//!   allocation pool.
//!
//! When the die finally dies (the degrading-die fault mode latches it
//! dead), the monitor notices on its next tick and runs the existing
//! fence + rebuild machinery. A completed evacuation means the death
//! costs nothing: no live page remains on the die, so no read ever hits
//! dead silicon.

use zng_flash::DieHealth;
use zng_types::Cycle;

use crate::pacing::GcPacing;

use std::collections::{BTreeMap, BTreeSet};

/// Extra read-retry attempts granted to reads that target a quarantined
/// die, on top of the normal ladder: the die is noisy but its data may
/// still be recoverable with patience, and every sense that succeeds is
/// one fewer stripe reconstruction.
pub const QUARANTINE_EXTRA_READ_ATTEMPTS: u32 = 4;

/// Consecutive clean observed ticks after which a suspect is
/// rehabilitated back into service. Ticks without read observations are
/// neutral: they neither count toward nor reset the streak.
pub const REHAB_CLEAN_TICKS: u32 = 4;

/// Health policy knobs for the FTL-side monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Minimum lifetime observations (reads + programs) of a die before
    /// it is scored; below this the sample is too small to accuse.
    pub window: u64,
    /// Health score in `[0, 1]` above which a die becomes a suspect.
    pub suspect_threshold: f64,
    /// Pre-emptively migrate live data off suspects onto healthy spares.
    pub evacuate: bool,
    /// Foreground stall bound for one evacuation step, reusing the GC
    /// pacing machinery. `None` blocks for the full step.
    pub pacing: Option<GcPacing>,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            window: 64,
            suspect_threshold: 0.15,
            evacuate: true,
            pacing: None,
        }
    }
}

/// A snapshot of the health subsystem's event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// Maintenance ticks executed.
    pub ticks: u64,
    /// Dies flagged as suspects (each flagging counts, including a
    /// re-flag after rehabilitation).
    pub suspects_flagged: u64,
    /// Pages migrated off suspect dies by pre-emptive evacuation.
    pub pages_evacuated: u64,
    /// Suspect dies fully drained of live data.
    pub evacuations_completed: u64,
    /// Suspects cleared as false positives and returned to service.
    pub rehabilitations: u64,
    /// Evacuation steps whose media time overran the pacing budget (the
    /// foreground stall was capped at the budget).
    pub evacuation_overruns: u64,
    /// Dead dies the monitor noticed and fenced.
    pub dead_dies_fenced: u64,
}

/// Per-die tracking: the last telemetry snapshot (for windowed deltas)
/// and the clean streak while under suspicion.
#[derive(Debug, Clone, Copy, Default)]
struct DieTrack {
    last: DieHealth,
    clean_ticks: u32,
}

/// Per-FTL health state: policy, counters, per-die tracks, the
/// quarantine set and the parked-block ledger.
#[derive(Debug, Clone)]
pub(crate) struct HealthState {
    pub(crate) policy: HealthPolicy,
    pub(crate) counters: HealthCounters,
    tracks: BTreeMap<(u16, u16), DieTrack>,
    /// Quarantined dies: no new allocations, elevated read retries.
    suspects: BTreeSet<(u16, u16)>,
    /// Suspects whose evacuation has completed (no live data remains).
    evacuated: BTreeSet<(u16, u16)>,
    /// Allocator indices parked because their block sits on a
    /// quarantined die; released back on rehabilitation.
    parked: BTreeMap<u64, (u16, u16)>,
    /// Dead dies already fenced by the monitor (fence + rebuild run
    /// once per death, not once per tick).
    fenced_dead: BTreeSet<(u16, u16)>,
}

impl HealthState {
    pub(crate) fn new(policy: HealthPolicy) -> HealthState {
        HealthState {
            policy,
            counters: HealthCounters::default(),
            tracks: BTreeMap::new(),
            suspects: BTreeSet::new(),
            evacuated: BTreeSet::new(),
            parked: BTreeMap::new(),
            fenced_dead: BTreeSet::new(),
        }
    }

    /// Whether `(channel, die)` is currently quarantined.
    pub(crate) fn is_quarantined(&self, key: (u16, u16)) -> bool {
        self.suspects.contains(&key)
    }

    /// The quarantined dies, sorted (deterministic reporting order).
    pub(crate) fn quarantined(&self) -> Vec<(u16, u16)> {
        self.suspects.iter().copied().collect()
    }

    /// Health score of one die from its lifetime snapshot and the delta
    /// since the previous tick: the self-decaying retry-depth EWMA plus
    /// windowed program/erase-failure and uncorrectable fractions.
    fn score(cur: &DieHealth, delta: &DieHealth) -> f64 {
        let max = zng_flash::MAX_READ_RETRIES as f64;
        let ewma = (cur.retry_ewma / max).min(1.0);
        let pf = if delta.programs + delta.program_failures > 0 {
            delta.program_failures as f64 / (delta.programs + delta.program_failures) as f64
        } else {
            0.0
        };
        let ef = if delta.erases + delta.erase_failures > 0 {
            delta.erase_failures as f64 / (delta.erases + delta.erase_failures) as f64
        } else {
            0.0
        };
        let unc = if delta.reads > 0 {
            (delta.uncorrectable_reads as f64 / delta.reads as f64).min(1.0)
        } else {
            0.0
        };
        0.5 * ewma + 0.3 * pf.max(ef) + 0.2 * unc
    }

    /// One scoring pass over the per-die telemetry: flags new suspects,
    /// advances clean streaks, and returns the dies rehabilitated this
    /// tick (the caller releases their parked blocks).
    pub(crate) fn observe(
        &mut self,
        dies: &[((u16, u16), DieHealth)],
        dead: &[(u16, u16)],
    ) -> Vec<(u16, u16)> {
        let mut rehabbed = Vec::new();
        for &(key, cur) in dies {
            let track = self.tracks.entry(key).or_default();
            let last = track.last;
            let delta = DieHealth {
                reads: cur.reads.saturating_sub(last.reads),
                retry_steps: cur.retry_steps.saturating_sub(last.retry_steps),
                retry_ewma: cur.retry_ewma,
                uncorrectable_reads: cur
                    .uncorrectable_reads
                    .saturating_sub(last.uncorrectable_reads),
                programs: cur.programs.saturating_sub(last.programs),
                program_failures: cur.program_failures.saturating_sub(last.program_failures),
                erases: cur.erases.saturating_sub(last.erases),
                erase_failures: cur.erase_failures.saturating_sub(last.erase_failures),
                disturb_reads: cur.disturb_reads.saturating_sub(last.disturb_reads),
            };
            track.last = cur;
            if dead.contains(&key) {
                continue; // past suspicion: the death path owns it now
            }
            let score = HealthState::score(&cur, &delta);
            if self.suspects.contains(&key) {
                let dirty = delta.program_failures > 0
                    || delta.erase_failures > 0
                    || delta.uncorrectable_reads > 0
                    || score >= self.policy.suspect_threshold / 2.0;
                if dirty {
                    track.clean_ticks = 0;
                } else if delta.reads > 0 {
                    // Observed and clean; silence alone proves nothing.
                    track.clean_ticks += 1;
                    if track.clean_ticks >= REHAB_CLEAN_TICKS {
                        track.clean_ticks = 0;
                        self.suspects.remove(&key);
                        self.evacuated.remove(&key);
                        self.counters.rehabilitations += 1;
                        rehabbed.push(key);
                    }
                }
            } else if cur.reads + cur.programs >= self.policy.window
                && score > self.policy.suspect_threshold
            {
                self.suspects.insert(key);
                track.clean_ticks = 0;
                self.counters.suspects_flagged += 1;
            }
        }
        rehabbed
    }

    /// Parks an allocator index skipped because its block sits on a
    /// quarantined die.
    pub(crate) fn park(&mut self, idx: u64, key: (u16, u16)) {
        self.parked.insert(idx, key);
    }

    /// Drains the indices parked for `key`, in ascending order, for
    /// release back into the allocation pool.
    pub(crate) fn unpark(&mut self, key: (u16, u16)) -> Vec<u64> {
        let idxs: Vec<u64> = self
            .parked
            .iter()
            .filter(|(_, &k)| k == key)
            .map(|(&i, _)| i)
            .collect();
        for i in &idxs {
            self.parked.remove(i);
        }
        idxs
    }

    /// Notes a die's death the first time the monitor sees it; returns
    /// whether the fence + rebuild machinery should run for it.
    pub(crate) fn note_dead(&mut self, key: (u16, u16)) -> bool {
        if !self.fenced_dead.insert(key) {
            return false;
        }
        self.suspects.remove(&key);
        self.counters.dead_dies_fenced += 1;
        true
    }

    /// Charges evacuated pages to the counters.
    pub(crate) fn note_evacuated(&mut self, pages: u64) {
        self.counters.pages_evacuated += pages;
    }

    /// Marks a suspect's evacuation complete (counted once per die).
    pub(crate) fn mark_evacuated(&mut self, key: (u16, u16)) {
        if self.suspects.contains(&key) && self.evacuated.insert(key) {
            self.counters.evacuations_completed += 1;
        }
    }

    /// Whether `key`'s evacuation already completed.
    #[cfg(test)]
    pub(crate) fn is_evacuated(&self, key: (u16, u16)) -> bool {
        self.evacuated.contains(&key)
    }

    /// Caps a step's foreground stall at the pacing deadline, counting
    /// an overrun when the media work ran longer.
    pub(crate) fn pace(&mut self, started: Cycle, done: Cycle) -> Cycle {
        match self.policy.pacing {
            Some(p) if done > p.deadline(started) => {
                self.counters.evacuation_overruns += 1;
                p.deadline(started)
            }
            _ => done,
        }
    }

    /// Clears the parked-block ledger after a crash recovery: the
    /// allocator was rebuilt from the media scan, so parked indices no
    /// longer exist in it (an allocated-but-never-programmed block looks
    /// untouched to the scan). Quarantine verdicts, tracks and counters
    /// survive — they describe the silicon, not the lost mapping state.
    pub(crate) fn reset_after_recovery(&mut self) {
        self.parked.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(reads: u64, ewma: f64, programs: u64, failures: u64) -> DieHealth {
        DieHealth {
            reads,
            retry_steps: (reads as f64 * ewma) as u64,
            retry_ewma: ewma,
            uncorrectable_reads: 0,
            programs,
            program_failures: failures,
            erases: 0,
            erase_failures: 0,
            disturb_reads: 0,
        }
    }

    #[test]
    fn cold_dies_are_never_flagged_inside_the_window() {
        let mut st = HealthState::new(HealthPolicy {
            window: 100,
            suspect_threshold: 0.1,
            ..HealthPolicy::default()
        });
        // Terrible score but only 10 observations: too few to accuse.
        let dies = [((0, 0), noisy(5, 4.0, 5, 5))];
        assert!(st.observe(&dies, &[]).is_empty());
        assert!(!st.is_quarantined((0, 0)));
        assert_eq!(st.counters.suspects_flagged, 0);
    }

    #[test]
    fn noisy_die_is_flagged_and_healthy_sibling_is_not() {
        let mut st = HealthState::new(HealthPolicy {
            window: 64,
            suspect_threshold: 0.15,
            ..HealthPolicy::default()
        });
        let dies = [
            ((0, 0), noisy(200, 2.0, 100, 30)),
            ((0, 1), noisy(200, 0.01, 100, 0)),
        ];
        st.observe(&dies, &[]);
        assert!(st.is_quarantined((0, 0)));
        assert!(!st.is_quarantined((0, 1)));
        assert_eq!(st.counters.suspects_flagged, 1);
        assert_eq!(st.quarantined(), vec![(0, 0)]);
    }

    #[test]
    fn dead_dies_leave_suspicion_and_fence_once() {
        let mut st = HealthState::new(HealthPolicy::default());
        let dies = [((1, 2), noisy(200, 3.0, 100, 60))];
        st.observe(&dies, &[]);
        assert!(st.is_quarantined((1, 2)));
        assert!(st.note_dead((1, 2)));
        assert!(!st.is_quarantined((1, 2)));
        assert!(!st.note_dead((1, 2)), "fence runs once per death");
        assert_eq!(st.counters.dead_dies_fenced, 1);
        // A dead die is never re-flagged, however bad its telemetry.
        st.observe(&dies, &[(1, 2)]);
        assert!(!st.is_quarantined((1, 2)));
    }

    #[test]
    fn clean_streak_rehabilitates_and_releases_parked_blocks() {
        let mut st = HealthState::new(HealthPolicy {
            window: 64,
            suspect_threshold: 0.15,
            ..HealthPolicy::default()
        });
        let mut cur = noisy(200, 2.0, 100, 30);
        st.observe(&[((0, 0), cur)], &[]);
        assert!(st.is_quarantined((0, 0)));
        st.park(7, (0, 0));
        st.park(3, (0, 0));
        st.park(9, (4, 4));
        // The EWMA decays and the deltas stay failure-free: clean ticks.
        cur.retry_ewma = 0.01;
        for tick in 0..REHAB_CLEAN_TICKS {
            assert!(
                st.is_quarantined((0, 0)),
                "still quarantined before tick {tick}"
            );
            cur.reads += 10;
            st.observe(&[((0, 0), cur)], &[]);
        }
        assert!(!st.is_quarantined((0, 0)));
        assert_eq!(st.counters.rehabilitations, 1);
        assert_eq!(st.unpark((0, 0)), vec![3, 7]);
        assert_eq!(st.unpark((0, 0)), Vec::<u64>::new());
        // Another die's parked blocks are untouched.
        assert_eq!(st.unpark((4, 4)), vec![9]);
    }

    #[test]
    fn unobserved_ticks_neither_advance_nor_reset_the_streak() {
        let mut st = HealthState::new(HealthPolicy {
            window: 64,
            suspect_threshold: 0.15,
            ..HealthPolicy::default()
        });
        let mut cur = noisy(200, 2.0, 100, 30);
        st.observe(&[((0, 0), cur)], &[]);
        cur.retry_ewma = 0.01;
        cur.reads += 10;
        st.observe(&[((0, 0), cur)], &[]); // one clean observed tick
        for _ in 0..20 {
            st.observe(&[((0, 0), cur)], &[]); // no new reads: neutral
        }
        assert!(st.is_quarantined((0, 0)), "silence must not rehabilitate");
        for _ in 0..REHAB_CLEAN_TICKS {
            cur.reads += 10;
            st.observe(&[((0, 0), cur)], &[]);
        }
        assert!(!st.is_quarantined((0, 0)));
    }

    #[test]
    fn evacuation_completion_counts_once_and_pacing_caps_stalls() {
        let mut st = HealthState::new(HealthPolicy {
            pacing: Some(GcPacing {
                stall_budget: Cycle(1_000),
                credit_writes: 4,
            }),
            ..HealthPolicy::default()
        });
        st.observe(&[((0, 0), noisy(200, 3.0, 100, 60))], &[]);
        st.note_evacuated(24);
        st.mark_evacuated((0, 0));
        st.mark_evacuated((0, 0));
        st.mark_evacuated((5, 5)); // not a suspect: no completion
        assert!(st.is_evacuated((0, 0)));
        assert_eq!(st.counters.pages_evacuated, 24);
        assert_eq!(st.counters.evacuations_completed, 1);
        assert_eq!(st.pace(Cycle(0), Cycle(500)), Cycle(500));
        assert_eq!(st.pace(Cycle(0), Cycle(9_000)), Cycle(1_000));
        assert_eq!(st.counters.evacuation_overruns, 1);
    }
}
